//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the rand API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! convenience methods (`random`, `random_range`, `index`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64. It is
//! deterministic across platforms and fast; every simulation seed in this
//! repository (and every golden test) is defined in terms of this stream, so
//! the algorithm must never change.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Types that can be drawn uniformly from their "standard" distribution:
/// `[0, 1)` for floats, the full value range for integers, fair coin for
/// `bool`.
pub trait StandardSample: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience draws, mirroring the subset of `rand::Rng` the workspace uses.
pub trait RngExt: Rng {
    /// Draw from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    #[inline]
    fn random_range<T, Q: SampleRange<T>>(&mut self, range: Q) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform index into a slice of length `len`. Panics when `len == 0`.
    #[inline]
    fn index(&mut self, len: usize) -> usize
    where
        Self: Sized,
    {
        assert!(len > 0, "cannot index an empty collection");
        (self.next_u64() % len as u64) as usize
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>().to_bits(), c.random::<f64>().to_bits());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.index(9);
            assert!(i < 9);
        }
    }

    #[test]
    fn golden_stream_is_stable() {
        // The simulator's golden tests depend on this exact stream; if this
        // test changes, every recorded SimResult changes with it.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                10121301305976376037,
                15093248377226885481,
                12430566138068920556,
                7427131554399665257
            ]
        );
    }
}
