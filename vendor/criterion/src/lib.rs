//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros) backed by a simple
//! wall-clock harness: each benchmark runs one warm-up call, then batches of
//! iterations until a time budget is spent, and prints the mean time per
//! iteration plus iterations/second. No statistical analysis, HTML reports,
//! or baseline comparison — for machine-readable trend tracking use the
//! `bench_report` bin in crates/bench, which times scenarios directly.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Identifier `name/param` for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches to run (the stub treats it as a cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let budget = Duration::from_millis(
            std::env::var("CRITERION_STUB_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000),
        );
        let mut iterations = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iterations += 1;
            if start.elapsed() >= budget || iterations >= 1_000_000 {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }

    fn report(&self, group: &str, id: &str) {
        if self.iterations == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        println!(
            "{group}/{id}: {:>12.3} µs/iter ({:.2} iter/s, {} iters)",
            per_iter * 1e6,
            1.0 / per_iter,
            self.iterations
        );
    }
}

/// Collects benchmark functions into a single runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
