//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as a *marker* today — types derive
//! `Serialize`/`Deserialize` so downstream consumers could wire up real
//! serialization, but no code in the repository calls a serializer. With no
//! network access to a crates registry, this stub keeps those derives
//! compiling: the traits carry no methods and the derive macro emits empty
//! impls. Swapping the real serde back in later is a one-line change in the
//! workspace manifest.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
