//! Offline stand-in for `serde`: a functional, simplified subset.
//!
//! Earlier revisions of this stub were pure markers — empty traits so that
//! `#[derive(Serialize, Deserialize)]` compiled without doing anything. The
//! estimator service's snapshot/restore path needs *actual* serialization,
//! so the stub now carries a working streaming data model:
//!
//! - [`Serialize`] walks a value and drives a [`Serializer`], a flat event
//!   sink (`serialize_u64`, `begin_struct`, `begin_variant`, ...).
//! - [`Deserialize`] mirrors the walk against a [`Deserializer`] event
//!   source that replays the same shape.
//!
//! Compared to real serde the surface is deliberately small: no visitors,
//! no zero-copy borrowing, no maps, no `serde(...)` attribute handling, and
//! the derive rejects generic types. Formats implement the two driver
//! traits directly (see `resmatch-service`'s binary codec). Swapping the
//! real serde back in later is still a one-line change in the workspace
//! manifest because the derive surface (`#[derive(Serialize, Deserialize)]`
//! on concrete structs and enums) is a strict subset of real serde's.

#![forbid(unsafe_code)]

/// A value that can drive a [`Serializer`] over its own structure.
pub trait Serialize {
    /// Feed this value's structure into `serializer`.
    ///
    /// # Errors
    /// Propagates whatever error the serializer reports for its sink.
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error>;
}

/// A value that can be rebuilt from a [`Deserializer`] event source.
///
/// The `'de` lifetime mirrors real serde's signature so derive sites are
/// source-compatible; this simplified subset never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuild a value by pulling its structure from `deserializer`.
    ///
    /// # Errors
    /// Returns the deserializer's error if the input does not replay the
    /// exact shape `Self` serializes as.
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error>;
}

/// Streaming event sink a [`Serialize`] implementation writes into.
///
/// Structure is conveyed by paired `begin_*`/`end_*` calls; primitives map
/// onto the widest machine type of their family (`u64`/`i64`/`f64`).
#[allow(missing_docs)] // method names mirror the wire events one-to-one
pub trait Serializer {
    /// Error type reported by the underlying sink.
    type Error;

    fn serialize_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    fn serialize_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    fn serialize_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    fn serialize_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    fn serialize_str(&mut self, v: &str) -> Result<(), Self::Error>;

    /// Record an absent [`Option`] value.
    fn serialize_none(&mut self) -> Result<(), Self::Error>;
    /// Record a present [`Option`]; the wrapped value is serialized next.
    fn serialize_some(&mut self) -> Result<(), Self::Error>;

    /// Open a sequence of exactly `len` elements.
    fn begin_seq(&mut self, len: usize) -> Result<(), Self::Error>;
    fn end_seq(&mut self) -> Result<(), Self::Error>;

    /// Open a struct (named, tuple, or unit) with `fields` fields.
    fn begin_struct(&mut self, name: &'static str, fields: usize) -> Result<(), Self::Error>;
    /// Announce the next struct or variant field; its value follows.
    fn serialize_field(&mut self, name: &'static str) -> Result<(), Self::Error>;
    fn end_struct(&mut self) -> Result<(), Self::Error>;

    /// Open enum variant number `variant_index` with `fields` fields.
    fn begin_variant(
        &mut self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        fields: usize,
    ) -> Result<(), Self::Error>;
    fn end_variant(&mut self) -> Result<(), Self::Error>;
}

/// Streaming event source a [`Deserialize`] implementation pulls from.
///
/// Mirrors [`Serializer`] call-for-call; a format must replay the exact
/// event sequence the serializer recorded or report an error.
#[allow(missing_docs)] // method names mirror the wire events one-to-one
pub trait Deserializer<'de> {
    /// Error type reported for malformed or mismatched input.
    type Error;

    fn deserialize_bool(&mut self) -> Result<bool, Self::Error>;
    fn deserialize_u64(&mut self) -> Result<u64, Self::Error>;
    fn deserialize_i64(&mut self) -> Result<i64, Self::Error>;
    fn deserialize_f64(&mut self) -> Result<f64, Self::Error>;
    fn deserialize_string(&mut self) -> Result<String, Self::Error>;

    /// Read an [`Option`] discriminant: `true` means a value follows.
    fn deserialize_option(&mut self) -> Result<bool, Self::Error>;

    /// Open a sequence, returning its element count.
    fn begin_seq(&mut self) -> Result<usize, Self::Error>;
    fn end_seq(&mut self) -> Result<(), Self::Error>;

    /// Open a struct previously written with the same `name`/`fields`.
    fn begin_struct(&mut self, name: &'static str, fields: usize) -> Result<(), Self::Error>;
    /// Consume the field marker for `name`; its value is read next.
    fn deserialize_field(&mut self, name: &'static str) -> Result<(), Self::Error>;
    fn end_struct(&mut self) -> Result<(), Self::Error>;

    /// Open an enum value, returning the recorded variant index
    /// (guaranteed by the format to be `< variants.len()`, otherwise an
    /// error is reported instead).
    fn begin_variant(
        &mut self,
        name: &'static str,
        variants: &'static [&'static str],
    ) -> Result<u32, Self::Error>;
    fn end_variant(&mut self) -> Result<(), Self::Error>;

    /// Build a format-level error for data that decoded but is invalid for
    /// the target type (narrowing overflow, out-of-range discriminant).
    /// Derive-generated code uses this instead of panicking.
    fn invalid_data(&mut self, what: &'static str) -> Self::Error;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer + ?Sized>(
                &self,
                serializer: &mut S,
            ) -> Result<(), S::Error> {
                serializer.serialize_u64(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de> + ?Sized>(
                deserializer: &mut D,
            ) -> Result<Self, D::Error> {
                let wide = deserializer.deserialize_u64()?;
                <$ty>::try_from(wide)
                    .map_err(|_| deserializer.invalid_data(stringify!($ty)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        let wide = deserializer.deserialize_u64()?;
        usize::try_from(wide).map_err(|_| deserializer.invalid_data("usize"))
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer + ?Sized>(
                &self,
                serializer: &mut S,
            ) -> Result<(), S::Error> {
                serializer.serialize_i64(i64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de> + ?Sized>(
                deserializer: &mut D,
            ) -> Result<Self, D::Error> {
                let wide = deserializer.deserialize_i64()?;
                <$ty>::try_from(wide)
                    .map_err(|_| deserializer.invalid_data(stringify!($ty)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_i64(*self)
    }
}

impl<'de> Deserialize<'de> for i64 {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        deserializer.deserialize_i64()
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        let wide = deserializer.deserialize_i64()?;
        isize::try_from(wide).map_err(|_| deserializer.invalid_data("isize"))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        deserializer.deserialize_f64()
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        // Round-trips exactly for values that started life as f32; wider
        // values narrow with the usual `as` semantics.
        #[allow(clippy::cast_possible_truncation)]
        Ok(deserializer.deserialize_f64()? as f32)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(value) => {
                serializer.serialize_some()?;
                value.serialize(serializer)
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        if deserializer.deserialize_option()? {
            Ok(Some(T::deserialize(deserializer)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.begin_seq(self.len())?;
        for element in self {
            element.serialize(serializer)?;
        }
        serializer.end_seq()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de> + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        let len = deserializer.begin_seq()?;
        // Cap the pre-allocation so a corrupt length prefix cannot force a
        // huge up-front reservation; the vector still grows as needed.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::deserialize(deserializer)?);
        }
        deserializer.end_seq()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy line-oriented codec used to exercise the trait surface without
    /// depending on any downstream format implementation.
    #[derive(Default)]
    struct LineSink {
        lines: Vec<String>,
    }

    impl Serializer for LineSink {
        type Error = ();

        fn serialize_bool(&mut self, v: bool) -> Result<(), ()> {
            self.lines.push(format!("b {v}"));
            Ok(())
        }
        fn serialize_u64(&mut self, v: u64) -> Result<(), ()> {
            self.lines.push(format!("u {v}"));
            Ok(())
        }
        fn serialize_i64(&mut self, v: i64) -> Result<(), ()> {
            self.lines.push(format!("i {v}"));
            Ok(())
        }
        fn serialize_f64(&mut self, v: f64) -> Result<(), ()> {
            self.lines.push(format!("f {}", v.to_bits()));
            Ok(())
        }
        fn serialize_str(&mut self, v: &str) -> Result<(), ()> {
            self.lines.push(format!("s {v}"));
            Ok(())
        }
        fn serialize_none(&mut self) -> Result<(), ()> {
            self.lines.push("none".into());
            Ok(())
        }
        fn serialize_some(&mut self) -> Result<(), ()> {
            self.lines.push("some".into());
            Ok(())
        }
        fn begin_seq(&mut self, len: usize) -> Result<(), ()> {
            self.lines.push(format!("seq {len}"));
            Ok(())
        }
        fn end_seq(&mut self) -> Result<(), ()> {
            self.lines.push("endseq".into());
            Ok(())
        }
        fn begin_struct(&mut self, name: &'static str, fields: usize) -> Result<(), ()> {
            self.lines.push(format!("struct {name} {fields}"));
            Ok(())
        }
        fn serialize_field(&mut self, name: &'static str) -> Result<(), ()> {
            self.lines.push(format!("field {name}"));
            Ok(())
        }
        fn end_struct(&mut self) -> Result<(), ()> {
            self.lines.push("endstruct".into());
            Ok(())
        }
        fn begin_variant(
            &mut self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            fields: usize,
        ) -> Result<(), ()> {
            self.lines
                .push(format!("variant {name} {variant_index} {variant} {fields}"));
            Ok(())
        }
        fn end_variant(&mut self) -> Result<(), ()> {
            self.lines.push("endvariant".into());
            Ok(())
        }
    }

    struct LineSource {
        lines: Vec<String>,
        at: usize,
    }

    impl LineSource {
        fn next(&mut self) -> Result<&str, String> {
            let line = self.lines.get(self.at).ok_or_else(|| "eof".to_string())?;
            self.at += 1;
            Ok(line)
        }
        fn tagged(&mut self, tag: &str) -> Result<String, String> {
            let line = self.next()?;
            line.strip_prefix(tag)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{tag}`, got `{line}`"))
        }
    }

    impl<'de> Deserializer<'de> for LineSource {
        type Error = String;

        fn deserialize_bool(&mut self) -> Result<bool, String> {
            self.tagged("b")?.parse().map_err(|_| "bad bool".into())
        }
        fn deserialize_u64(&mut self) -> Result<u64, String> {
            self.tagged("u")?.parse().map_err(|_| "bad u64".into())
        }
        fn deserialize_i64(&mut self) -> Result<i64, String> {
            self.tagged("i")?.parse().map_err(|_| "bad i64".into())
        }
        fn deserialize_f64(&mut self) -> Result<f64, String> {
            let bits: u64 = self.tagged("f")?.parse().map_err(|_| "bad f64")?;
            Ok(f64::from_bits(bits))
        }
        fn deserialize_string(&mut self) -> Result<String, String> {
            self.tagged("s")
        }
        fn deserialize_option(&mut self) -> Result<bool, String> {
            match self.next()? {
                "none" => Ok(false),
                "some" => Ok(true),
                other => Err(format!("expected option, got `{other}`")),
            }
        }
        fn begin_seq(&mut self) -> Result<usize, String> {
            self.tagged("seq")?
                .parse()
                .map_err(|_| "bad seq len".into())
        }
        fn end_seq(&mut self) -> Result<(), String> {
            match self.next()? {
                "endseq" => Ok(()),
                other => Err(format!("expected endseq, got `{other}`")),
            }
        }
        fn begin_struct(&mut self, name: &'static str, fields: usize) -> Result<(), String> {
            let want = format!("struct {name} {fields}");
            let got = self.next()?;
            if got == want {
                Ok(())
            } else {
                Err(format!("expected `{want}`, got `{got}`"))
            }
        }
        fn deserialize_field(&mut self, name: &'static str) -> Result<(), String> {
            let want = format!("field {name}");
            let got = self.next()?;
            if got == want {
                Ok(())
            } else {
                Err(format!("expected `{want}`, got `{got}`"))
            }
        }
        fn end_struct(&mut self) -> Result<(), String> {
            match self.next()? {
                "endstruct" => Ok(()),
                other => Err(format!("expected endstruct, got `{other}`")),
            }
        }
        fn begin_variant(
            &mut self,
            name: &'static str,
            variants: &'static [&'static str],
        ) -> Result<u32, String> {
            let rest = self.tagged("variant")?;
            let mut parts = rest.split(' ');
            if parts.next() != Some(name) {
                return Err(format!("enum name mismatch for {name}"));
            }
            let index: u32 = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or("bad variant index")?;
            if (index as usize) < variants.len() {
                Ok(index)
            } else {
                Err(format!("variant index {index} out of range for {name}"))
            }
        }
        fn end_variant(&mut self) -> Result<(), String> {
            match self.next()? {
                "endvariant" => Ok(()),
                other => Err(format!("expected endvariant, got `{other}`")),
            }
        }
        fn invalid_data(&mut self, what: &'static str) -> String {
            format!("invalid data for {what} at line {}", self.at)
        }
    }

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let mut sink = LineSink::default();
        value.serialize(&mut sink).expect("serialize");
        let mut source = LineSource {
            lines: sink.lines,
            at: 0,
        };
        T::deserialize(&mut source).expect("deserialize")
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(round_trip(&42u8), 42);
        assert_eq!(round_trip(&7_000_000_000u64), 7_000_000_000);
        assert_eq!(round_trip(&-13i32), -13);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&1.5f64).to_bits(), 1.5f64.to_bits());
        assert_eq!(round_trip(&String::from("hello")), "hello");
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(round_trip(&Some(9u32)), Some(9));
        assert_eq!(round_trip(&None::<u64>), None);
        assert_eq!(round_trip(&vec![1u64, 2, 3]), vec![1, 2, 3]);
        assert_eq!(
            round_trip(&vec![Some(1u32), None, Some(3)]),
            vec![Some(1), None, Some(3)]
        );
    }

    #[test]
    fn narrowing_overflow_is_an_error() {
        let mut sink = LineSink::default();
        1_000_000u64.serialize(&mut sink).expect("serialize");
        let mut source = LineSource {
            lines: sink.lines,
            at: 0,
        };
        assert!(<u8 as Deserialize>::deserialize(&mut source).is_err());
    }
}
