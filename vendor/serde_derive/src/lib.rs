//! Derive half of the offline serde stand-in.
//!
//! Generates real field-wise [`Serialize`]/[`Deserialize`] impls against the
//! vendored `serde` crate's streaming `Serializer`/`Deserializer` traits.
//! The input is parsed by hand (no `syn`/`quote` available offline): skip
//! attributes and visibility, find the `struct`/`enum` keyword, then walk
//! the body. Named, tuple, and unit structs are supported, as are enums
//! with unit, tuple, and struct variants. Generic types and `where`
//! clauses are rejected with a clear error rather than mis-expanded;
//! `#[serde(...)]` attributes are accepted but ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Body shape shared by structs and enum variants.
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip one `#[...]` attribute (including expanded doc comments) or one
/// visibility qualifier starting at `i`; returns the new cursor, or `None`
/// if the token there is neither.
fn skip_attr_or_vis(tokens: &[TokenTree], mut i: usize) -> Option<usize> {
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => Some(i + 1),
                _ => panic!("vendored serde_derive: malformed attribute"),
            }
        }
        Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(i + 1),
                _ => Some(i),
            }
        }
        _ => None,
    }
}

/// Advance past a type (or expression) until a top-level `,` or the end of
/// the token slice, tracking `<...>` nesting so commas inside generic
/// arguments don't split the field. Returns the index of the `,` or
/// `tokens.len()`.
fn skip_to_field_end(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while let Some(tt) = tokens.get(i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return i,
                '-' => {
                    // `->` in a fn-pointer type: consume the `>` without
                    // touching the angle depth.
                    if let Some(TokenTree::Punct(next)) = tokens.get(i + 1) {
                        if next.as_char() == '>' {
                            i += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Parse `name: Type, ...` out of a brace-delimited field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while let Some(next) = skip_attr_or_vis(&tokens, i) {
            i = next;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("vendored serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("vendored serde_derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        i = skip_to_field_end(&tokens, i);
        if i < tokens.len() {
            i += 1; // consume the `,`
        }
        fields.push(name);
    }
    fields
}

/// Count the fields of a paren-delimited tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let end = skip_to_field_end(&tokens, i);
        if end > i {
            fields += 1;
        }
        i = end + 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while let Some(next) = skip_attr_or_vis(&tokens, i) {
            i = next;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("vendored serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                // Explicit discriminant: skip the expression.
                i = skip_to_field_end(&tokens, i + 1);
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let kind = loop {
        while let Some(next) = skip_attr_or_vis(&tokens, i) {
            i = next;
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                match word.as_str() {
                    "struct" | "enum" => {
                        i += 1;
                        break word;
                    }
                    "union" => panic!("vendored serde_derive does not support `union`"),
                    // e.g. `unsafe`, `crate` paths — nothing we expect, but
                    // advance rather than loop forever.
                    _ => i += 1,
                }
            }
            Some(_) => i += 1,
            None => panic!("vendored serde_derive: no struct/enum definition found"),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => {
            panic!("vendored serde_derive: expected type name after `{kind}`, found {other:?}")
        }
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "where" {
            panic!("vendored serde_derive does not support `where` clauses (type `{name}`)");
        }
    }
    if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => {
                panic!("vendored serde_derive: expected enum body for `{name}`, found {other:?}")
            }
        }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            None => Shape::Unit,
            other => {
                panic!("vendored serde_derive: unsupported struct body for `{name}`: {other:?}")
            }
        };
        Input::Struct { name, shape }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn shape_field_count(shape: &Shape) -> usize {
    match shape {
        Shape::Unit => 0,
        Shape::Named(fields) => fields.len(),
        Shape::Tuple(n) => *n,
    }
}

/// Statements serializing one struct body, where field `f` is reachable as
/// the expression `{access_prefix}f` (e.g. `&self.` for structs, `` for
/// bound variant fields).
fn gen_serialize_fields(out: &mut String, shape: &Shape, access: impl Fn(&str) -> String) {
    match shape {
        Shape::Unit => {}
        Shape::Named(fields) => {
            for f in fields {
                let _ = write!(
                    out,
                    "::serde::Serializer::serialize_field(__s, \"{f}\")?;\
                     ::serde::Serialize::serialize({expr}, __s)?;",
                    expr = access(f)
                );
            }
        }
        Shape::Tuple(n) => {
            for idx in 0..*n {
                let f = idx.to_string();
                let _ = write!(
                    out,
                    "::serde::Serializer::serialize_field(__s, \"{f}\")?;\
                     ::serde::Serialize::serialize({expr}, __s)?;",
                    expr = access(&f)
                );
            }
        }
    }
}

/// Statements deserializing one struct body into `let __f_*` locals,
/// followed by the constructor expression for `path`.
fn gen_deserialize_body(out: &mut String, path: &str, shape: &Shape) {
    match shape {
        Shape::Unit => {
            let _ = write!(out, "{path}");
        }
        Shape::Named(fields) => {
            for f in fields {
                let _ = write!(
                    out,
                    "::serde::Deserializer::deserialize_field(__d, \"{f}\")?;\
                     let __f_{f} = ::serde::Deserialize::deserialize(__d)?;"
                );
            }
            let _ = write!(out, "{path} {{");
            for f in fields {
                let _ = write!(out, "{f}: __f_{f},");
            }
            let _ = write!(out, "}}");
        }
        Shape::Tuple(n) => {
            for idx in 0..*n {
                let _ = write!(
                    out,
                    "::serde::Deserializer::deserialize_field(__d, \"{idx}\")?;\
                     let __f_{idx} = ::serde::Deserialize::deserialize(__d)?;"
                );
            }
            let _ = write!(out, "{path}(");
            for idx in 0..*n {
                let _ = write!(out, "__f_{idx},");
            }
            let _ = write!(out, ")");
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, shape } => {
            let mut body = String::new();
            let _ = write!(
                body,
                "::serde::Serializer::begin_struct(__s, \"{name}\", {n}usize)?;",
                n = shape_field_count(shape)
            );
            gen_serialize_fields(&mut body, shape, |f| format!("&self.{f}"));
            body.push_str("::serde::Serializer::end_struct(__s)");
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut body = String::from("match self {");
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                let pattern = match &variant.shape {
                    Shape::Unit => format!("{name}::{vname}"),
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __b_{f}")).collect();
                        format!("{name}::{vname} {{ {} }}", binds.join(","))
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__b_{i}")).collect();
                        format!("{name}::{vname}({})", binds.join(","))
                    }
                };
                let _ = write!(
                    body,
                    "{pattern} => {{\
                     ::serde::Serializer::begin_variant(__s, \"{name}\", {index}u32, \"{vname}\", {n}usize)?;",
                    n = shape_field_count(&variant.shape)
                );
                gen_serialize_fields(&mut body, &variant.shape, |f| format!("__b_{f}"));
                body.push_str("::serde::Serializer::end_variant(__s) }");
            }
            body.push('}');
            (name, body)
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
           fn serialize<__S: ::serde::Serializer + ?Sized>(\
               &self, __s: &mut __S,\
           ) -> ::core::result::Result<(), __S::Error> {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, shape } => {
            let mut body = String::new();
            let _ = write!(
                body,
                "::serde::Deserializer::begin_struct(__d, \"{name}\", {n}usize)?;",
                n = shape_field_count(shape)
            );
            let mut ctor = String::new();
            gen_deserialize_body(&mut ctor, name, shape);
            let _ = write!(
                body,
                "let __value = {{ {ctor} }};\
                 ::serde::Deserializer::end_struct(__d)?;\
                 ::core::result::Result::Ok(__value)"
            );
            (name, body)
        }
        Input::Enum { name, variants } => {
            let names: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut body = format!(
                "let __index = ::serde::Deserializer::begin_variant(__d, \"{name}\", &[{}])?;\
                 let __value = match __index {{",
                names.join(",")
            );
            for (index, variant) in variants.iter().enumerate() {
                let mut ctor = String::new();
                gen_deserialize_body(
                    &mut ctor,
                    &format!("{name}::{}", variant.name),
                    &variant.shape,
                );
                let _ = write!(body, "{index}u32 => {{ {ctor} }}");
            }
            body.push_str(
                "_ => return ::core::result::Result::Err(\
                     ::serde::Deserializer::invalid_data(__d, \"enum variant index\")),\
                 };\
                 ::serde::Deserializer::end_variant(__d)?;\
                 ::core::result::Result::Ok(__value)",
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
           fn deserialize<__D: ::serde::Deserializer<'de> + ?Sized>(\
               __d: &mut __D,\
           ) -> ::core::result::Result<Self, __D::Error> {{ {body} }}\
         }}"
    )
}

/// Derive a streaming [`Serialize`] impl for a concrete struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serialize impl should parse")
}

/// Derive a streaming [`Deserialize`] impl for a concrete struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("deserialize impl should parse")
}
