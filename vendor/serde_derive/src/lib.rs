//! Derive half of the offline serde stand-in.
//!
//! Since the `serde` stub's traits are empty markers, the derive only has to
//! discover the type's name and emit `impl ... for Name {}`. The input is
//! parsed by hand (no `syn`/`quote` available offline): skip attributes and
//! visibility, find the `struct`/`enum` keyword, take the next identifier.
//! Generic types are rejected with a clear error rather than mis-expanded.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "vendored serde_derive stub does not support generic type `{name}`"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{word}`, found {other:?}"),
                }
            }
        }
        // Everything else (attribute `#[...]` tokens, visibility, doc
        // comments) is skipped until the definition keyword appears.
    }
    panic!("vendored serde_derive stub: no struct/enum definition found")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serialize impl should parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("deserialize impl should parse")
}
