//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use — `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!`, `Just`, `any`, ranges, tuples, `prop::collection::vec`,
//! and `.prop_map` — over a deterministic per-test RNG. Differences from the
//! real crate, accepted for an offline build: no shrinking (a failure prints
//! the full generated inputs instead of a minimal counterexample) and no
//! persisted failure regressions.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property failed; the runner panics with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic generator seeded from the test's module path and name,
    /// so every `cargo test` run explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(salt: &str) -> Self {
            // FNV-1a over the salt, mixed with an optional env seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in salt.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                for b in extra.bytes() {
                    hash ^= b as u64;
                    hash = hash.wrapping_mul(0x100_0000_01b3);
                }
            }
            TestRng { state: hash }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            // SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        #[inline]
        pub fn uniform(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object safety matters here (`prop_oneof!` boxes its branches), so the
    /// provided combinators are `Self: Sized`.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for heterogeneous collections (`prop_oneof!`).
    pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V: Debug> OneOf<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            OneOf { options }
        }
    }

    impl<V: Debug> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Closure-backed strategy; the expansion target of `prop_compose!`.
    pub struct FnStrategy<F> {
        f: F,
    }

    impl<F> FnStrategy<F> {
        pub fn new<V>(f: F) -> Self
        where
            V: Debug,
            F: Fn(&mut TestRng) -> V,
        {
            FnStrategy { f }
        }
    }

    impl<V, F> Strategy for FnStrategy<F>
    where
        V: Debug,
        F: Fn(&mut TestRng) -> V,
    {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.f)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.uniform() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

    /// Types with a whole-domain default strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.uniform()
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open length range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` works as in the real
    /// crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...)` block becomes
/// a `#[test]` that runs `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = ::std::format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            ::std::assert!(
                                __rejected <= 100 * __config.cases.max(1),
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            ::std::panic!(
                                "proptest case failed: {}\n  inputs:{}",
                                __msg, __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy from component strategies plus a constructor
/// body: `prop_compose! { fn name()(a in sa, b in sb) -> T { ... } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($param:tt)*) ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed_strategy($strat)),+
        ])
    };
}

/// `assert!` that reports a test-case failure instead of panicking directly,
/// so the runner can attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                    stringify!($left), stringify!($right), __left, __right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n    left: {:?}\n   right: {:?}",
                    ::std::format!($($fmt)+), __left, __right,
                ),
            ));
        }
    }};
}

/// Rejects the current case (re-drawn, not counted) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_pair()(a in 0u32..10, b in 10u32..20) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(pair in (1u32..5, -3i64..3)) {
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!((-3..3).contains(&pair.1));
        }

        #[test]
        fn composed_strategies(p in small_pair(), flag in any::<bool>()) {
            prop_assert!(p.0 < 10 && p.1 >= 10);
            prop_assert_eq!(flag as u32 * 2 % 2, 0);
        }

        #[test]
        fn vectors_and_oneof(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..8)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2), "bad element in {:?}", v);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("salt");
        let mut b = crate::test_runner::TestRng::deterministic("salt");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.clone().generate(&mut a), s.clone().generate(&mut b));
        }
    }
}
