//! Integration: the estimator-selector ensemble and dynamic membership,
//! running end to end through the simulator.

use resmatch::core::selector::{EstimatorSelector, SelectorConfig};
use resmatch::prelude::*;

const MB: u64 = 1024;

fn trace(jobs: usize) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    w.retain_max_nodes(512);
    w
}

fn selector_for(cluster: &Cluster) -> Box<EstimatorSelector> {
    let ladder = cluster.memory_ladder();
    Box::new(EstimatorSelector::new(
        SelectorConfig::default(),
        vec![
            Box::new(PassThrough),
            Box::new(SuccessiveApproximation::new(
                SuccessiveConfig::default(),
                ladder.clone(),
            )),
            Box::new(RobustBisection::new(RobustConfig::default())),
        ],
    ))
}

#[test]
fn selector_ensemble_beats_baseline_end_to_end() {
    let w = trace(3_000);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.2);
    let base = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scaled);
    let ens = Simulation::builder()
        .cluster(cluster.clone())
        .boxed_estimator(selector_for(&cluster))
        .build()
        .expect("cluster and estimator are set")
        .run(&scaled);
    assert_eq!(ens.completed_jobs + ens.dropped_jobs, scaled.len());
    assert!(
        ens.utilization() > base.utilization() * 1.05,
        "ensemble {:.3} vs baseline {:.3}",
        ens.utilization(),
        base.utilization()
    );
}

#[test]
fn selector_tracks_plain_successive_within_tolerance() {
    // The ensemble pays a warm-up tax (round-robin includes pass-through)
    // but must stay in the same league as its best member.
    let w = trace(3_000);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.2);
    let plain = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::paper_successive(),
    )
    .run(&scaled);
    let ens = Simulation::builder()
        .cluster(cluster.clone())
        .boxed_estimator(selector_for(&cluster))
        .build()
        .expect("cluster and estimator are set")
        .run(&scaled);
    assert!(
        ens.utilization() > plain.utilization() * 0.85,
        "ensemble {:.3} vs successive {:.3}",
        ens.utilization(),
        plain.utilization()
    );
}

#[test]
fn estimation_gain_survives_churn_end_to_end() {
    let w = trace(3_000);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.0);
    let span = scaled.span();
    // Half the 24 MB pool leaves for the middle third of the run.
    let churn = vec![
        ChurnEvent {
            time: Time::from_millis(span.as_millis() / 3),
            mem_kb: 24 * MB,
            delta: -256,
        },
        ChurnEvent {
            time: Time::from_millis(2 * span.as_millis() / 3),
            mem_kb: 24 * MB,
            delta: 256,
        },
    ];
    let base = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .with_churn(churn.clone())
    .run(&scaled);
    let est = Simulation::new(
        SimConfig::default(),
        cluster,
        EstimatorSpec::paper_successive(),
    )
    .with_churn(churn)
    .run(&scaled);
    assert_eq!(base.completed_jobs + base.dropped_jobs, scaled.len());
    assert_eq!(est.completed_jobs + est.dropped_jobs, scaled.len());
    assert!(
        est.utilization() > base.utilization(),
        "estimation {:.3} vs baseline {:.3} under churn",
        est.utilization(),
        base.utilization()
    );
}

#[test]
fn queue_statistics_grow_with_load() {
    let w = trace(2_000);
    let cluster = paper_cluster(24);
    let low = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scale_to_load(&w, cluster.total_nodes(), 0.3));
    let high = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scale_to_load(&w, cluster.total_nodes(), 1.4));
    assert!(
        high.mean_queue_length > low.mean_queue_length,
        "queue {:.2} (high) vs {:.2} (low)",
        high.mean_queue_length,
        low.mean_queue_length
    );
    assert!(high.mean_busy_nodes > low.mean_busy_nodes * 0.9);
}
