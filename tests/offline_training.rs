//! Integration: the paper's offline customization phase, end to end.
//!
//! "By default, this process will be done offline ... using traces of
//! explicit feedback from previous job submissions, as part of the training
//! (customization) phase of the estimator" (§2.2). Workflow under test:
//! split a historical trace into a training prefix and an evaluation
//! suffix, fit offline models on the prefix, and run the suffix live.

use resmatch::core::regression::{RegressionConfig, RegressionEstimator};
use resmatch::core::warm_start::{WarmStartConfig, WarmStartEstimator};
use resmatch::prelude::*;
use resmatch::workload::filter::split_train_eval;

fn trace(jobs: usize) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    w.retain_max_nodes(512);
    w
}

#[test]
fn offline_trained_regression_estimates_from_the_first_job() {
    let (train, eval) = split_train_eval(&trace(4_000), 0.5);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&eval, cluster.total_nodes(), 1.0);

    let mut trained = RegressionEstimator::new(RegressionConfig::default());
    trained.fit_offline(&train);
    assert!(trained.is_trained());

    let cfg = SimConfig::default().with_feedback(FeedbackMode::Explicit);
    let with_training = Simulation::builder()
        .config(cfg)
        .cluster(cluster.clone())
        .boxed_estimator(Box::new(trained))
        .build()
        .expect("cluster and estimator are set")
        .run(&scaled);
    let without = Simulation::new(
        cfg,
        cluster.clone(),
        EstimatorSpec::Regression(RegressionConfig::default()),
    )
    .run(&scaled);
    // Pretraining can only add information: at least as many jobs run with
    // lowered estimates from the very start of the evaluation window.
    assert!(
        with_training.lowered_job_fraction() >= without.lowered_job_fraction(),
        "pretrained {:.3} vs cold {:.3}",
        with_training.lowered_job_fraction(),
        without.lowered_job_fraction()
    );
    assert_eq!(
        with_training.completed_jobs + with_training.dropped_jobs,
        scaled.len()
    );
}

#[test]
fn warm_start_prior_reduces_probing_steps() {
    let (train, eval) = split_train_eval(&trace(4_000), 0.5);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&eval, cluster.total_nodes(), 1.0);

    let mut warm = WarmStartEstimator::new(WarmStartConfig::default(), cluster.memory_ladder());
    warm.fit_offline(&train);
    assert!(warm.prior_trained());

    let cfg = SimConfig::default().with_feedback(FeedbackMode::Explicit);
    let warm_result = Simulation::builder()
        .config(cfg)
        .cluster(cluster.clone())
        .boxed_estimator(Box::new(warm))
        .build()
        .expect("cluster and estimator are set")
        .run(&scaled);
    let cold_result = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::paper_successive(),
    )
    .run(&scaled);

    assert_eq!(
        warm_result.completed_jobs + warm_result.dropped_jobs,
        scaled.len()
    );
    // The warm-started estimator must be at least competitive with the
    // cold one on goodput while starting below the request immediately.
    assert!(
        warm_result.utilization() >= cold_result.utilization() * 0.9,
        "warm {:.3} vs cold {:.3}",
        warm_result.utilization(),
        cold_result.utilization()
    );
    assert!(warm_result.lowered_job_fraction() > 0.0);
}

#[test]
fn persisted_state_survives_a_simulated_restart() {
    use resmatch::core::successive::SuccessiveApproximation;
    // Run the first half of a trace, export the estimator's learning,
    // restart into a fresh estimator, and verify the second half performs
    // like an uninterrupted run.
    let whole = trace(3_000);
    let (first, second) = split_train_eval(&whole, 0.5);
    let cluster = paper_cluster(24);
    let ladder = cluster.memory_ladder();

    // Uninterrupted reference over the full trace.
    let full = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::paper_successive(),
    )
    .run(&whole);

    // Phase 1: learn on the first half (driving the estimator through the
    // simulator), then export.
    let mut learner = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder.clone());
    let ctx = EstimateContext::default();
    for job in first.jobs() {
        let d = learner.estimate(job, &ctx);
        let node = ladder.round_up(d.mem_kb).unwrap_or(d.mem_kb);
        let fb = if job.used_mem_kb <= node {
            Feedback::success()
        } else {
            Feedback::failure()
        };
        learner.feedback(job, &d, &fb, &ctx);
    }
    let state = learner.export_state();
    assert!(!state.is_empty());

    // Phase 2: restart — a fresh estimator with imported state runs the
    // second half.
    let mut restarted = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder);
    restarted.import_state(&state);
    let resumed = Simulation::builder()
        .cluster(cluster.clone())
        .boxed_estimator(Box::new(restarted))
        .build()
        .expect("cluster and estimator are set")
        .run(&second);

    assert_eq!(resumed.completed_jobs + resumed.dropped_jobs, second.len());
    // The resumed run keeps estimating aggressively (no cold-start cliff).
    assert!(
        resumed.lowered_job_fraction() > 0.10,
        "resumed lowered fraction {:.3}",
        resumed.lowered_job_fraction()
    );
    assert!(full.completed_jobs > 0);
}
