//! Integration: scheduling-policy invariants across the full pipeline —
//! the paper's future-work claim that estimation gains carry over to more
//! aggressive policies.

use resmatch::prelude::*;

fn trace(jobs: usize) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    w.retain_max_nodes(512);
    w
}

#[test]
fn every_policy_completes_every_job() {
    let w = trace(1_500);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.1);
    for policy in [
        SchedulingPolicy::Fcfs,
        SchedulingPolicy::Sjf,
        SchedulingPolicy::EasyBackfill,
    ] {
        let cfg = SimConfig::default().with_scheduling(policy);
        let r =
            Simulation::new(cfg, cluster.clone(), EstimatorSpec::paper_successive()).run(&scaled);
        assert_eq!(
            r.completed_jobs + r.dropped_jobs,
            scaled.len(),
            "{policy:?} lost jobs"
        );
    }
}

#[test]
fn backfilling_reduces_waits_over_fcfs() {
    let w = trace(2_500);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.2);
    let fcfs = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scaled);
    let easy = Simulation::new(
        SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill),
        cluster,
        EstimatorSpec::PassThrough,
    )
    .run(&scaled);
    assert!(
        easy.mean_wait_s() < fcfs.mean_wait_s(),
        "EASY {} vs FCFS {}",
        easy.mean_wait_s(),
        fcfs.mean_wait_s()
    );
}

#[test]
fn estimation_gain_persists_under_backfilling() {
    // The paper's hypothesis: estimation's utilization gains should
    // correlate across scheduling policies.
    let w = trace(3_000);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.3);
    let cfg = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
    let base = Simulation::new(cfg, cluster.clone(), EstimatorSpec::PassThrough).run(&scaled);
    let est = Simulation::new(cfg, cluster, EstimatorSpec::paper_successive()).run(&scaled);
    assert!(
        est.utilization() >= base.utilization(),
        "estimation must not hurt under EASY: {} vs {}",
        est.utilization(),
        base.utilization()
    );
}

#[test]
fn estimation_never_increases_slowdown_across_loads() {
    // Figure 6's invariant, checked end to end on a small sweep.
    let w = trace(2_000);
    let cluster = paper_cluster(24);
    let sweep = SweepConfig::default().with_loads(vec![0.5, 0.9, 1.3]);
    let base = run_load_sweep(&w, &cluster, EstimatorSpec::PassThrough, &sweep);
    let est = run_load_sweep(&w, &cluster, EstimatorSpec::paper_successive(), &sweep);
    for (b, e) in base.iter().zip(&est) {
        assert!(
            e.result.mean_slowdown() <= b.result.mean_slowdown() * 1.05,
            "slowdown increased at load {}: {} vs {}",
            b.offered_load,
            e.result.mean_slowdown(),
            b.result.mean_slowdown()
        );
    }
}
