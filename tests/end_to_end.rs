//! End-to-end integration: trace generation → estimation → simulation →
//! metrics, spanning every crate in the workspace.

use resmatch::prelude::*;

const MB: u64 = 1024;

fn trace(jobs: usize, seed: u64) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    );
    w.retain_max_nodes(512);
    w
}

#[test]
fn full_pipeline_is_deterministic() {
    let w = trace(1_500, 3);
    let run = || {
        let cluster = paper_cluster(24);
        let scaled = scale_to_load(&w, cluster.total_nodes(), 1.0);
        Simulation::new(
            SimConfig::default(),
            cluster,
            EstimatorSpec::paper_successive(),
        )
        .run(&scaled)
    };
    assert_eq!(run(), run());
}

#[test]
fn estimation_beats_baseline_at_saturation() {
    // The headline claim on a scaled-down trace: Algorithm 1 improves
    // goodput utilization on the 32/24 MB split at saturating load.
    let w = trace(4_000, 42);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.3);
    let base = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scaled);
    let est = Simulation::new(
        SimConfig::default(),
        cluster,
        EstimatorSpec::paper_successive(),
    )
    .run(&scaled);
    assert!(
        est.utilization() > base.utilization() * 1.1,
        "estimation {:.3} vs baseline {:.3}",
        est.utilization(),
        base.utilization()
    );
    // And every job still completes.
    assert_eq!(est.completed_jobs + est.dropped_jobs, scaled.len());
    assert_eq!(base.completed_jobs + base.dropped_jobs, scaled.len());
}

#[test]
fn oracle_dominates_all_learning_estimators() {
    let w = trace(2_500, 7);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.2);
    let util = |spec: EstimatorSpec, explicit: bool| {
        let cfg = SimConfig::default().with_feedback(if explicit {
            FeedbackMode::Explicit
        } else {
            FeedbackMode::Implicit
        });
        Simulation::new(cfg, cluster.clone(), spec)
            .run(&scaled)
            .utilization()
    };
    let oracle = util(EstimatorSpec::Oracle, false);
    let base = util(EstimatorSpec::PassThrough, false);
    let successive = util(EstimatorSpec::paper_successive(), false);
    let last = util(
        EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        true,
    );
    // Small tolerance: probing failures can cost a learning estimator a
    // sliver of goodput relative to the oracle.
    assert!(
        oracle >= successive * 0.98,
        "oracle {oracle} vs successive {successive}"
    );
    assert!(
        oracle >= last * 0.98,
        "oracle {oracle} vs last-instance {last}"
    );
    assert!(oracle > base, "oracle {oracle} vs baseline {base}");
}

#[test]
fn conservativeness_matches_paper_bounds() {
    // ≤ a fraction of a percent of executions fail; a substantial share of
    // jobs run lowered (the paper: ≤0.01% and 15-40% at full trace scale).
    let w = trace(6_000, 42);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.0);
    let r = Simulation::new(
        SimConfig::default(),
        cluster,
        EstimatorSpec::paper_successive(),
    )
    .run(&scaled);
    assert!(
        r.failed_execution_fraction() < 0.02,
        "failure rate {:.4}",
        r.failed_execution_fraction()
    );
    assert!(
        r.lowered_job_fraction() > 0.10,
        "lowered fraction {:.3}",
        r.lowered_job_fraction()
    );
}

#[test]
fn explicit_feedback_reduces_probing_failures() {
    // Explicit feedback estimates from *measured* usage instead of blind
    // probing; only within-group usage variance can still under-allocate
    // (the paper's §2.3 caveat), and a max-over-window config damps that.
    let w = trace(3_000, 11);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 1.0);
    let cfg = SimConfig::default().with_feedback(FeedbackMode::Explicit);
    let literal = Simulation::new(
        cfg,
        cluster.clone(),
        EstimatorSpec::LastInstance(LastInstanceConfig::default()),
    )
    .run(&scaled);
    let damped = Simulation::new(
        cfg,
        cluster,
        EstimatorSpec::LastInstance(LastInstanceConfig {
            window: 5,
            margin: 1.2,
            ..LastInstanceConfig::default()
        }),
    )
    .run(&scaled);
    assert!(
        literal.failed_execution_fraction() < 0.02,
        "paper-literal last-instance failure rate {:.4}",
        literal.failed_execution_fraction()
    );
    assert!(
        damped.failed_executions <= literal.failed_executions,
        "window+margin must not increase failures: {} vs {}",
        damped.failed_executions,
        literal.failed_executions
    );
    // Both still estimate aggressively.
    assert!(literal.lowered_job_fraction() > 0.3);
}

#[test]
fn workload_statistics_survive_the_simulator() {
    // Goodput node-seconds equal the workload's total demand when every
    // job completes (mass conservation across the pipeline).
    let w = trace(1_000, 5);
    let cluster = paper_cluster(24);
    let r = Simulation::new(SimConfig::default(), cluster, EstimatorSpec::PassThrough).run(&w);
    assert_eq!(r.completed_jobs + r.dropped_jobs, w.len());
    let expected: f64 = w
        .jobs()
        .iter()
        .filter(|j| j.nodes <= 512)
        .map(|j| j.node_seconds())
        .sum();
    assert!(
        (r.goodput_node_seconds - expected).abs() / expected < 1e-9,
        "goodput {} vs demanded {}",
        r.goodput_node_seconds,
        expected
    );
}

#[test]
fn all_estimators_complete_the_same_jobs() {
    let w = trace(1_200, 9);
    let cluster = paper_cluster(20);
    let scaled = scale_to_load(&w, cluster.total_nodes(), 0.9);
    let specs = [
        EstimatorSpec::PassThrough,
        EstimatorSpec::Oracle,
        EstimatorSpec::paper_successive(),
        EstimatorSpec::Robust(RobustConfig::default()),
        EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
    ];
    for spec in specs {
        let r = Simulation::new(SimConfig::default(), cluster.clone(), spec).run(&scaled);
        assert_eq!(
            r.completed_jobs + r.dropped_jobs,
            scaled.len(),
            "{} lost jobs",
            spec.name()
        );
    }
}

#[test]
fn multi_resource_estimation_frees_package_constrained_nodes() {
    // Nodes with package A+B are scarce; most have only A. Jobs request
    // both packages but only exercise A, so estimation unlocks the A-only
    // pool.
    let cluster = ClusterBuilder::new()
        .pool_with(4, Capacity::new(32 * MB, u64::MAX, 0b11))
        .pool_with(28, Capacity::new(32 * MB, u64::MAX, 0b01))
        .build();
    let jobs: Workload = (0..40u64)
        .map(|i| {
            JobBuilder::new(i)
                .user(1)
                .app(1)
                .submit(Time::from_secs(i * 30))
                .nodes(4)
                .runtime(Time::from_secs(300))
                .requested_mem_kb(16 * MB)
                .used_mem_kb(8 * MB)
                .requested_packages(0b11)
                .used_packages(0b01)
                .build()
        })
        .collect();
    let base = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&jobs);
    let est = Simulation::new(
        SimConfig::default(),
        cluster,
        EstimatorSpec::MultiResource(MultiResourceConfig::default()),
    )
    .run(&jobs);
    assert_eq!(est.completed_jobs, 40);
    assert!(
        est.mean_wait_s() < base.mean_wait_s(),
        "package estimation must relieve the A+B pool: est {} vs base {}",
        est.mean_wait_s(),
        base.mean_wait_s()
    );
}
