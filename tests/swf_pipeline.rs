//! Integration: SWF files as the interchange format between the workload
//! tools and the simulator — the path a user of the real LANL CM5 trace
//! would take. SWF stores whole seconds, so the synthetic trace is first
//! quantized with [`swf::quantize`]; write→parse then reproduces it
//! exactly.

use resmatch::prelude::*;
use resmatch::workload::swf;

fn quantized_trace(jobs: usize, seed: u64) -> Workload {
    let w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    );
    swf::quantize(&w)
}

#[test]
fn synthetic_trace_round_trips_through_swf() {
    let original = quantized_trace(2_000, 13);
    let text = swf::write_str(&original, &["Computer: synthetic CM-5", "MaxNodes: 1024"]);
    let parsed = swf::parse_str(&text).expect("self-written SWF parses");
    assert_eq!(parsed.workload, original);
    assert_eq!(parsed.header.max_nodes, Some(1024));
}

#[test]
fn quantization_only_touches_times() {
    let raw = generate(
        &Cm5Config {
            jobs: 1_000,
            ..Cm5Config::default()
        },
        13,
    );
    let q = swf::quantize(&raw);
    assert_eq!(q.len(), raw.len());
    for (a, b) in raw.jobs().iter().zip(q.jobs()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.user, b.user);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.requested_mem_kb, b.requested_mem_kb);
        assert_eq!(a.used_mem_kb, b.used_mem_kb);
        assert!(a.submit.saturating_sub(b.submit) < Time::from_secs(1));
        assert!(a.runtime.saturating_sub(b.runtime) < Time::from_secs(1));
    }
}

#[test]
fn analysis_is_invariant_under_swf_round_trip() {
    let original = quantized_trace(5_000, 21);
    let text = swf::write_str(&original, &[]);
    let reparsed = swf::parse_str(&text).unwrap().workload;
    let a = trace_stats(&original);
    let b = trace_stats(&reparsed);
    assert_eq!(a, b);
    let ha = overprovisioning_histogram(&original, 8);
    let hb = overprovisioning_histogram(&reparsed, 8);
    assert_eq!(ha, hb);
}

#[test]
fn simulation_results_identical_for_parsed_trace() {
    let mut original = quantized_trace(1_000, 5);
    original.retain_max_nodes(512);
    let text = swf::write_str(&original, &[]);
    let reparsed = swf::parse_str(&text).unwrap().workload;

    let run = |w: &Workload| {
        Simulation::new(
            SimConfig::default(),
            paper_cluster(24),
            EstimatorSpec::paper_successive(),
        )
        .run(w)
    };
    assert_eq!(run(&original), run(&reparsed));
}

#[test]
fn swf_file_io() {
    let dir = std::env::temp_dir().join("resmatch_swf_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.swf");
    let original = quantized_trace(300, 2);
    std::fs::write(&path, swf::write_str(&original, &["Computer: test"])).unwrap();
    let parsed = swf::parse_file(&path).unwrap().unwrap();
    assert_eq!(parsed.workload, original);
    std::fs::remove_file(&path).ok();
}
