//! Declarative matchmaking: the estimator through Condor's eyes.
//!
//! The paper's related work grounds resource matching in Condor's ClassAds:
//! jobs and machines advertise attributes and requirements, and a
//! matchmaker pairs ads whose constraints mutually hold. This example
//! replays the paper's §1.1 motivating scenario in that language — then
//! shows what the estimator changes: *only the job ad's requested memory*.
//! The matchmaker, the machine ads, and the language are untouched, which
//! is exactly the integration property Figure 2 claims.
//!
//! Run with: `cargo run --release --example classad_matchmaking`

use resmatch::classad::bridge::{job_ad, machine_ad};
use resmatch::classad::{matches, rank, ClassAd};
use resmatch::prelude::*;

const MB: u64 = 1024;

fn main() {
    // The §1.1 machines: M1 has more memory than M2.
    let m1 = machine_ad(&Capacity::memory(32 * MB));
    let m2 = machine_ad(&Capacity::memory(24 * MB));

    // J1 requests the big machine's worth of memory but uses far less.
    let j1_request = Demand::memory(32 * MB);

    println!("== without estimation =============================================");
    println!(
        "J1 (requests 32 MB) vs M1 (32 MB): {}",
        matches(&job_ad(&j1_request), &m1).unwrap()
    );
    println!(
        "J1 (requests 32 MB) vs M2 (24 MB): {}",
        matches(&job_ad(&j1_request), &m2).unwrap()
    );
    println!("J1 is pinned to M1; J2 arriving behind it blocks. (\u{a7}1.1)");

    // The estimator walks J1's group down to 16 MB; the job ad is rewritten.
    let mut estimator = EstimatorSpec::paper_successive().build(&CapacityLadder::new(vec![
        32 * MB,
        24 * MB,
        16 * MB,
    ]));
    let ctx = EstimateContext::default();
    let job = JobBuilder::new(1)
        .user(1)
        .app(1)
        .requested_mem_kb(32 * MB)
        .used_mem_kb(5 * MB)
        .build();
    let d0 = estimator.estimate(&job, &ctx);
    estimator.feedback(&job, &d0, &Feedback::success(), &ctx);
    let estimated = estimator.estimate(&job, &ctx);

    println!("\n== with estimation ================================================");
    println!(
        "the estimator rewrote J1's ad: RequestedMemory {} MB -> {} MB",
        d0.mem_kb / MB,
        estimated.mem_kb / MB
    );
    println!(
        "J1 (estimated) vs M1 (32 MB): {}",
        matches(&job_ad(&estimated), &m1).unwrap()
    );
    println!(
        "J1 (estimated) vs M2 (24 MB): {}",
        matches(&job_ad(&estimated), &m2).unwrap()
    );
    println!("Both machines now match; M1 stays free for jobs that need it.");

    // Preferences still work: rank steers the estimated job to the
    // smallest sufficient machine (best-fit, declaratively).
    let mut preferenced = job_ad(&estimated);
    preferenced
        .insert_expr("Rank", "0 - other.Memory")
        .expect("rank parses");
    println!("\n== preferences (rank) =============================================");
    println!(
        "rank against M1: {}, against M2: {} -> matchmaker picks M2 (best fit)",
        rank(&preferenced, &m1).unwrap(),
        rank(&preferenced, &m2).unwrap()
    );

    // Arbitrary constraints compose: machines can be picky right back.
    let mut curfew_machine = ClassAd::new();
    curfew_machine
        .insert_int("Memory", 24 * MB as i64)
        .insert_int("Disk", i64::MAX)
        .insert_expr(
            "Requirements",
            "other.RequestedMemory <= my.Memory && other.RequestedRuntime <= 3600",
        )
        .expect("requirements parse");
    let mut short_job = resmatch::classad::bridge::job_request_ad(
        &JobBuilder::new(2)
            .requested_mem_kb(16 * MB)
            .requested_runtime(Time::from_secs(1800))
            .build(),
    );
    short_job
        .insert_expr("Requirements", "other.Memory >= my.RequestedMemory")
        .expect("requirements parse");
    println!("\n== bilateral constraints ==========================================");
    println!(
        "short job vs curfew machine (jobs <= 1h only): {}",
        matches(&short_job, &curfew_machine).unwrap()
    );
}
