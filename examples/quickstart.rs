//! Quickstart: estimate memory requirements for a stream of similar jobs.
//!
//! Builds the paper's motivating scenario by hand — a small heterogeneous
//! cluster and a stream of over-provisioned job submissions — and shows the
//! successive-approximation estimator (Algorithm 1) walking the estimate
//! down from the user request to the actual need, with one controlled
//! failure along the way.
//!
//! Run with: `cargo run --release --example quickstart`

use resmatch::prelude::*;

const MB: u64 = 1024;

fn main() {
    // A cluster with rungs at 32/24/16/8/4 MB — the capacity ladder
    // Algorithm 1 rounds its estimates onto.
    let cluster = ClusterBuilder::new()
        .pool(8, 32 * MB)
        .pool(8, 24 * MB)
        .pool(8, 16 * MB)
        .pool(8, 8 * MB)
        .pool(8, 4 * MB)
        .build();
    let ladder = cluster.memory_ladder();
    println!(
        "cluster: {} nodes, capacity ladder {:?} (MB)",
        cluster.total_nodes(),
        ladder.rungs().iter().map(|r| r / MB).collect::<Vec<_>>()
    );

    // The paper's Figure 7 job class: requests 32 MB, actually uses a bit
    // more than 5 MB.
    let mut estimator = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder.clone());
    let ctx = EstimateContext::default();

    println!("\nsubmission  granted   outcome          next-estimate");
    for round in 1..=7 {
        let job = JobBuilder::new(round)
            .user(17)
            .app(3)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(5 * MB + 200)
            .build();

        let demand = estimator.estimate(&job, &ctx);
        // The node actually granted is the ladder rung covering the demand.
        let node_mem = ladder.round_up(demand.mem_kb).unwrap_or(demand.mem_kb);
        let success = job.used_mem_kb <= node_mem;
        let fb = if success {
            Feedback::success()
        } else {
            Feedback::failure()
        };
        estimator.feedback(&job, &demand, &fb, &ctx);

        let snap = estimator.group_snapshot(&job).expect("group exists");
        println!(
            "#{round:<10} {:>4} MB   {:<16} E_i = {:.1} MB (alpha = {})",
            demand.mem_kb / MB,
            if success {
                "completed"
            } else {
                "FAILED (too small)"
            },
            snap.estimate_kb / MB as f64,
            snap.alpha,
        );
    }

    println!(
        "\nThe estimate settled at a four-fold reduction from the request —\n\
         the exact Figure 7 trajectory: 32 -> 16 -> 8 -> (4 fails) -> 8 frozen."
    );
}
