//! Implementing your own estimator against the public trait.
//!
//! The paper stresses that the estimator is "independent and can be
//! integrated with different scheduling policies and different resource
//! allocation schemes" — concretely, anything implementing
//! [`ResourceEstimator`] plugs into the simulator. This example writes a
//! deliberately simple estimator (a global multiplicative-decrease rule: cut
//! every request by a fixed fraction, back off globally on failure) and runs
//! it against the built-in ones.
//!
//! Run with: `cargo run --release --example custom_estimator`

use resmatch::prelude::*;

/// Cut every request to `factor` of its value; on any failure, raise the
/// factor halfway back to 1. A crude global policy — no similarity groups,
/// no per-job state — useful as a strawman.
struct GlobalHaircut {
    factor: f64,
}

impl ResourceEstimator for GlobalHaircut {
    fn name(&self) -> &'static str {
        "global-haircut"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        let mem_kb = ((job.requested_mem_kb as f64 * self.factor) as u64)
            .clamp(64.min(job.requested_mem_kb), job.requested_mem_kb);
        Demand {
            mem_kb,
            disk_kb: 0,
            packages: job.requested_packages,
        }
    }

    fn feedback(&mut self, _job: &Job, _granted: &Demand, fb: &Feedback, _ctx: &EstimateContext) {
        if fb.is_success() {
            // Greedily trim a little more.
            self.factor = (self.factor * 0.995).max(0.1);
        } else {
            // Someone got hurt: back off for everyone.
            self.factor = (self.factor + 1.0) / 2.0;
        }
    }
}

fn main() {
    let mut trace = generate(
        &Cm5Config {
            jobs: 6_000,
            ..Cm5Config::default()
        },
        7,
    );
    trace.retain_max_nodes(512);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.1);

    println!("estimator comparison on 512x32MB + 512x24MB at saturating load\n");
    println!(
        "{:<26} {:>8} {:>10} {:>9}",
        "estimator", "util", "slowdown", "fail%"
    );

    // The custom estimator goes through the builder's `boxed_estimator`.
    let custom = Simulation::builder()
        .cluster(cluster.clone())
        .boxed_estimator(Box::new(GlobalHaircut { factor: 0.5 }))
        .build()
        .expect("cluster and estimator are set")
        .run(&scaled);
    for result in [
        Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::PassThrough,
        )
        .run(&scaled),
        custom,
        Simulation::new(
            SimConfig::default(),
            cluster,
            EstimatorSpec::paper_successive(),
        )
        .run(&scaled),
    ] {
        println!(
            "{:<26} {:>8.3} {:>10.2} {:>8.3}%",
            result.estimator,
            result.utilization(),
            result.mean_slowdown(),
            result.failed_execution_fraction() * 100.0,
        );
    }

    println!(
        "\nThe global haircut shows why similarity groups matter: one backoff\n\
         penalizes every job, while Algorithm 1 confines mistakes to a group."
    );
}
