//! Heterogeneous cluster simulation: the paper's headline experiment.
//!
//! Replays a CM5-like trace on the Figure 5 cluster (512×32 MB + 512×24 MB)
//! under strict FCFS and compares every estimator in the workspace against
//! the no-estimation baseline at a saturating load — the setting in which
//! the paper reports a 58% utilization improvement.
//!
//! Run with: `cargo run --release --example heterogeneous_cluster [jobs]`

use resmatch::prelude::*;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    println!("generating {jobs}-job CM5-like trace ...");
    let mut trace = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    let dropped = trace.retain_max_nodes(512);
    println!("dropped {dropped} full-machine jobs (paper: 6 of 122,055)\n");

    let cluster = paper_cluster(24);
    let load = 1.2; // saturating: measures the plateau
    let scaled = scale_to_load(&trace, cluster.total_nodes(), load);
    println!(
        "cluster: 512x32MB + 512x24MB, offered load {:.2}, FCFS, implicit feedback",
        offered_load(&scaled, cluster.total_nodes())
    );

    let specs = [
        EstimatorSpec::PassThrough,
        EstimatorSpec::paper_successive(),
        EstimatorSpec::Robust(RobustConfig::default()),
        EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
        EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        EstimatorSpec::Regression(RegressionConfig::default()),
        EstimatorSpec::Oracle,
    ];

    println!(
        "\n{:<26} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "estimator", "util", "slowdown", "wait(s)", "fail%", "lowered%"
    );
    let mut baseline_util = None;
    for spec in specs {
        let mut cfg = SimConfig::default();
        if spec.wants_explicit_feedback() {
            cfg.feedback = FeedbackMode::Explicit;
        }
        let result = Simulation::new(cfg, cluster.clone(), spec).run(&scaled);
        let util = result.utilization();
        if spec == EstimatorSpec::PassThrough {
            baseline_util = Some(util);
        }
        let vs_base = baseline_util
            .map(|b| format!(" ({:+.0}%)", (util / b - 1.0) * 100.0))
            .unwrap_or_default();
        println!(
            "{:<26} {:>7.3}{:<8} {:>9.2} {:>10.0} {:>8.3}% {:>8.1}%",
            result.estimator,
            util,
            vs_base,
            result.mean_slowdown(),
            result.mean_wait_s(),
            result.failed_execution_fraction() * 100.0,
            result.lowered_job_fraction() * 100.0,
        );
    }

    println!(
        "\nThe paper reports +58% utilization for successive approximation at\n\
         the saturation point of the full trace on this cluster; the oracle\n\
         row bounds what any estimator could achieve."
    );
}
