//! Capacity planning: choose the cluster that maximizes estimation benefit.
//!
//! The paper's Figure 8 analysis ends with a design recipe: "given the
//! distribution of requested and actual resource capacities, possibly
//! derived from a scheduler log, and a resource estimation algorithm, it is
//! possible to design a cluster ... by choosing the resource capacities of
//! the cluster machines to maximize the number of jobs for which estimation
//! is advantageous." This example runs that recipe: it sweeps the second
//! pool's memory size, counts benefiting node-weight per configuration, and
//! recommends the best split.
//!
//! Run with: `cargo run --release --example capacity_planning [jobs]`

use resmatch::prelude::*;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let mut trace = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    trace.retain_max_nodes(512);
    println!("planning over a {}-job trace\n", trace.len());

    // Candidate second-pool sizes (the first pool stays at the CM5's 32 MB).
    let candidates: Vec<u64> = vec![4, 8, 12, 16, 20, 24, 28, 32];
    let points = run_cluster_sweep(
        &trace,
        &candidates,
        EstimatorSpec::paper_successive(),
        SimConfig::default(),
        1.2,
    );

    // Memory is what the cluster designer pays for: score each split by
    // goodput per installed memory, normalized so the all-32 MB machine
    // scores its own utilization. A cheaper second pool wins whenever
    // estimation recovers enough of the big machine's goodput.
    let efficiency =
        |p: &ClusterSweepPoint| p.estimated.utilization() * 64.0 / (32 + p.second_pool_mb) as f64;

    println!(
        "{:>10} {:>10} {:>10} {:>7} {:>17} {:>12}",
        "pool (MB)", "util w/o", "util w/", "ratio", "benefiting nodes", "util per mem"
    );
    let mut best: Option<&ClusterSweepPoint> = None;
    for p in &points {
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>7.2} {:>17} {:>12.3}",
            p.second_pool_mb,
            p.baseline.utilization(),
            p.estimated.utilization(),
            p.utilization_ratio(),
            p.estimated.benefiting_node_count(),
            efficiency(p),
        );
        if best.is_none_or(|b| efficiency(p) > efficiency(b)) {
            best = Some(p);
        }
    }

    let best = best.expect("non-empty sweep");
    println!(
        "\nrecommended split: 512 x 32 MB + 512 x {} MB \
         (estimated utilization {:.3}, {:.0}% over no-estimation,\n\
         memory-normalized efficiency {:.3} vs {:.3} for the all-32MB machine)",
        best.second_pool_mb,
        best.estimated.utilization(),
        (best.utilization_ratio() - 1.0) * 100.0,
        efficiency(best),
        points
            .iter()
            .find(|p| p.second_pool_mb == 32)
            .map(efficiency)
            .unwrap_or(0.0),
    );
    println!(
        "The paper finds improvement only when the second pool falls in the\n\
         16-28 MB band, with the gain linear in the benefiting jobs' node\n\
         count — and with estimation, the cheaper heterogeneous split beats\n\
         the homogeneous machine per unit of installed memory."
    );
}
