//! Trace analysis: the paper's Section 1-2 workload characterization.
//!
//! Generates the full-scale calibrated CM5-like trace (or parses a real SWF
//! file if you pass a path) and reproduces the analysis behind Figures 1, 3,
//! and 4: the over-provisioning histogram with its log-linear fit, the
//! similarity-group size distribution, and the gain-vs-similarity scatter.
//!
//! Run with: `cargo run --release --example trace_analysis [path/to/trace.swf]`

use resmatch::prelude::*;
use resmatch::workload::swf;

fn load_trace() -> Workload {
    if let Some(path) = std::env::args().nth(1) {
        println!("parsing SWF trace {path} ...");
        let parsed = swf::parse_file(std::path::Path::new(&path))
            .expect("readable file")
            .expect("valid SWF");
        if let Some(computer) = parsed.header.computer {
            println!("  computer: {computer}");
        }
        parsed.workload
    } else {
        println!("generating calibrated synthetic LANL-CM5-like trace (122,055 jobs) ...");
        generate(&Cm5Config::default(), 42)
    }
}

fn main() {
    let trace = load_trace();
    let stats = trace_stats(&trace);

    println!("\n== trace overview =================================================");
    println!("jobs:                  {}", stats.jobs);
    println!(
        "similarity groups:     {} (mean size {:.1})",
        stats.groups, stats.mean_group_size
    );
    println!(
        "P(request >= 2x used): {:.1}%  (paper: ~32.8%)",
        stats.overprovisioned_2x * 100.0
    );
    println!("max over-provisioning: {:.0}x", stats.max_ratio);
    println!(
        "total demand:          {:.2e} node-seconds",
        stats.node_seconds
    );

    println!("\n== Figure 1: over-provisioning ratio histogram ====================");
    let hist = overprovisioning_histogram(&trace, 8);
    println!("{:<14} {:>10} {:>10}", "ratio bin", "jobs", "fraction");
    for i in 0..hist.num_bins() {
        println!(
            "[{:>4.0}, {:>4.0})  {:>10} {:>9.2}%",
            hist.bin_lower(i),
            hist.bin_lower(i + 1),
            hist.count(i),
            hist.fraction(i) * 100.0
        );
    }
    println!("beyond last bin: {}", hist.overflow());
    if let Some(fit) = histogram_log_fit(&hist) {
        println!(
            "log-linear fit: slope {:.3}/bin, R^2 = {:.2}  (paper: R^2 = 0.69)",
            fit.slope, fit.r_squared
        );
    }

    println!("\n== Figure 3: jobs by similarity-group size ========================");
    let dist = group_size_distribution(&trace);
    let mut shown = 0;
    println!("{:<12} {:>8} {:>12}", "group size", "groups", "job share");
    for bucket in &dist {
        if shown < 12 || bucket.size == dist.last().unwrap().size {
            println!(
                "{:<12} {:>8} {:>11.2}%",
                bucket.size,
                bucket.groups,
                bucket.job_fraction * 100.0
            );
            shown += 1;
        }
    }
    let big_jobs: f64 = dist
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.job_fraction)
        .sum();
    println!(
        "jobs in groups of >= 10: {:.1}% (paper: ~83%)",
        big_jobs * 100.0
    );

    println!("\n== Figure 4: possible gain vs. group similarity ===================");
    let points = gain_vs_range(&trace, 10);
    println!("groups with >= 10 jobs: {}", points.len());
    let tight = points.iter().filter(|p| p.range <= 1.1).count();
    let high_gain = points.iter().filter(|p| p.gain >= 10.0).count();
    println!(
        "  tightly similar (range <= 1.1): {:.1}%",
        tight as f64 / points.len().max(1) as f64 * 100.0
    );
    println!("  gain >= 10x available in {high_gain} groups");
    println!("\nsample points (range, gain, size):");
    for p in points.iter().take(10) {
        println!(
            "  range {:>6.2}  gain {:>7.2}  size {:>5}",
            p.range, p.gain, p.size
        );
    }

    println!("\n== heaviest users (who over-provisions?) ==========================");
    let profiles = resmatch::workload::analysis::user_profiles(&trace);
    println!(
        "{:<8} {:>8} {:>8} {:>14} {:>16}",
        "user", "jobs", "groups", "median ratio", "node-seconds"
    );
    for p in profiles.iter().take(10) {
        println!(
            "{:<8} {:>8} {:>8} {:>14.2} {:>16.2e}",
            p.user, p.jobs, p.groups, p.median_ratio, p.node_seconds
        );
    }
}
