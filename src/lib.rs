//! # resmatch — resource matching with estimation of actual job requirements
//!
//! A from-scratch reproduction of *"Improving Resource Matching Through
//! Estimation of Actual Job Requirements"* (Elad Yom-Tov and Yariv Aridor,
//! IBM Haifa Research Laboratory / HPDC 2006).
//!
//! Users over-provision: on the LANL CM5 trace about a third of all jobs
//! request at least twice the memory they use, some a hundred times more. On
//! a heterogeneous cluster that pins jobs to the big-memory machines while
//! smaller ones idle. The paper's fix is an *estimator* between submission
//! and resource matching that learns, per group of similar jobs, how much a
//! job actually needs — and this workspace rebuilds the whole system around
//! that idea:
//!
//! - [`workload`] — job model, SWF trace parsing, a calibrated synthetic
//!   LANL-CM5-like generator, over-provisioning analysis;
//! - [`cluster`] — heterogeneous node pools, capacities, allocation,
//!   matching policies;
//! - [`core`] — the estimators: Algorithm 1 (successive approximation) plus
//!   the full Table 1 matrix (last-instance, regression, reinforcement
//!   learning), baselines, and the paper's §2.3 extensions;
//! - [`sim`] — a discrete-event scheduling simulator with the paper's FCFS
//!   and failure semantics, metrics, and parallel experiment drivers;
//! - [`service`] — the estimators as a long-running online service:
//!   similarity groups hash-sharded across shard-local estimators, batched
//!   feedback, and versioned binary snapshot/restore;
//! - [`stats`] — histograms, regression, distributions, and online
//!   statistics used throughout;
//! - [`classad`] — a miniature Condor-style ClassAd matchmaking language
//!   (the declarative substrate the paper's related work builds on), with
//!   a bridge proving it matches exactly like the native matcher and a
//!   compiled [`classad::Matchmaker`] that plugs straight into the
//!   simulator's allocation path (`Simulation::with_matchmaking`).
//!
//! # Quickstart
//!
//! ```
//! use resmatch::prelude::*;
//!
//! // A small CM5-like trace and the paper's Figure 5 cluster.
//! let trace = generate(&Cm5Config { jobs: 400, ..Cm5Config::default() }, 42);
//! let cluster = ClusterBuilder::new()
//!     .pool(512, 32 * 1024)
//!     .pool(512, 24 * 1024)
//!     .build();
//!
//! // Simulate without and with estimation.
//! let baseline = Simulation::new(SimConfig::default(), cluster.clone(), EstimatorSpec::PassThrough)
//!     .run(&trace);
//! let estimated = Simulation::new(SimConfig::default(), cluster, EstimatorSpec::paper_successive())
//!     .run(&trace);
//!
//! assert_eq!(baseline.completed_jobs, estimated.completed_jobs);
//! // Estimation never hurts utilization on this workload family.
//! assert!(estimated.utilization() >= baseline.utilization() * 0.95);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use resmatch_classad as classad;
pub use resmatch_cluster as cluster;
pub use resmatch_core as core;
pub use resmatch_service as service;
pub use resmatch_sim as sim;
pub use resmatch_stats as stats;
pub use resmatch_workload as workload;

// Compile-check every Rust snippet in the README as a doctest, so the
// docs job catches API drift the moment a signature changes. Blocks that
// would simulate the full 122k-job trace are fenced `rust,no_run`: they
// must build, not execute, under `cargo test --doc`.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use resmatch_classad::{Matchmaker, PoolAd};
    pub use resmatch_cluster::builder::{cm5_cluster, paper_cluster};
    pub use resmatch_cluster::{
        Allocation, Capacity, CapacityLadder, Cluster, ClusterBuilder, Demand, MatchAll,
        MatchPolicy, PoolMatcher,
    };
    pub use resmatch_core::prelude::*;
    pub use resmatch_service::prelude::*;
    pub use resmatch_sim::prelude::*;
    pub use resmatch_workload::analysis::{
        gain_vs_range, group_size_distribution, histogram_log_fit, overprovisioned_fraction,
        overprovisioning_histogram, trace_stats, GroupKey,
    };
    pub use resmatch_workload::attrs::{synthesize_attributes, AttrConfig};
    pub use resmatch_workload::job::JobBuilder;
    pub use resmatch_workload::load::{offered_load, rescale_arrivals, scale_to_load};
    pub use resmatch_workload::synthetic::{generate, service_stream, Cm5Config};
    pub use resmatch_workload::{Job, JobId, JobStatus, Time, Workload};
}
