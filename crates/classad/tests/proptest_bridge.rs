//! Property test: the declarative ClassAd matchmaker and the native
//! capacity matcher agree on every (demand, capacity) pair.

use proptest::prelude::*;
use resmatch_classad::bridge::{job_ad, machine_ad};
use resmatch_classad::matches;
use resmatch_cluster::{Capacity, Demand};

proptest! {
    #[test]
    fn declarative_equals_native(
        node_mem in 0u64..100_000,
        node_disk in 0u64..100_000,
        node_pkgs in any::<u32>(),
        req_mem in 0u64..100_000,
        req_disk in 0u64..100_000,
        req_pkgs in any::<u32>(),
    ) {
        let capacity = Capacity::new(node_mem, node_disk, node_pkgs);
        let demand = Demand::new(req_mem, req_disk, req_pkgs);
        let native = capacity.satisfies(&demand);
        let declarative = matches(&job_ad(&demand), &machine_ad(&capacity)).unwrap();
        prop_assert_eq!(native, declarative);
    }

    #[test]
    fn estimation_only_widens_the_match_set(
        node_mem in 0u64..100_000,
        req_mem in 1u64..100_000,
        shrink in 0.01f64..1.0,
    ) {
        // An estimator only lowers demands; a machine matching the raw
        // request must also match the estimate.
        let capacity = Capacity::memory(node_mem);
        let raw = Demand::memory(req_mem);
        let estimated = Demand::memory(((req_mem as f64 * shrink) as u64).max(1));
        let raw_match = matches(&job_ad(&raw), &machine_ad(&capacity)).unwrap();
        let est_match = matches(&job_ad(&estimated), &machine_ad(&capacity)).unwrap();
        prop_assert!(!raw_match || est_match, "estimation must never shrink the candidate set");
    }
}
