//! Property test: the indexed [`Matchmaker`] is *extensionally equal* to
//! the tree-walking ClassAd evaluator it replaced. For random pool
//! tables (capacities, arch tags), demand streams, and operator
//! constraint/rank expressions — machine-only and job-reading alike —
//! every per-pool verdict, every rank on a matched pool, and every
//! published eligibility bit must agree with evaluating the generated
//! ads directly via [`resmatch_classad::matches`]/[`resmatch_classad::rank`].
//!
//! This is the oracle that licenses the bitset/specialization layers: the
//! index never answers a question differently from the ads themselves.
//! (The private interpreter fallback is pinned against the index by the
//! `interpreter_fallback_agrees_with_the_index` unit test, which can
//! reach the flag the bridge texts never trip in practice.)

use proptest::prelude::*;
use resmatch_classad::bridge::{job_ad, machine_ad};
use resmatch_classad::{matches, rank, ClassAd, Matchmaker, PoolAd};
use resmatch_cluster::{Capacity, Demand, PoolMatcher};

/// Deterministic splitmix64 stream (same idiom as `alloc_equivalence`):
/// one shrinkable u64 seed derives the whole scenario.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const ARCHES: [&str; 3] = ["x86", "sparc", "cm5"];

fn random_pools(rng: &mut u64) -> Vec<PoolAd> {
    let n = 1 + (next(rng) % 6) as usize;
    (0..n)
        .map(|_| {
            // Capacities drawn from a small rung set so demands genuinely
            // tie, straddle, and exceed pool thresholds.
            let mem = 1024 * (next(rng) % 33);
            let capacity = if next(rng).is_multiple_of(2) {
                Capacity::memory(mem)
            } else {
                Capacity::new(mem, 512 * (next(rng) % 9), (next(rng) % 16) as u32)
            };
            let ad = PoolAd::new(capacity);
            match next(rng) % 4 {
                0 => ad,
                i => ad.with_arch(ARCHES[(i - 1) as usize]),
            }
        })
        .collect()
}

fn random_demand(rng: &mut u64) -> Demand {
    Demand {
        mem_kb: 1024 * (next(rng) % 34),
        disk_kb: 512 * (next(rng) % 10),
        packages: (next(rng) % 16) as u32,
    }
}

/// The machine ad the matchmaker sees for a pool, arch tag included.
fn pool_machine_ad(pool: &PoolAd) -> ClassAd {
    let mut ad = machine_ad(&pool.capacity);
    if let Some(arch) = &pool.arch {
        ad.insert_str("Arch", arch);
    }
    ad
}

/// Tree-walk oracle for one (job, constraint, machine) triple: the
/// symmetric ad match, with the operator constraint conjoined on the job
/// side — exactly `true` or no match, like any requirement.
fn oracle_matches(job: &ClassAd, machine: &ClassAd, constraint: Option<&str>) -> bool {
    let base = matches(job, machine).unwrap_or(false);
    let extra = constraint.is_none_or(|text| {
        let mut probe = job.clone();
        probe
            .insert_expr("OpConstraint", text)
            .expect("template parses");
        probe
            .evaluate("OpConstraint", Some(machine))
            .map(|v| v.is_true())
            .unwrap_or(false)
    });
    base && extra
}

/// Tree-walk oracle for a rank value (my = job, other = machine).
fn oracle_rank(job: &ClassAd, machine: &ClassAd, text: &str) -> f64 {
    let mut probe = job.clone();
    probe.insert_expr("Rank", text).expect("template parses");
    rank(&probe, machine).unwrap_or(0.0)
}

/// Constraint templates: none, machine-only (foldable into the static bit
/// row), and job-reading (per-signature interpretation).
const CONSTRAINTS: [Option<&str>; 5] = [
    None,
    Some("other.Memory >= 8192"),
    Some("other.Arch == \"x86\""),
    Some("my.RequestedMemory * 2 <= other.Memory"),
    Some("my.RequestedDisk <= other.Disk && other.Memory > 0"),
];

/// Rank templates: none, machine-only (per-pool memo), job-reading
/// (per-signature memo on matched pools).
const RANKS: [Option<&str>; 3] = [
    None,
    Some("other.Memory"),
    Some("other.Memory - my.RequestedMemory"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn indexed_matcher_equals_tree_walking_ads(
        seed in any::<u64>(),
        constraint_sel in 0usize..CONSTRAINTS.len(),
        rank_sel in 0usize..RANKS.len(),
    ) {
        let mut rng = seed;
        let pools = random_pools(&mut rng);
        let constraint = CONSTRAINTS[constraint_sel];
        let rank_text = RANKS[rank_sel];

        let mut mm = Matchmaker::new(&pools);
        if let Some(text) = constraint {
            mm = mm.with_constraint(text).expect("template parses");
        }
        if let Some(text) = rank_text {
            mm = mm.with_rank(text).expect("template parses");
        }
        let machine_ads: Vec<ClassAd> = pools.iter().map(pool_machine_ad).collect();

        for _ in 0..24 {
            let demand = random_demand(&mut rng);
            let job = job_ad(&demand);
            mm.prepare(&demand);
            let bits = mm.eligible_pools().expect("matchmaker always indexes").to_vec();
            for (p, pool) in pools.iter().enumerate() {
                let want = oracle_matches(&job, &machine_ads[p], constraint);
                prop_assert_eq!(
                    mm.matches(p, &pool.capacity),
                    want,
                    "verdict: pool {} {:?}, demand {:?}",
                    p, pool.capacity, demand
                );
                prop_assert_eq!(
                    bits[p >> 6] >> (p & 63) & 1 != 0,
                    want,
                    "published bit: pool {}, demand {:?}",
                    p, demand
                );
                // Ranks are only defined on matched pools (the allocator
                // ranks candidates, which matched by construction).
                if let (true, Some(text)) = (want, rank_text) {
                    prop_assert_eq!(
                        mm.rank(p, &pool.capacity),
                        oracle_rank(&job, &machine_ads[p], text),
                        "rank: pool {}, demand {:?}",
                        p, demand
                    );
                }
            }
        }
    }
}
