//! Property test: driving `Cluster::try_allocate_matched` with a
//! constraint-free [`Matchmaker`] reproduces the native allocator's
//! decisions *exactly* — same grants, same refusals, same node ids in the
//! same order — across random clusters, demand streams, and interleaved
//! releases. This is the contract that lets the simulator route every
//! allocation through the matchmaking seam without a legacy fork.

use proptest::prelude::*;
use resmatch_classad::Matchmaker;
use resmatch_cluster::{
    Allocation, Capacity, Cluster, ClusterBuilder, Demand, MatchPolicy, PoolMatcher,
};

/// Deterministic splitmix64 stream: the proptest input is one seed, the
/// operation sequence is derived (vendored proptest has no recursive or
/// filtered strategies, and one u64 shrinks better than forty).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build_cluster(rng: &mut u64) -> Cluster {
    let pools = 2 + (next(rng) % 4) as usize;
    let mut b = ClusterBuilder::new();
    for _ in 0..pools {
        let nodes = 1 + (next(rng) % 8) as u32;
        let mem = 1024 * (1 + next(rng) % 32);
        // Mix unconstrained-disk pools with finite ones, and vary the
        // package mask so eligibility genuinely differs per pool.
        let capacity = if next(rng).is_multiple_of(2) {
            Capacity::memory(mem)
        } else {
            Capacity::new(mem, 1024 * (1 + next(rng) % 16), (next(rng) % 16) as u32)
        };
        b = b.pool_with(nodes, capacity);
    }
    b.build()
}

fn random_demand(rng: &mut u64) -> Demand {
    Demand {
        mem_kb: 1024 * (1 + next(rng) % 32),
        disk_kb: if next(rng).is_multiple_of(2) {
            0
        } else {
            1024 * (next(rng) % 20)
        },
        packages: (next(rng) % 16) as u32,
    }
}

proptest! {
    #[test]
    fn constraint_free_matchmaker_reproduces_native_allocations(
        seed in any::<u64>(),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => MatchPolicy::FirstFit,
            1 => MatchPolicy::BestFit,
            _ => MatchPolicy::WorstFit,
        };
        let mut rng = seed;
        let mut native = build_cluster(&mut rng);
        let mut matched = native.clone();
        let mut mm = Matchmaker::from_cluster(&native);

        let mut live_native: Vec<Allocation> = Vec::new();
        let mut live_matched: Vec<Allocation> = Vec::new();
        let mut token = 0u64;

        for _ in 0..60 {
            if next(&mut rng).is_multiple_of(3) && !live_native.is_empty() {
                // Release the same (randomly chosen) grant from both.
                let i = (next(&mut rng) as usize) % live_native.len();
                native.release(live_native.swap_remove(i));
                matched.release(live_matched.swap_remove(i));
                continue;
            }
            let demand = random_demand(&mut rng);
            let count = 1 + (next(&mut rng) % 6) as u32;

            // Counting agreement, before any mutation.
            mm.prepare(&demand);
            prop_assert_eq!(
                native.free_nodes_satisfying(&demand),
                matched.free_nodes_satisfying_matched(&demand, &mut mm),
            );
            prop_assert_eq!(
                native.nodes_satisfying(&demand),
                matched.nodes_satisfying_matched(&demand, &mut mm),
            );

            let a = native.try_allocate(count, &demand, policy, token);
            mm.prepare(&demand);
            let b = matched.try_allocate_matched(count, &demand, policy, token, &mut mm);
            token += 1;
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.nodes(), b.nodes(), "node draw order diverged");
                    prop_assert_eq!(a.per_pool(), b.per_pool(), "pool draw order diverged");
                    prop_assert_eq!(
                        native.allocation_min_mem(&a),
                        matched.allocation_min_mem(&b)
                    );
                    prop_assert_eq!(
                        native.allocation_min_disk(&a),
                        matched.allocation_min_disk(&b)
                    );
                    live_native.push(a);
                    live_matched.push(b);
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "grant/refusal diverged: native={:?} matched={:?}",
                        a.is_some(),
                        b.is_some()
                    )));
                }
            }
            prop_assert_eq!(native.free_nodes(), matched.free_nodes());
        }
    }
}
