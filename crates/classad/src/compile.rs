//! A compiled form of ClassAd expressions for hot-path evaluation.
//!
//! The tree-walking evaluator in [`crate::eval`] resolves every attribute
//! reference through a `BTreeMap` lookup and recurses through boxed AST
//! nodes — fine for a match or two, unacceptable inside an allocator that
//! re-evaluates requirements on every queue-head retry. This module
//! compiles an [`Expr`] against a pair of [`AdSchema`]s into a flat
//! postfix instruction stream ([`CompiledExpr`]) evaluated iteratively
//! over dense slot arrays, with no lookups, no recursion, and no
//! allocation beyond a caller-reused value stack.
//!
//! # The slot model
//!
//! A schema fixes the set of *literal* attributes an ad may carry and
//! assigns each a dense slot index; an ad becomes a `Vec<Value>` row where
//! [`Value::Undefined`] means "absent". This is the one place compiled
//! semantics are narrower than the tree walk: compiled ads hold literal
//! values only (no expression-valued attributes to dereference, so no
//! reference cycles either), and an unqualified reference falls through
//! from `my` to `other` on an undefined slot, whereas the tree walk
//! distinguishes a stored literal `undefined` from a missing attribute.
//! Bridge-generated ads never store `undefined`, so the two evaluators
//! agree on everything the matchmaker produces — a property test below
//! pins that equivalence on random expressions and ads.
//!
//! References to attributes in neither schema compile to a constant
//! `undefined`, exactly what the tree walk yields for a missing attribute.
//!
//! Logical short-circuiting survives compilation: `&&`/`||` compile to a
//! conditional forward jump that skips the right operand when the left is
//! exactly `false`/`true`, reproducing the tree walk's asymmetric
//! semantics (`false && error` is `false`, `error && false` is what
//! [`Value::and`] says).

use std::fmt;

use crate::parser::{BinOp, Expr, Scope};
use crate::value::Value;

/// A dense attribute layout: the set of literal attribute names one side
/// of a match may carry, each mapped to a slot index. Build one per ad
/// *shape* (all machine ads share one schema, all job ads another), then
/// represent each concrete ad as a `Vec<Value>` row from
/// [`AdSchema::blank_row`].
#[derive(Debug, Clone, Default)]
pub struct AdSchema {
    /// Lowered attribute names in slot order.
    names: Vec<String>,
}

impl AdSchema {
    /// An empty schema.
    pub fn new() -> Self {
        AdSchema::default()
    }

    /// Add an attribute (case-insensitive), returning its slot. Adding an
    /// existing name returns the existing slot.
    ///
    /// # Panics
    /// Panics past `u16::MAX` slots.
    pub fn add(&mut self, name: &str) -> u16 {
        let lower = name.to_ascii_lowercase();
        if let Some(slot) = self.slot_lowered(&lower) {
            return slot;
        }
        assert!(self.names.len() < u16::MAX as usize, "schema too large");
        self.names.push(lower);
        (self.names.len() - 1) as u16
    }

    /// Slot of an attribute (case-insensitive), if present.
    pub fn slot(&self, name: &str) -> Option<u16> {
        self.slot_lowered(&name.to_ascii_lowercase())
    }

    fn slot_lowered(&self, lower: &str) -> Option<u16> {
        self.names.iter().position(|n| n == lower).map(|i| i as u16)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no attributes have been added.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// A fresh all-absent ad row for this schema (every slot
    /// [`Value::Undefined`]).
    pub fn blank_row(&self) -> Vec<Value> {
        vec![Value::Undefined; self.names.len()]
    }
}

/// One postfix instruction. Every instruction nets exactly one value onto
/// the stack except `Bin` (pops two, pushes one) and the unary/jump forms.
#[derive(Debug, Clone)]
enum Instr {
    /// Push a literal.
    Push(Value),
    /// Push `my`'s slot value.
    LoadMy(u16),
    /// Push `other`'s slot value.
    LoadOther(u16),
    /// Push `my`'s slot value, falling through to `other`'s when absent —
    /// the unqualified-reference resolution order.
    LoadEither(u16, u16),
    /// Logical not of the top of stack.
    Not,
    /// Arithmetic negation of the top of stack.
    Neg,
    /// Apply a binary operator to the top two stack values.
    Bin(BinOp),
    /// Jump to the absolute instruction index when the top of stack is
    /// exactly `false`, leaving it in place as the result (`&&`
    /// short-circuit).
    JmpIfFalse(u32),
    /// Jump when the top of stack is exactly `true` (`||` short-circuit).
    JmpIfTrue(u32),
}

/// A compiled expression: evaluate with [`CompiledExpr::eval`] against two
/// ad rows laid out by the schemas it was compiled for.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    instrs: Vec<Instr>,
}

impl fmt::Display for CompiledExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} instrs>", self.instrs.len())
    }
}

impl CompiledExpr {
    /// Number of instructions — the unit of the hot-path cost model in
    /// DESIGN.md §12.
    pub fn ops(&self) -> usize {
        self.instrs.len()
    }

    /// Evaluate against the ad rows `my` and `other`. `stack` is caller
    /// scratch, reused across calls so steady-state evaluation allocates
    /// nothing; its contents on entry are ignored.
    ///
    /// Rows shorter than their schema are treated as all-absent past their
    /// end (slots out of range read as `undefined`).
    pub fn eval(&self, my: &[Value], other: &[Value], stack: &mut Vec<Value>) -> Value {
        fn slot(row: &[Value], i: u16) -> Value {
            row.get(i as usize).cloned().unwrap_or(Value::Undefined)
        }
        stack.clear();
        let mut pc = 0usize;
        while pc < self.instrs.len() {
            match &self.instrs[pc] {
                Instr::Push(v) => stack.push(v.clone()),
                Instr::LoadMy(i) => stack.push(slot(my, *i)),
                Instr::LoadOther(i) => stack.push(slot(other, *i)),
                Instr::LoadEither(m, o) => {
                    let v = slot(my, *m);
                    stack.push(if v == Value::Undefined {
                        slot(other, *o)
                    } else {
                        v
                    });
                }
                Instr::Not => {
                    let v = stack.pop().expect("invariant: compiler balanced the stack");
                    stack.push(v.not());
                }
                Instr::Neg => {
                    let v = stack.pop().expect("invariant: compiler balanced the stack");
                    stack.push(v.neg());
                }
                Instr::Bin(op) => {
                    let b = stack.pop().expect("invariant: compiler balanced the stack");
                    let a = stack.pop().expect("invariant: compiler balanced the stack");
                    stack.push(match op {
                        BinOp::Add => a.add(&b),
                        BinOp::Sub => a.sub(&b),
                        BinOp::Mul => a.mul(&b),
                        BinOp::Div => a.div(&b),
                        BinOp::Lt => a.compare(&b, |o| o.is_lt()),
                        BinOp::Le => a.compare(&b, |o| o.is_le()),
                        BinOp::Gt => a.compare(&b, |o| o.is_gt()),
                        BinOp::Ge => a.compare(&b, |o| o.is_ge()),
                        BinOp::Eq => a.compare(&b, |o| o.is_eq()),
                        BinOp::Ne => a.compare(&b, |o| o.is_ne()),
                        BinOp::And => a.and(&b),
                        BinOp::Or => a.or(&b),
                    });
                }
                Instr::JmpIfFalse(target) => {
                    if stack.last() == Some(&Value::Bool(false)) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::JmpIfTrue(target) => {
                    if stack.last() == Some(&Value::Bool(true)) {
                        pc = *target as usize;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        stack.pop().unwrap_or(Value::Undefined)
    }

    /// [`CompiledExpr::eval`] coerced to a match verdict: true iff the
    /// result is exactly `true`.
    pub fn eval_true(&self, my: &[Value], other: &[Value], stack: &mut Vec<Value>) -> bool {
        self.eval(my, other, stack).is_true()
    }

    /// [`CompiledExpr::eval`] coerced to a rank: numbers as themselves,
    /// `true` as 1, everything else 0 (Condor's convention, identical to
    /// [`crate::ad::rank`]).
    pub fn eval_rank(&self, my: &[Value], other: &[Value], stack: &mut Vec<Value>) -> f64 {
        match self.eval(my, other, stack) {
            Value::Int(i) => i as f64,
            Value::Float(f) => f,
            Value::Bool(true) => 1.0,
            _ => 0.0,
        }
    }

    /// Whether evaluation can read the `my` row at all. A program that
    /// never does is a pure function of `other` — its verdict or rank per
    /// machine row can be computed once at setup and memoized for the
    /// matcher's whole lifetime (the machine table is fixed).
    pub fn reads_my(&self) -> bool {
        self.instrs
            .iter()
            .any(|i| matches!(i, Instr::LoadMy(_) | Instr::LoadEither(..)))
    }
}

/// Compile `expr` for evaluation against a `my` row laid out by
/// `my_schema` and an `other` row laid out by `other_schema`.
///
/// References to attributes absent from the relevant schema compile to
/// constant `undefined` — the same value the tree walk produces for a
/// missing attribute.
pub fn compile(expr: &Expr, my_schema: &AdSchema, other_schema: &AdSchema) -> CompiledExpr {
    let mut instrs = Vec::new();
    emit(expr, my_schema, other_schema, &mut instrs);
    CompiledExpr { instrs }
}

fn emit(expr: &Expr, my: &AdSchema, other: &AdSchema, out: &mut Vec<Instr>) {
    match expr {
        Expr::Int(i) => out.push(Instr::Push(Value::Int(*i))),
        Expr::Float(x) => out.push(Instr::Push(Value::Float(*x))),
        Expr::Bool(b) => out.push(Instr::Push(Value::Bool(*b))),
        Expr::Str(s) => out.push(Instr::Push(Value::Str(s.clone()))),
        Expr::Undefined => out.push(Instr::Push(Value::Undefined)),
        Expr::Error => out.push(Instr::Push(Value::Error)),
        Expr::Attr { scope, name } => {
            let (m, o) = (my.slot(name), other.slot(name));
            out.push(match (scope, m, o) {
                (Scope::My, Some(s), _) => Instr::LoadMy(s),
                (Scope::Other, _, Some(s)) => Instr::LoadOther(s),
                (Scope::Either, Some(ms), Some(os)) => Instr::LoadEither(ms, os),
                (Scope::Either, Some(s), None) => Instr::LoadMy(s),
                (Scope::Either, None, Some(s)) => Instr::LoadOther(s),
                _ => Instr::Push(Value::Undefined),
            });
        }
        Expr::Unary { logical, expr } => {
            emit(expr, my, other, out);
            out.push(if *logical { Instr::Not } else { Instr::Neg });
        }
        Expr::Binary { op, lhs, rhs } => {
            emit(lhs, my, other, out);
            let jump_at = match op {
                BinOp::And => {
                    out.push(Instr::JmpIfFalse(0));
                    Some(out.len() - 1)
                }
                BinOp::Or => {
                    out.push(Instr::JmpIfTrue(0));
                    Some(out.len() - 1)
                }
                _ => None,
            };
            emit(rhs, my, other, out);
            out.push(Instr::Bin(*op));
            if let Some(at) = jump_at {
                // Land just past the Bin, with the deciding operand still
                // on the stack as the result.
                let target = out.len() as u32;
                // `at` indexes the jump pushed above; nothing else can sit
                // there, so a non-jump is simply left untouched.
                if let Instr::JmpIfFalse(t) | Instr::JmpIfTrue(t) = &mut out[at] {
                    *t = target;
                }
            }
        }
    }
}

/// A slot reference inside a specialized requirement atom: which ad row
/// the operand reads, and which slot of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRef {
    /// Slot in the `my` row.
    My(u16),
    /// Slot in the `other` row.
    Other(u16),
}

/// The canonical-conjunction shape of a `Requirements` program, as
/// recognized by [`specialize`]: a bag of threshold, flag, and string-tag
/// atoms whose conjunction *is* the program.
///
/// Soundness of atom-wise evaluation: a match verdict demands the whole
/// program evaluate to exactly `true`, and by [`Value::and`]'s truth table
/// an `&&`-tree is exactly `true` iff every conjunct is exactly `true`
/// (any non-`true` operand — `false`, `undefined`, `error`, a non-bool —
/// yields a non-`true` conjunction). So checking each atom independently
/// and AND-ing the booleans reproduces `eval_true` of the full program,
/// short-circuit order and all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReqShape {
    /// Threshold atoms `hi >= lo`, from `a >= b` or `b <= a`. Exactly
    /// `true` iff both slots hold comparable values ordering that way
    /// (an absent slot is `undefined`, which never compares `true`).
    pub ge: Vec<(SlotRef, SlotRef)>,
    /// Flag atoms `attr == true`: the slot must hold exactly `Bool(true)`.
    pub must_true: Vec<SlotRef>,
    /// Tag atoms `attr == "lit"`: the slot must hold exactly that string.
    pub eq_str: Vec<(SlotRef, String)>,
}

/// Recognize `expr` as a canonical conjunction of threshold / flag /
/// string-tag atoms over explicitly scoped attributes, or `None` when any
/// part of it falls outside that shape (the caller then keeps the compiled
/// program and interprets). Unqualified (`Either`-scoped) references are
/// rejected: their fall-through resolution depends on both rows at once,
/// which the atom forms cannot express.
pub fn specialize(expr: &Expr, my: &AdSchema, other: &AdSchema) -> Option<ReqShape> {
    let mut shape = ReqShape::default();
    collect_atoms(expr, my, other, &mut shape).then_some(shape)
}

/// Resolve an explicitly scoped attribute reference to a slot.
fn atom_slot(expr: &Expr, my: &AdSchema, other: &AdSchema) -> Option<SlotRef> {
    match expr {
        Expr::Attr {
            scope: Scope::My,
            name,
        } => my.slot(name).map(SlotRef::My),
        Expr::Attr {
            scope: Scope::Other,
            name,
        } => other.slot(name).map(SlotRef::Other),
        _ => None,
    }
}

fn collect_atoms(expr: &Expr, my: &AdSchema, other: &AdSchema, out: &mut ReqShape) -> bool {
    let Expr::Binary { op, lhs, rhs } = expr else {
        return false;
    };
    match op {
        BinOp::And => collect_atoms(lhs, my, other, out) && collect_atoms(rhs, my, other, out),
        BinOp::Ge | BinOp::Le => {
            let (hi, lo) = if *op == BinOp::Ge {
                (lhs, rhs)
            } else {
                (rhs, lhs)
            };
            match (atom_slot(hi, my, other), atom_slot(lo, my, other)) {
                (Some(hi), Some(lo)) => {
                    out.ge.push((hi, lo));
                    true
                }
                _ => false,
            }
        }
        BinOp::Eq => {
            // Literal on either side of the `==`.
            let (attr, lit) = if matches!(&**lhs, Expr::Attr { .. }) {
                (lhs, rhs)
            } else {
                (rhs, lhs)
            };
            let Some(slot) = atom_slot(attr, my, other) else {
                return false;
            };
            match &**lit {
                Expr::Bool(true) => {
                    out.must_true.push(slot);
                    true
                }
                Expr::Str(s) => {
                    out.eq_str.push((slot, s.clone()));
                    true
                }
                _ => false,
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::ClassAd;
    use crate::eval::{eval, Context};
    use crate::parser::parse;
    use proptest::prelude::*;

    /// Compile and evaluate `text` against slot rows built from
    /// `(name, value)` pairs.
    fn run(text: &str, my: &[(&str, Value)], other: &[(&str, Value)]) -> Value {
        let mut my_schema = AdSchema::new();
        let mut other_schema = AdSchema::new();
        let mut my_row = Vec::new();
        for (n, v) in my {
            my_schema.add(n);
            my_row.push(v.clone());
        }
        let mut other_row = Vec::new();
        for (n, v) in other {
            other_schema.add(n);
            other_row.push(v.clone());
        }
        let prog = compile(&parse(text).unwrap(), &my_schema, &other_schema);
        let mut stack = Vec::new();
        prog.eval(&my_row, &other_row, &mut stack)
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(run("1 + 2 * 3", &[], &[]), Value::Int(7));
        assert_eq!(run("(1 + 2) * 3", &[], &[]), Value::Int(9));
        assert_eq!(run("-4 / 2", &[], &[]), Value::Int(-2));
        assert_eq!(run("1.5 + 1", &[], &[]), Value::Float(2.5));
        assert_eq!(run("!true", &[], &[]), Value::Bool(false));
    }

    #[test]
    fn slot_resolution_order() {
        let my = [("x", Value::Int(1))];
        let other = [("x", Value::Int(2)), ("y", Value::Int(3))];
        assert_eq!(run("x", &my, &other), Value::Int(1));
        assert_eq!(run("y", &my, &other), Value::Int(3));
        assert_eq!(run("my.x", &my, &other), Value::Int(1));
        assert_eq!(run("other.x", &my, &other), Value::Int(2));
        assert_eq!(run("z", &my, &other), Value::Undefined);
        // In-schema but absent from the row: undefined, and `either`
        // falls through to the other side.
        assert_eq!(
            run("x", &[("x", Value::Undefined)], &[("x", Value::Int(9))]),
            Value::Int(9)
        );
    }

    #[test]
    fn short_circuit_skips_poison() {
        let boom = [("boom", Value::Error)];
        assert_eq!(run("false && boom", &[], &boom), Value::Bool(false));
        assert_eq!(run("true || boom", &[], &boom), Value::Bool(true));
        assert_eq!(run("true && boom", &[], &boom), Value::Error);
    }

    #[test]
    fn requirements_shape_evaluates_like_the_matchmaker_needs() {
        let job = [
            ("requestedmemory", Value::Int(16)),
            ("requesteddisk", Value::Int(0)),
        ];
        let machine = [("memory", Value::Int(24)), ("disk", Value::Int(100))];
        let text = "other.Memory >= my.RequestedMemory && other.Disk >= my.RequestedDisk";
        assert_eq!(run(text, &job, &machine), Value::Bool(true));
        let small = [("memory", Value::Int(8)), ("disk", Value::Int(100))];
        assert_eq!(run(text, &job, &small), Value::Bool(false));
        // A package probe against a machine without the attribute:
        // undefined, which is_true() treats as no-match.
        assert!(!Value::is_true(&run(
            "other.HasPkg3 == true",
            &job,
            &machine
        )));
    }

    #[test]
    fn rank_coercion_matches_condor() {
        let m = [("memory", Value::Int(24))];
        let mut stack = Vec::new();
        let mut schema = AdSchema::new();
        schema.add("memory");
        let row = vec![Value::Int(24)];
        let empty = AdSchema::new();
        let prog = compile(&parse("other.Memory").unwrap(), &empty, &schema);
        assert_eq!(prog.eval_rank(&[], &row, &mut stack), 24.0);
        let prog = compile(&parse("other.Missing").unwrap(), &empty, &schema);
        assert_eq!(prog.eval_rank(&[], &row, &mut stack), 0.0);
        let prog = compile(&parse("true").unwrap(), &empty, &schema);
        assert_eq!(prog.eval_rank(&[], &row, &mut stack), 1.0);
        let _ = m;
    }

    #[test]
    fn schema_slots_are_stable_and_case_insensitive() {
        let mut s = AdSchema::new();
        assert_eq!(s.add("Memory"), 0);
        assert_eq!(s.add("Disk"), 1);
        assert_eq!(s.add("MEMORY"), 0);
        assert_eq!(s.slot("memory"), Some(0));
        assert_eq!(s.slot("nope"), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.blank_row(), vec![Value::Undefined, Value::Undefined]);
    }

    #[test]
    fn specialize_recognizes_the_bridge_shape() {
        let mut job = AdSchema::new();
        job.add("RequestedMemory");
        job.add("RequestedDisk");
        let mut machine = AdSchema::new();
        machine.add("Memory");
        machine.add("Disk");
        machine.add("Arch");
        machine.add("HasPkg0");
        let text = "other.Memory >= my.RequestedMemory && other.Disk >= my.RequestedDisk \
                    && other.HasPkg0 == true && other.Arch == \"x86\"";
        let shape = specialize(&parse(text).unwrap(), &job, &machine).unwrap();
        assert_eq!(
            shape.ge,
            vec![
                (SlotRef::Other(0), SlotRef::My(0)),
                (SlotRef::Other(1), SlotRef::My(1)),
            ]
        );
        assert_eq!(shape.must_true, vec![SlotRef::Other(3)]);
        assert_eq!(shape.eq_str, vec![(SlotRef::Other(2), "x86".to_string())]);
        // The machine side (`my` = machine, `other` = job) lowers to the
        // mirrored thresholds.
        let text = "other.RequestedMemory <= my.Memory && other.RequestedDisk <= my.Disk";
        let shape = specialize(&parse(text).unwrap(), &machine, &job).unwrap();
        assert_eq!(
            shape.ge,
            vec![
                (SlotRef::My(0), SlotRef::Other(0)),
                (SlotRef::My(1), SlotRef::Other(1)),
            ]
        );
        // Literal order does not matter for == atoms.
        let shape = specialize(&parse("true == other.HasPkg0").unwrap(), &job, &machine).unwrap();
        assert_eq!(shape.must_true, vec![SlotRef::Other(3)]);
    }

    #[test]
    fn specialize_rejects_non_canonical_programs() {
        let mut job = AdSchema::new();
        job.add("RequestedMemory");
        let mut machine = AdSchema::new();
        machine.add("Memory");
        for text in [
            "other.Memory >= 1000",                       // literal threshold
            "Memory >= my.RequestedMemory",               // unqualified scope
            "other.Memory >= my.RequestedMemory || true", // disjunction
            "other.HasPkg0 == false",                     // flag polarity
            "other.Missing >= my.RequestedMemory",        // unresolvable slot
            "!other.Memory",
            "42",
        ] {
            assert!(
                specialize(&parse(text).unwrap(), &job, &machine).is_none(),
                "{text}"
            );
        }
    }

    #[test]
    fn reads_my_distinguishes_machine_only_programs() {
        let mut job = AdSchema::new();
        job.add("RequestedMemory");
        let mut machine = AdSchema::new();
        machine.add("Memory");
        let compiled = |text: &str| compile(&parse(text).unwrap(), &job, &machine);
        assert!(!compiled("other.Memory > 100").reads_my());
        assert!(compiled("other.Memory >= my.RequestedMemory").reads_my());
        // Unqualified references may fall through to `my`.
        assert!(compiled("RequestedMemory").reads_my());
        // Unknown names compile to constant undefined — not a `my` read.
        assert!(!compiled("Nope + 1").reads_my());
    }

    // ---- compiled == tree-walk, property-tested ------------------------

    use proptest::strategy::FnStrategy;
    use proptest::test_runner::TestRng;

    /// Attribute pool shared by expression and ad generators.
    const NAMES: [&str; 5] = ["a", "b", "c", "x", "y"];
    /// String literal pool (comparison behavior only needs a few shapes).
    const STRS: [&str; 4] = ["", "a", "ab", "xy"];

    fn gen_leaf(rng: &mut TestRng) -> Expr {
        match rng.next_u64() % 8 {
            0 => Expr::Int((rng.next_u64() % 200) as i64 - 100),
            1 => Expr::Float((rng.uniform() - 0.5) * 20.0),
            2 => Expr::Bool(rng.next_u64() & 1 == 1),
            3 => Expr::Str(STRS[(rng.next_u64() % STRS.len() as u64) as usize].to_string()),
            4 => Expr::Undefined,
            5 => Expr::Error,
            _ => Expr::Attr {
                scope: [Scope::Either, Scope::My, Scope::Other][(rng.next_u64() % 3) as usize],
                name: NAMES[(rng.next_u64() % NAMES.len() as u64) as usize].to_string(),
            },
        }
    }

    fn gen_expr(rng: &mut TestRng, depth: u32) -> Expr {
        if depth == 0 || rng.next_u64().is_multiple_of(3) {
            return gen_leaf(rng);
        }
        if rng.next_u64().is_multiple_of(4) {
            return Expr::Unary {
                logical: rng.next_u64() & 1 == 1,
                expr: Box::new(gen_expr(rng, depth - 1)),
            };
        }
        const OPS: [BinOp; 12] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::And,
            BinOp::Or,
        ];
        Expr::Binary {
            op: OPS[(rng.next_u64() % OPS.len() as u64) as usize],
            lhs: Box::new(gen_expr(rng, depth - 1)),
            rhs: Box::new(gen_expr(rng, depth - 1)),
        }
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        FnStrategy::new(|rng: &mut TestRng| gen_expr(rng, 4))
    }

    /// A random ad over the shared name pool: literal, non-undefined
    /// values (the slot model represents absence as undefined, so stored
    /// literal `undefined` is the one documented divergence).
    fn arb_ad_values() -> impl Strategy<Value = Vec<Option<Value>>> {
        FnStrategy::new(|rng: &mut TestRng| {
            NAMES
                .iter()
                .map(|_| match rng.next_u64() % 5 {
                    0 => None,
                    1 => Some(Value::Int((rng.next_u64() % 200) as i64 - 100)),
                    2 => Some(Value::Float((rng.uniform() - 0.5) * 20.0)),
                    3 => Some(Value::Bool(rng.next_u64() & 1 == 1)),
                    _ => Some(Value::Str(
                        STRS[(rng.next_u64() % STRS.len() as u64) as usize].to_string(),
                    )),
                })
                .collect()
        })
    }

    fn to_ad(values: &[Option<Value>]) -> ClassAd {
        let mut ad = ClassAd::new();
        for (name, v) in NAMES.iter().zip(values) {
            match v {
                Some(Value::Int(i)) => ad.insert_int(name, *i),
                Some(Value::Float(f)) => ad.insert_float(name, *f),
                Some(Value::Bool(b)) => ad.insert_bool(name, *b),
                Some(Value::Str(s)) => ad.insert_str(name, s),
                Some(_) | None => continue,
            };
        }
        ad
    }

    fn to_row(values: &[Option<Value>], schema: &AdSchema) -> Vec<Value> {
        let mut row = schema.blank_row();
        for (name, v) in NAMES.iter().zip(values) {
            if let Some(v) = v {
                row[schema.slot(name).unwrap() as usize] = v.clone();
            }
        }
        row
    }

    proptest! {
        #[test]
        fn compiled_agrees_with_tree_walk(
            expr in arb_expr(),
            my in arb_ad_values(),
            other in arb_ad_values(),
        ) {
            let mut schema = AdSchema::new();
            for n in NAMES {
                schema.add(n);
            }
            let my_ad = to_ad(&my);
            let other_ad = to_ad(&other);
            let walked = eval(
                &expr,
                &Context { my: &my_ad, other: Some(&other_ad) },
            )
            .expect("literal ads cannot form reference cycles");
            let prog = compile(&expr, &schema, &schema);
            let mut stack = Vec::new();
            let compiled = prog.eval(
                &to_row(&my, &schema),
                &to_row(&other, &schema),
                &mut stack,
            );
            // NaN-safe structural comparison.
            let same = match (&walked, &compiled) {
                (Value::Float(a), Value::Float(b)) => {
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
                }
                (a, b) => a == b,
            };
            prop_assert!(same, "walked {walked:?} != compiled {compiled:?} for {expr:?}");
        }
    }
}
