//! Recursive-descent parser producing the expression AST.
//!
//! Grammar (usual precedence, loosest first):
//!
//! ```text
//! or     := and ( '||' and )*
//! and    := cmp ( '&&' cmp )*
//! cmp    := sum ( ('<'|'<='|'>'|'>='|'=='|'!=') sum )?
//! sum    := term ( ('+'|'-') term )*
//! term   := unary ( ('*'|'/') unary )*
//! unary  := ('!'|'-') unary | atom
//! atom   := literal | ref | '(' or ')'
//! ref    := [ ('my'|'other') '.' ] ident
//! ```

use std::fmt;

use crate::lexer::{lex, LexError, Token};

/// Attribute reference scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Unqualified: resolve in `my`, then `other` (ClassAd convention).
    Either,
    /// `my.attr`.
    My,
    /// `other.attr`.
    Other,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// The `undefined` literal.
    Undefined,
    /// The `error` literal.
    Error,
    /// Attribute reference (names are case-insensitive, stored lowered).
    Attr {
        /// Resolution scope.
        scope: Scope,
        /// Lower-cased attribute name.
        name: String,
    },
    /// Unary negation / logical not.
    Unary {
        /// True for `!`, false for `-`.
        logical: bool,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.cmp()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.sum()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Bang) {
            return Ok(Expr::Unary {
                logical: true,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat(&Token::Minus) {
            return Ok(Expr::Unary {
                logical: false,
                expr: Box::new(self.unary()?),
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Int(i)),
            Some(Token::Float(x)) => Ok(Expr::Float(x)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::LParen) => {
                let e = self.or()?;
                if !self.eat(&Token::RParen) {
                    return Err(ParseError {
                        message: "expected ')'".into(),
                    });
                }
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Expr::Bool(true)),
                    "false" => return Ok(Expr::Bool(false)),
                    "undefined" => return Ok(Expr::Undefined),
                    "error" => return Ok(Expr::Error),
                    _ => {}
                }
                if (lower == "my" || lower == "other") && self.eat(&Token::Dot) {
                    let attr = match self.next() {
                        Some(Token::Ident(a)) => a.to_ascii_lowercase(),
                        other => {
                            return Err(ParseError {
                                message: format!("expected attribute after '.', got {other:?}"),
                            })
                        }
                    };
                    let scope = if lower == "my" {
                        Scope::My
                    } else {
                        Scope::Other
                    };
                    return Ok(Expr::Attr { scope, name: attr });
                }
                Ok(Expr::Attr {
                    scope: Scope::Either,
                    name: lower,
                })
            }
            other => Err(ParseError {
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

/// Parse an expression string.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError {
            message: "empty expression".into(),
        });
    }
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.or()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("trailing tokens starting at {:?}", p.tokens[p.pos]),
        });
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(scope: Scope, name: &str) -> Expr {
        Expr::Attr {
            scope,
            name: name.into(),
        }
    }

    #[test]
    fn precedence_mul_over_add_over_cmp_over_and_over_or() {
        // a || b && c < 1 + 2 * 3  parses as  a || (b && (c < (1 + (2*3))))
        let e = parse("a || b && c < 1 + 2 * 3").unwrap();
        let Expr::Binary {
            op: BinOp::Or, rhs, ..
        } = e
        else {
            panic!("top must be ||");
        };
        let Expr::Binary {
            op: BinOp::And,
            rhs,
            ..
        } = *rhs
        else {
            panic!("next must be &&");
        };
        let Expr::Binary {
            op: BinOp::Lt, rhs, ..
        } = *rhs
        else {
            panic!("next must be <");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = *rhs
        else {
            panic!("next must be +");
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn scoped_and_unscoped_attrs() {
        assert_eq!(parse("Memory").unwrap(), attr(Scope::Either, "memory"));
        assert_eq!(parse("my.Memory").unwrap(), attr(Scope::My, "memory"));
        assert_eq!(
            parse("OTHER.RequestedMemory").unwrap(),
            attr(Scope::Other, "requestedmemory")
        );
    }

    #[test]
    fn keywords_are_literals() {
        assert_eq!(parse("TRUE").unwrap(), Expr::Bool(true));
        assert_eq!(parse("false").unwrap(), Expr::Bool(false));
        assert_eq!(parse("undefined").unwrap(), Expr::Undefined);
        assert_eq!(parse("error").unwrap(), Expr::Error);
    }

    #[test]
    fn unary_chains() {
        let e = parse("!!a").unwrap();
        assert!(matches!(e, Expr::Unary { logical: true, .. }));
        let e = parse("--3").unwrap();
        assert!(matches!(e, Expr::Unary { logical: false, .. }));
    }

    #[test]
    fn parens_override() {
        let e = parse("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("(1").is_err());
        assert!(parse("1 2").unwrap_err().message.contains("trailing"));
        assert!(parse("my.").is_err());
    }

    #[test]
    fn comparison_is_non_associative() {
        // a < b < c is a parse-then-trailing error in this grammar.
        assert!(parse("a < b < c").is_err());
    }
}
