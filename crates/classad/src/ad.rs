//! The ClassAd itself plus the two-ad matchmaker.

use std::collections::BTreeMap;

use crate::eval::{eval, Context, EvalError};
use crate::parser::{parse, Expr, ParseError};
use crate::value::Value;

/// An attribute advertisement: a named set of expressions. Attribute names
/// are case-insensitive (stored lowered), matching Condor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAd {
    attrs: BTreeMap<String, Expr>,
}

impl ClassAd {
    /// An empty ad.
    pub fn new() -> Self {
        ClassAd::default()
    }

    /// Insert an integer attribute.
    pub fn insert_int(&mut self, name: &str, value: i64) -> &mut Self {
        self.attrs
            .insert(name.to_ascii_lowercase(), Expr::Int(value));
        self
    }

    /// Insert a float attribute.
    pub fn insert_float(&mut self, name: &str, value: f64) -> &mut Self {
        self.attrs
            .insert(name.to_ascii_lowercase(), Expr::Float(value));
        self
    }

    /// Insert a boolean attribute.
    pub fn insert_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.attrs
            .insert(name.to_ascii_lowercase(), Expr::Bool(value));
        self
    }

    /// Insert a string attribute.
    pub fn insert_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.attrs
            .insert(name.to_ascii_lowercase(), Expr::Str(value.to_string()));
        self
    }

    /// Insert an attribute from expression text (parsed now, evaluated
    /// lazily at match time).
    pub fn insert_expr(&mut self, name: &str, text: &str) -> Result<&mut Self, ParseError> {
        let expr = parse(text)?;
        self.attrs.insert(name.to_ascii_lowercase(), expr);
        Ok(self)
    }

    /// Raw expression for an attribute.
    pub fn expr(&self, name: &str) -> Option<&Expr> {
        self.attrs.get(&name.to_ascii_lowercase())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Evaluate one of this ad's attributes against a candidate `other`.
    pub fn evaluate(&self, name: &str, other: Option<&ClassAd>) -> Result<Value, EvalError> {
        match self.expr(name) {
            None => Ok(Value::Undefined),
            Some(e) => eval(e, &Context { my: self, other }),
        }
    }
}

/// Condor's symmetric match: both ads' `Requirements` must evaluate to
/// exactly `true` against each other. A missing `Requirements` attribute
/// counts as unconstrained (true), but an `undefined`/`error` result does
/// not match.
pub fn matches(a: &ClassAd, b: &ClassAd) -> Result<bool, EvalError> {
    let a_req = match a.expr("requirements") {
        None => true,
        Some(_) => a.evaluate("requirements", Some(b))?.is_true(),
    };
    if !a_req {
        return Ok(false);
    }
    let b_req = match b.expr("requirements") {
        None => true,
        Some(_) => b.evaluate("requirements", Some(a))?.is_true(),
    };
    Ok(b_req)
}

/// Evaluate `a`'s `Rank` against `b`: higher is more preferred; missing or
/// non-numeric ranks count as 0 (Condor's convention).
pub fn rank(a: &ClassAd, b: &ClassAd) -> Result<f64, EvalError> {
    Ok(match a.evaluate("rank", Some(b))? {
        Value::Int(i) => i as f64,
        Value::Float(f) => f,
        Value::Bool(true) => 1.0,
        _ => 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(mem: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert_int("Memory", mem)
            .insert_str("Arch", "sparc")
            .insert_expr("Requirements", "other.RequestedMemory <= my.Memory")
            .unwrap();
        ad
    }

    fn job(req_mem: i64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert_int("RequestedMemory", req_mem)
            .insert_expr(
                "Requirements",
                "other.Memory >= my.RequestedMemory && other.Arch == \"sparc\"",
            )
            .unwrap();
        ad
    }

    #[test]
    fn symmetric_matching() {
        assert!(matches(&job(16), &machine(32)).unwrap());
        assert!(!matches(&job(64), &machine(32)).unwrap());
        // Symmetry: either side's requirements can veto.
        let mut picky_machine = machine(128);
        picky_machine
            .insert_expr("Requirements", "other.User == \"alice\"")
            .unwrap();
        assert!(!matches(&job(16), &picky_machine).unwrap());
    }

    #[test]
    fn missing_requirements_is_unconstrained() {
        let free = ClassAd::new();
        assert!(matches(&free, &free).unwrap());
        // One-sided requirements still checked.
        assert!(!matches(&job(64), &{
            let mut m = ClassAd::new();
            m.insert_int("Memory", 32);
            m
        })
        .unwrap());
    }

    #[test]
    fn undefined_requirements_do_not_match() {
        let mut j = ClassAd::new();
        j.insert_expr("Requirements", "other.NoSuchAttr >= 1")
            .unwrap();
        let m = ClassAd::new();
        assert!(!matches(&j, &m).unwrap());
    }

    #[test]
    fn rank_orders_candidates() {
        let mut j = ClassAd::new();
        j.insert_int("RequestedMemory", 8)
            .insert_expr("Rank", "other.Memory")
            .unwrap();
        let small = machine(16);
        let big = machine(64);
        assert!(rank(&j, &big).unwrap() > rank(&j, &small).unwrap());
        // Missing rank defaults to zero.
        let norank = ClassAd::new();
        assert_eq!(rank(&norank, &small).unwrap(), 0.0);
    }

    #[test]
    fn attribute_names_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.insert_int("MeMoRy", 5);
        assert_eq!(ad.evaluate("memory", None).unwrap(), Value::Int(5));
        assert_eq!(ad.evaluate("MEMORY", None).unwrap(), Value::Int(5));
        assert_eq!(ad.len(), 1);
    }

    #[test]
    fn builder_style() {
        let mut ad = ClassAd::new();
        ad.insert_int("a", 1)
            .insert_float("b", 2.5)
            .insert_bool("c", true)
            .insert_str("d", "x");
        assert_eq!(ad.len(), 4);
        assert!(!ad.is_empty());
    }
}
