//! Expression evaluation against a pair of ads.

use crate::ad::ClassAd;
use crate::parser::{BinOp, Expr, Scope};
use crate::value::Value;

/// Evaluation failure (currently only recursion-depth exhaustion; type
/// errors surface as [`Value::Error`] per ClassAd semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

/// Cap on attribute-dereference depth: `a = b; b = a` must terminate with
/// an error rather than recurse forever.
const MAX_DEPTH: u32 = 64;

/// Evaluation context: the ad being evaluated (`my`) and the candidate
/// (`other`).
pub struct Context<'a> {
    /// The ad whose expression is being evaluated.
    pub my: &'a ClassAd,
    /// The ad on the other side of the match.
    pub other: Option<&'a ClassAd>,
}

/// Evaluate `expr` in `ctx`.
pub fn eval(expr: &Expr, ctx: &Context<'_>) -> Result<Value, EvalError> {
    eval_depth(expr, ctx, 0)
}

fn lookup(ctx: &Context<'_>, scope: Scope, name: &str, depth: u32) -> Result<Value, EvalError> {
    // Scoped lookups flip `my`/`other` for the referenced ad's own
    // sub-expressions.
    let resolve =
        |ad: &ClassAd, flip: bool, ctx: &Context<'_>| -> Result<Option<Value>, EvalError> {
            match ad.expr(name) {
                None => Ok(None),
                Some(e) => {
                    let sub = if flip {
                        Context {
                            my: ad,
                            other: Some(ctx.my),
                        }
                    } else {
                        Context {
                            my: ad,
                            other: ctx.other,
                        }
                    };
                    eval_depth(e, &sub, depth + 1).map(Some)
                }
            }
        };
    match scope {
        Scope::My => Ok(resolve(ctx.my, false, ctx)?.unwrap_or(Value::Undefined)),
        Scope::Other => match ctx.other {
            None => Ok(Value::Undefined),
            Some(other) => Ok(resolve(other, true, ctx)?.unwrap_or(Value::Undefined)),
        },
        Scope::Either => {
            if let Some(v) = resolve(ctx.my, false, ctx)? {
                return Ok(v);
            }
            match ctx.other {
                Some(other) => Ok(resolve(other, true, ctx)?.unwrap_or(Value::Undefined)),
                None => Ok(Value::Undefined),
            }
        }
    }
}

fn eval_depth(expr: &Expr, ctx: &Context<'_>, depth: u32) -> Result<Value, EvalError> {
    if depth > MAX_DEPTH {
        return Err(EvalError {
            message: "attribute reference cycle (depth limit exceeded)".into(),
        });
    }
    Ok(match expr {
        Expr::Int(i) => Value::Int(*i),
        Expr::Float(x) => Value::Float(*x),
        Expr::Bool(b) => Value::Bool(*b),
        Expr::Str(s) => Value::Str(s.clone()),
        Expr::Undefined => Value::Undefined,
        Expr::Error => Value::Error,
        Expr::Attr { scope, name } => lookup(ctx, *scope, name, depth)?,
        Expr::Unary { logical, expr } => {
            let v = eval_depth(expr, ctx, depth + 1)?;
            if *logical {
                v.not()
            } else {
                v.neg()
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_depth(lhs, ctx, depth + 1)?;
            // Short-circuit for the logical operators: absorption can decide
            // without the right side, and evaluation of the right side could
            // be expensive or cyclic.
            match op {
                BinOp::And if a == Value::Bool(false) => return Ok(Value::Bool(false)),
                BinOp::Or if a == Value::Bool(true) => return Ok(Value::Bool(true)),
                _ => {}
            }
            let b = eval_depth(rhs, ctx, depth + 1)?;
            match op {
                BinOp::Add => a.add(&b),
                BinOp::Sub => a.sub(&b),
                BinOp::Mul => a.mul(&b),
                BinOp::Div => a.div(&b),
                BinOp::Lt => a.compare(&b, |o| o.is_lt()),
                BinOp::Le => a.compare(&b, |o| o.is_le()),
                BinOp::Gt => a.compare(&b, |o| o.is_gt()),
                BinOp::Ge => a.compare(&b, |o| o.is_ge()),
                BinOp::Eq => a.compare(&b, |o| o.is_eq()),
                BinOp::Ne => a.compare(&b, |o| o.is_ne()),
                BinOp::And => a.and(&b),
                BinOp::Or => a.or(&b),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::ClassAd;
    use crate::parser::parse;

    fn ad(pairs: &[(&str, &str)]) -> ClassAd {
        let mut ad = ClassAd::new();
        for (k, v) in pairs {
            ad.insert_expr(k, v).unwrap();
        }
        ad
    }

    fn eval_str(expr: &str, my: &ClassAd, other: Option<&ClassAd>) -> Value {
        eval(&parse(expr).unwrap(), &Context { my, other }).unwrap()
    }

    #[test]
    fn literals_and_arithmetic() {
        let empty = ClassAd::new();
        assert_eq!(eval_str("1 + 2 * 3", &empty, None), Value::Int(7));
        assert_eq!(eval_str("(1 + 2) * 3", &empty, None), Value::Int(9));
        assert_eq!(eval_str("-4 / 2", &empty, None), Value::Int(-2));
        assert_eq!(eval_str("1.5 + 1", &empty, None), Value::Float(2.5));
    }

    #[test]
    fn attribute_resolution_order() {
        let my = ad(&[("x", "1")]);
        let other = ad(&[("x", "2"), ("y", "3")]);
        // Unqualified: my first, then other.
        assert_eq!(eval_str("x", &my, Some(&other)), Value::Int(1));
        assert_eq!(eval_str("y", &my, Some(&other)), Value::Int(3));
        assert_eq!(eval_str("my.x", &my, Some(&other)), Value::Int(1));
        assert_eq!(eval_str("other.x", &my, Some(&other)), Value::Int(2));
        assert_eq!(eval_str("z", &my, Some(&other)), Value::Undefined);
        assert_eq!(eval_str("other.x", &my, None), Value::Undefined);
    }

    #[test]
    fn attributes_can_reference_attributes() {
        let my = ad(&[
            ("total", "per_node * nodes"),
            ("per_node", "4"),
            ("nodes", "8"),
        ]);
        assert_eq!(eval_str("total", &my, None), Value::Int(32));
    }

    #[test]
    fn cross_ad_references_flip_scope() {
        // other.threshold references *its own* base when evaluated.
        let my = ad(&[("base", "10")]);
        let other = ad(&[("threshold", "my.base + 1"), ("base", "100")]);
        // Evaluating other.threshold: inside, `my` is the other ad.
        assert_eq!(
            eval_str("other.threshold", &my, Some(&other)),
            Value::Int(101)
        );
    }

    #[test]
    fn reference_cycles_error_out() {
        let my = ad(&[("a", "b"), ("b", "a")]);
        let result = eval(
            &parse("a").unwrap(),
            &Context {
                my: &my,
                other: None,
            },
        );
        assert!(result.is_err());
    }

    #[test]
    fn short_circuit_skips_poison() {
        let my = ad(&[("boom", "1 / 0")]);
        assert_eq!(eval_str("false && boom", &my, None), Value::Bool(false));
        assert_eq!(eval_str("true || boom", &my, None), Value::Bool(true));
        // Without the short circuit the poison shows.
        assert_eq!(eval_str("true && boom", &my, None), Value::Error);
    }

    #[test]
    fn undefined_semantics_in_requirements() {
        let my = ClassAd::new();
        assert_eq!(eval_str("missing >= 4", &my, None), Value::Undefined);
        assert_eq!(
            eval_str("missing >= 4 || true", &my, None),
            Value::Bool(true)
        );
    }

    #[test]
    fn string_comparisons() {
        let my = ad(&[("os", "\"linux\"")]);
        assert_eq!(eval_str("os == \"linux\"", &my, None), Value::Bool(true));
        assert_eq!(eval_str("os == \"hpux\"", &my, None), Value::Bool(false));
    }
}
