//! Runtime values with ClassAd semantics.
//!
//! ClassAds are three-valued: expressions over missing attributes evaluate
//! to `Undefined` rather than failing, and `Undefined` propagates through
//! arithmetic and comparisons — but `&&`/`||` can absorb it
//! (`false && undefined = false`, `true || undefined = true`). Type
//! mismatches produce `Error`, which dominates everything.

use std::fmt;

/// A ClassAd runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Attribute missing / indeterminate.
    Undefined,
    /// Type error or division by zero.
    Error,
}

impl Value {
    /// Numeric view: ints widen to floats.
    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// True when both operands are integers (arithmetic stays integral).
    fn both_int(&self, other: &Value) -> bool {
        matches!((self, other), (Value::Int(_), Value::Int(_)))
    }

    fn propagate(a: &Value, b: &Value) -> Option<Value> {
        if matches!(a, Value::Error) || matches!(b, Value::Error) {
            Some(Value::Error)
        } else if matches!(a, Value::Undefined) || matches!(b, Value::Undefined) {
            Some(Value::Undefined)
        } else {
            None
        }
    }

    /// Addition.
    pub fn add(&self, other: &Value) -> Value {
        self.arith(other, |a, b| a + b, |a, b| a.checked_add(b))
    }

    /// Subtraction.
    pub fn sub(&self, other: &Value) -> Value {
        self.arith(other, |a, b| a - b, |a, b| a.checked_sub(b))
    }

    /// Multiplication.
    pub fn mul(&self, other: &Value) -> Value {
        self.arith(other, |a, b| a * b, |a, b| a.checked_mul(b))
    }

    /// Division; integer division by zero is `Error`.
    pub fn div(&self, other: &Value) -> Value {
        if let Some(v) = Value::propagate(self, other) {
            return v;
        }
        if self.both_int(other) {
            if let (Value::Int(a), Value::Int(b)) = (self, other) {
                return if *b == 0 {
                    Value::Error
                } else {
                    Value::Int(a / b)
                };
            }
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
            (Some(_), Some(_)) => Value::Error,
            _ => Value::Error,
        }
    }

    fn arith(
        &self,
        other: &Value,
        ff: impl Fn(f64, f64) -> f64,
        ii: impl Fn(i64, i64) -> Option<i64>,
    ) -> Value {
        if let Some(v) = Value::propagate(self, other) {
            return v;
        }
        if self.both_int(other) {
            if let (Value::Int(a), Value::Int(b)) = (self, other) {
                return ii(*a, *b).map(Value::Int).unwrap_or(Value::Error);
            }
        }
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => Value::Float(ff(a, b)),
            _ => Value::Error,
        }
    }

    /// Comparison under an ordering predicate; strings compare
    /// lexicographically, numbers numerically, booleans as false < true.
    pub fn compare(&self, other: &Value, pred: impl Fn(std::cmp::Ordering) -> bool) -> Value {
        use std::cmp::Ordering;
        if let Some(v) = Value::propagate(self, other) {
            return v;
        }
        let ord: Option<Ordering> = match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        };
        match ord {
            Some(o) => Value::Bool(pred(o)),
            None => Value::Error,
        }
    }

    /// ClassAd logical AND: `false` absorbs `Undefined`.
    pub fn and(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Error, _) | (_, Value::Error) => Value::Error,
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
            (Value::Undefined, _) | (_, Value::Undefined) => Value::Undefined,
            (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
            _ => Value::Error,
        }
    }

    /// ClassAd logical OR: `true` absorbs `Undefined`.
    pub fn or(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Error, _) | (_, Value::Error) => Value::Error,
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
            (Value::Undefined, _) | (_, Value::Undefined) => Value::Undefined,
            (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
            _ => Value::Error,
        }
    }

    /// Logical negation.
    pub fn not(&self) -> Value {
        match self {
            Value::Bool(b) => Value::Bool(!b),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        }
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Value {
        match self {
            Value::Int(i) => i.checked_neg().map(Value::Int).unwrap_or(Value::Error),
            Value::Float(f) => Value::Float(-f),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        }
    }

    /// Is this exactly `Bool(true)`? The matchmaking criterion: undefined
    /// or error requirements do *not* match.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Undefined => write!(f, "undefined"),
            Value::Error => write!(f, "error"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_stays_integral() {
        assert_eq!(Value::Int(6).add(&Value::Int(7)), Value::Int(13));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Value::Int(3));
        assert_eq!(Value::Int(6).mul(&Value::Int(-2)), Value::Int(-12));
    }

    #[test]
    fn mixed_arithmetic_widens() {
        assert_eq!(Value::Int(1).add(&Value::Float(0.5)), Value::Float(1.5));
        assert_eq!(Value::Float(7.0).div(&Value::Int(2)), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)), Value::Error);
        assert_eq!(Value::Float(1.0).div(&Value::Float(0.0)), Value::Error);
    }

    #[test]
    fn overflow_is_error_not_panic() {
        assert_eq!(Value::Int(i64::MAX).add(&Value::Int(1)), Value::Error);
        assert_eq!(Value::Int(i64::MIN).neg(), Value::Error);
    }

    #[test]
    fn undefined_propagates_through_arithmetic_and_comparison() {
        assert_eq!(Value::Undefined.add(&Value::Int(1)), Value::Undefined);
        assert_eq!(
            Value::Int(1).compare(&Value::Undefined, |o| o.is_lt()),
            Value::Undefined
        );
    }

    #[test]
    fn error_dominates_undefined() {
        assert_eq!(Value::Error.add(&Value::Undefined), Value::Error);
        assert_eq!(Value::Undefined.and(&Value::Error), Value::Error);
    }

    #[test]
    fn three_valued_logic_absorption() {
        assert_eq!(
            Value::Bool(false).and(&Value::Undefined),
            Value::Bool(false)
        );
        assert_eq!(Value::Undefined.and(&Value::Bool(true)), Value::Undefined);
        assert_eq!(Value::Bool(true).or(&Value::Undefined), Value::Bool(true));
        assert_eq!(Value::Undefined.or(&Value::Bool(false)), Value::Undefined);
    }

    #[test]
    fn comparisons_across_types() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.5), |o| o.is_lt()),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Str("abc".into()).compare(&Value::Str("abd".into()), |o| o.is_lt()),
            Value::Bool(true)
        );
        // String vs number is a type error.
        assert_eq!(
            Value::Str("1".into()).compare(&Value::Int(1), |o| o.is_eq()),
            Value::Error
        );
    }

    #[test]
    fn is_true_is_strict() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Undefined.is_true());
        assert!(!Value::Error.is_true());
        assert!(!Value::Int(1).is_true());
    }
}
