//! Bridge between the workspace's native job/capacity types and ClassAds.
//!
//! The point of this module is the fidelity argument: our cluster's native
//! matcher (`Capacity::satisfies`) implements exactly the matching a
//! Condor-style matchmaker would perform over the generated ads — "the
//! available resource capacity is equal to or greater than the job
//! request". A property test asserts the equivalence, so the estimator's
//! demand-rewriting story carries over verbatim to declarative matchmaking
//! deployments: estimation rewrites the *job ad*, nothing else.

use resmatch_cluster::{Capacity, Demand};
use resmatch_workload::Job;

use crate::ad::ClassAd;

/// Number of package bits the bridge advertises as boolean attributes.
pub const PACKAGE_BITS: u32 = 32;

/// The machine-side `Requirements` text every machine ad carries. Shared
/// with the matchmaker's specializer so the fast path and the generated
/// ads stay textually identical by construction.
pub(crate) const MACHINE_REQ_TEXT: &str =
    "other.RequestedMemory <= my.Memory && other.RequestedDisk <= my.Disk";

/// The job-side `Requirements` base text; [`job_ad`] appends one
/// `&& other.HasPkgN == true` atom per set package-mask bit.
pub(crate) const JOB_REQ_BASE_TEXT: &str =
    "other.Memory >= my.RequestedMemory && other.Disk >= my.RequestedDisk";

/// Advertise a node's capacity as a machine ad.
pub fn machine_ad(capacity: &Capacity) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert_int("Memory", capacity.mem_kb.min(i64::MAX as u64) as i64);
    ad.insert_int("Disk", capacity.disk_kb.min(i64::MAX as u64) as i64);
    for bit in 0..PACKAGE_BITS {
        if capacity.packages & (1 << bit) != 0 {
            ad.insert_bool(&format!("HasPkg{bit}"), true);
        }
    }
    ad.insert_expr("Requirements", MACHINE_REQ_TEXT)
        .expect("invariant: static expression parses");
    ad
}

/// Advertise a demand (a job request, possibly estimator-rewritten) as a
/// job ad.
pub fn job_ad(demand: &Demand) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.insert_int("RequestedMemory", demand.mem_kb.min(i64::MAX as u64) as i64);
    ad.insert_int("RequestedDisk", demand.disk_kb.min(i64::MAX as u64) as i64);
    let mut requirements = String::from(JOB_REQ_BASE_TEXT);
    for bit in 0..PACKAGE_BITS {
        if demand.packages & (1 << bit) != 0 {
            requirements.push_str(&format!(" && other.HasPkg{bit} == true"));
        }
    }
    ad.insert_expr("Requirements", &requirements)
        .expect("invariant: generated expression parses");
    ad
}

/// Advertise a workload job's *request* as a job ad (what a user would
/// submit without estimation), including identity attributes for
/// similarity-aware tooling.
pub fn job_request_ad(job: &Job) -> ClassAd {
    let mut ad = job_ad(&Demand {
        mem_kb: job.requested_mem_kb,
        disk_kb: 0,
        packages: job.requested_packages,
    });
    ad.insert_int("User", job.user as i64);
    ad.insert_int("App", job.app as i64);
    ad.insert_int("Nodes", job.nodes as i64);
    ad.insert_int("RequestedRuntime", job.requested_runtime.as_secs() as i64);
    ad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::matches;

    #[test]
    fn memory_matching_agrees_with_native() {
        let node = Capacity::memory(24 * 1024);
        for mem in [1, 16 * 1024, 24 * 1024, 24 * 1024 + 1, 32 * 1024] {
            let demand = Demand::memory(mem);
            let native = node.satisfies(&demand);
            let declarative = matches(&job_ad(&demand), &machine_ad(&node)).unwrap();
            assert_eq!(native, declarative, "mem {mem}");
        }
    }

    #[test]
    fn package_matching_agrees_with_native() {
        let node = Capacity::new(32 * 1024, u64::MAX, 0b1010);
        for pkgs in [0b0000, 0b0010, 0b1010, 0b0100, 0b1110] {
            let demand = Demand::new(1024, 0, pkgs);
            let native = node.satisfies(&demand);
            let declarative = matches(&job_ad(&demand), &machine_ad(&node)).unwrap();
            assert_eq!(native, declarative, "pkgs {pkgs:#b}");
        }
    }

    #[test]
    fn job_request_ad_carries_identity() {
        use resmatch_workload::job::JobBuilder;
        let job = JobBuilder::new(1)
            .user(7)
            .app(3)
            .nodes(64)
            .requested_mem_kb(32 * 1024)
            .build();
        let ad = job_request_ad(&job);
        assert_eq!(
            ad.evaluate("user", None).unwrap(),
            crate::value::Value::Int(7)
        );
        assert_eq!(
            ad.evaluate("nodes", None).unwrap(),
            crate::value::Value::Int(64)
        );
    }

    #[test]
    fn estimation_story_via_ads() {
        // The paper's scenario in declarative clothes: the raw request
        // matches only the big machine; the estimator's rewritten ad also
        // matches the small one.
        let big = machine_ad(&Capacity::memory(32 * 1024));
        let small = machine_ad(&Capacity::memory(24 * 1024));
        let raw = job_ad(&Demand::memory(32 * 1024));
        let estimated = job_ad(&Demand::memory(16 * 1024));
        assert!(matches(&raw, &big).unwrap());
        assert!(!matches(&raw, &small).unwrap());
        assert!(matches(&estimated, &big).unwrap());
        assert!(matches(&estimated, &small).unwrap());
    }
}
