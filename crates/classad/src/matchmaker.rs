//! The allocation-path matchmaker: [`Matchmaker`] implements the
//! cluster's [`PoolMatcher`] seam on top of compiled ClassAds, with the
//! expression machinery hoisted entirely out of the per-attempt loop.
//!
//! Three layers keep the hot path at comparator cost (DESIGN.md §12):
//!
//! 1. **Indexed eligibility.** The pool table is fixed at construction, so
//!    it is lowered once into struct-of-arrays columns plus bitset
//!    indexes: a suffix table per sorted distinct memory/disk threshold
//!    (`row i` = pools at or above rung `i`) and a subset bitset per
//!    package mask seen. A canonical demand's eligibility set is then
//!    three table lookups AND-ed together — zero expression evaluation.
//! 2. **Program-shape specialization.** Construction parses the bridge's
//!    `Requirements` texts and runs [`crate::compile::specialize`] over
//!    them; when they lower to the canonical threshold conjunction
//!    (memory ≥ m ∧ disk ≥ d ∧ package flags) the index above answers
//!    exactly, and the per-mask `HasPkgN == true` atoms become the subset
//!    test. If the texts ever stop lowering — or for arbitrary operator
//!    `--constrain`/`--rank` expressions — a postfix-interpreter fallback
//!    ([`Interp`]) is built lazily and evaluated once per *signature*,
//!    never per attempt. Machine-only constraints fold into a static bit
//!    row at build time; machine-only ranks memoize per pool for the
//!    matcher's lifetime; demand-reading ranks memoize per (signature,
//!    pool), evaluated only on matched pools.
//! 3. **Demand-signature memo.** Demands are interned into signatures,
//!    each owning its eligibility bit row. On the canonical path whole
//!    *verdict classes* — every demand with the same rung rows and
//!    package mask — collapse into one signature through a flat class
//!    map, so [`PoolMatcher::prepare`] is two binary searches and a
//!    vector read; when a verdict input reads the raw job row (fallback
//!    interpretation, job-reading constraints/ranks) interning falls
//!    back to one signature per raw demand. [`PoolMatcher::matches`] is
//!    a bit test, the allocator's counting walks read the whole row at
//!    once via [`PoolMatcher::eligible_pools`], and
//!    [`PoolMatcher::demand_signature`] vouches for the interned id so
//!    engine-side caches (free-bound memo, eligible-count epoch) can key
//!    on it across whole verdict classes.
//!
//! Matching semantics are unchanged and Condor-symmetric, exactly
//! [`crate::ad::matches`]: the job program, the optional operator
//! constraint, and the machine program must each evaluate to exactly
//! `true`. Exact truth of an `&&`-conjunction is atom-wise (see
//! [`crate::compile::ReqShape`]), which is what makes the indexed answer
//! identical to interpreting the programs — a property the unit tests
//! here and the `matchmaker_equiv` proptest oracle pin against the
//! tree-walking evaluator.

use std::collections::BTreeMap;

use resmatch_cluster::{Capacity, Cluster, Demand, PoolMatcher};

use crate::bridge;
use crate::compile::{compile, specialize, AdSchema, CompiledExpr, SlotRef};
use crate::parser::{parse, ParseError};
use crate::value::Value;

/// A pool's capability ad as the matchmaker consumes it: the per-node
/// capacity plus scenario-level tags the cluster model does not carry.
#[derive(Debug, Clone)]
pub struct PoolAd {
    /// Per-node capacity (memory, disk, packages) of every node in the
    /// pool.
    pub capacity: Capacity,
    /// Architecture / platform tag, advertised as the string attribute
    /// `Arch` when present.
    pub arch: Option<String>,
}

impl PoolAd {
    /// A tagless ad for `capacity`.
    pub fn new(capacity: Capacity) -> Self {
        PoolAd {
            capacity,
            arch: None,
        }
    }

    /// Attach an `Arch` tag.
    pub fn with_arch(mut self, arch: &str) -> Self {
        self.arch = Some(arch.to_string());
        self
    }
}

/// The ads' integer comparison space: u64 figures clamped into i64.
fn clamp(v: u64) -> i64 {
    v.min(i64::MAX as u64) as i64
}

fn clamped(v: u64) -> Value {
    Value::Int(clamp(v))
}

/// Slot index of `RequestedMemory` in the job schema.
const JOB_MEM: usize = 0;
/// Slot index of `RequestedDisk` in the job schema.
const JOB_DISK: usize = 1;
/// Machine-schema slots, fixed by construction order in
/// [`Matchmaker::ensure_interp`]: `Memory`, `Disk`, `Arch`, then one
/// `HasPkgN` per package bit.
const MACH_MEM: usize = 0;
const MACH_DISK: usize = 1;
const MACH_ARCH: usize = 2;
const MACH_PKG0: usize = 3;

/// `HasPkgN` attribute names, spelled out so machine-schema construction
/// never formats strings per bit.
const HAS_PKG: [&str; bridge::PACKAGE_BITS as usize] = [
    "HasPkg0", "HasPkg1", "HasPkg2", "HasPkg3", "HasPkg4", "HasPkg5", "HasPkg6", "HasPkg7",
    "HasPkg8", "HasPkg9", "HasPkg10", "HasPkg11", "HasPkg12", "HasPkg13", "HasPkg14", "HasPkg15",
    "HasPkg16", "HasPkg17", "HasPkg18", "HasPkg19", "HasPkg20", "HasPkg21", "HasPkg22", "HasPkg23",
    "HasPkg24", "HasPkg25", "HasPkg26", "HasPkg27", "HasPkg28", "HasPkg29", "HasPkg30", "HasPkg31",
];

/// Interned demand key for the raw-interning path: the *raw* request
/// figures, so key equality is exactly [`Demand`] equality and the
/// signature guarantee holds trivially (clamping could collide distinct
/// demands at the i64 boundary).
type DemandKey = (u64, u64, u32);

/// The lazily built interpreter fallback: dense ad rows plus compiled
/// programs, exactly the pre-index evaluation model. Only constructed
/// when an operator constraint/rank is installed or the bridge programs
/// stop specializing — and even then it runs once per (signature, pool),
/// never per match attempt.
#[derive(Debug)]
struct Interp {
    job_schema: AdSchema,
    machine_schema: AdSchema,
    /// One slot row per pool.
    machine_rows: Vec<Vec<Value>>,
    /// The bridge's machine-side `Requirements` (`my` = machine,
    /// `other` = job), used only on the fallback path.
    machine_req: CompiledExpr,
    /// Fallback job-side programs, one per package mask.
    job_programs: BTreeMap<u32, CompiledExpr>,
    /// The prepared demand's slot row.
    job_row: Vec<Value>,
    /// Reused evaluation stack.
    stack: Vec<Value>,
}

/// A compiled-ad matchmaker for a fixed set of pools, pluggable into
/// [`resmatch_cluster::Cluster::try_allocate_matched`] (and the simulation
/// engine's `--matchmaking` mode) via [`PoolMatcher`].
#[derive(Debug)]
pub struct Matchmaker {
    // ---- layer 1: eligibility index over the fixed pool table ----
    /// Per-pool clamped memory / disk and package bits (SoA columns).
    pool_mem: Vec<i64>,
    pool_disk: Vec<i64>,
    pool_pkgs: Vec<u32>,
    arches: Vec<Option<String>>,
    /// Words per pool bitset row.
    words: usize,
    /// Sorted distinct clamped pool memory values.
    mem_rungs: Vec<i64>,
    /// `(mem_rungs.len() + 1) × words` suffix table: row `i` holds pools
    /// with memory ≥ `mem_rungs[i]`; the extra final row is empty and
    /// serves demands above every rung.
    mem_suffix: Vec<u64>,
    disk_rungs: Vec<i64>,
    disk_suffix: Vec<u64>,
    /// Package masks lowered so far, parallel to rows of `mask_bits`.
    mask_keys: Vec<u32>,
    /// Per-mask subset bitsets: pools `p` with `mask & !pkgs[p] == 0`.
    mask_bits: Vec<u64>,
    /// Demand-independent bits: pool existence AND any machine-only
    /// constraint verdicts, folded once at install time.
    static_bits: Vec<u64>,

    // ---- layer 2: specialization outcome + interpreter fallback ----
    /// The bridge `Requirements` failed shape recognition; signatures are
    /// built by interpretation instead of the index.
    fallback: bool,
    interp: Option<Box<Interp>>,
    /// Operator constraint conjunct (`my` = job, `other` = machine).
    constraint: Option<CompiledExpr>,
    /// The constraint reads the job row, so its verdicts are folded per
    /// signature rather than into `static_bits`.
    constraint_reads_my: bool,
    /// Rank expression (`my` = job, `other` = machine).
    rank: Option<CompiledExpr>,
    /// Machine-only rank values, one per pool, memoized for the matcher's
    /// lifetime.
    rank_static: Option<Vec<f64>>,
    /// The rank reads the job row, so values are memoized per
    /// (signature, pool) in `sig_rank` instead.
    rank_reads_my: bool,

    // ---- layer 3: demand-signature memo ----
    /// Raw-demand interning, used whenever a verdict input reads the job
    /// row itself (fallback interpretation, job-reading constraints or
    /// ranks) and class collapse would be unsound.
    sig_lookup: BTreeMap<DemandKey, u32>,
    /// Verdict-class memo for the canonical indexed path, flattened as
    /// `mask_row * class_stride + mem_row * (disk_rungs + 1) + disk_row`
    /// (`u32::MAX` = unbuilt). Every verdict input is then a pure
    /// function of that triple, so one signature serves every demand in
    /// the class and `prepare` is two binary searches plus a vector read.
    class_map: Vec<u32>,
    /// Rows per mask block of `class_map`:
    /// `(mem_rungs + 1) * (disk_rungs + 1)`, fixed at construction.
    class_stride: usize,
    /// Eligibility rows, `words` words per signature.
    sig_elig: Vec<u64>,
    /// Rank rows for job-reading ranks, one `f64` per pool per signature;
    /// filled only on matched pools (the allocator ranks candidates).
    sig_rank: Vec<f64>,
    /// The last prepared key — consecutive same-demand prepares skip even
    /// the memo probe.
    last_key: Option<DemandKey>,
    /// Signature selected by the last `prepare`.
    active: usize,
}

impl Matchmaker {
    /// Build for a fixed pool set. Pool index `i` here must correspond to
    /// the cluster's pool index `i` (construction order).
    pub fn new(pools: &[PoolAd]) -> Self {
        let npools = pools.len();
        let words = npools.div_ceil(64);
        let pool_mem: Vec<i64> = pools.iter().map(|p| clamp(p.capacity.mem_kb)).collect();
        let pool_disk: Vec<i64> = pools.iter().map(|p| clamp(p.capacity.disk_kb)).collect();
        let pool_pkgs: Vec<u32> = pools.iter().map(|p| p.capacity.packages).collect();
        let arches: Vec<Option<String>> = pools.iter().map(|p| p.arch.clone()).collect();

        let mut mem_rungs = pool_mem.clone();
        mem_rungs.sort_unstable();
        mem_rungs.dedup();
        let mem_suffix = suffix_table(&mem_rungs, &pool_mem, words);
        let mut disk_rungs = pool_disk.clone();
        disk_rungs.sort_unstable();
        disk_rungs.dedup();
        let disk_suffix = suffix_table(&disk_rungs, &pool_disk, words);

        let mut static_bits = vec![0u64; words];
        for p in 0..npools {
            static_bits[p >> 6] |= 1 << (p & 63);
        }
        let class_stride = (mem_rungs.len() + 1) * (disk_rungs.len() + 1);

        let mut mm = Matchmaker {
            pool_mem,
            pool_disk,
            pool_pkgs,
            arches,
            words,
            mem_rungs,
            mem_suffix,
            disk_rungs,
            disk_suffix,
            mask_keys: Vec::new(),
            mask_bits: Vec::new(),
            static_bits,
            fallback: !bridge_shape_is_canonical(),
            interp: None,
            constraint: None,
            constraint_reads_my: false,
            rank: None,
            rank_static: None,
            rank_reads_my: false,
            sig_lookup: BTreeMap::new(),
            class_map: Vec::new(),
            class_stride,
            sig_elig: Vec::new(),
            sig_rank: Vec::new(),
            last_key: None,
            active: 0,
        };
        if mm.fallback {
            mm.ensure_interp();
        }
        // Warm the zero-demand signature (mask 0) so `active` always
        // addresses a valid row and a default workload never builds
        // during simulation.
        mm.reset_sigs();
        mm
    }

    /// Build pool ads straight from a cluster's pools (no arch tags).
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let pools: Vec<PoolAd> = (0..cluster.num_pools())
            .map(|i| PoolAd::new(cluster.pool_capacity(i)))
            .collect();
        Matchmaker::new(&pools)
    }

    /// Add an operator constraint, conjoined into the job side of every
    /// match (`my` = the job ad, `other` = the machine ad). Like any
    /// requirement, it must evaluate to exactly `true` — an `undefined`
    /// result (e.g. probing `other.Arch` on an untagged pool) rejects.
    ///
    /// A constraint that never reads the job ad is a fixed predicate over
    /// the pool table; its verdicts fold into the static bit row here and
    /// cost nothing afterwards. Job-reading constraints are interpreted
    /// once per demand signature.
    ///
    /// # Errors
    /// Returns the parse failure for invalid expression text.
    pub fn with_constraint(mut self, text: &str) -> Result<Self, ParseError> {
        let expr = parse(text)?;
        self.ensure_interp();
        let interp = self
            .interp
            .as_mut()
            .expect("invariant: ensure_interp just ran");
        let c = compile(&expr, &interp.job_schema, &interp.machine_schema);
        if c.reads_my() {
            self.constraint_reads_my = true;
        } else {
            for p in 0..self.pool_mem.len() {
                if !c.eval_true(&interp.job_row, &interp.machine_rows[p], &mut interp.stack) {
                    self.static_bits[p >> 6] &= !(1 << (p & 63));
                }
            }
        }
        self.constraint = Some(c);
        self.reset_sigs();
        Ok(self)
    }

    /// Set a `Rank` expression (`my` = the job ad, `other` = the machine
    /// ad); higher ranks are preferred, ties keep allocation-policy order.
    ///
    /// A rank that never reads the job ad is evaluated once per pool here
    /// and served from a table; job-reading ranks are evaluated once per
    /// (demand signature, matched pool).
    ///
    /// # Errors
    /// Returns the parse failure for invalid expression text.
    pub fn with_rank(mut self, text: &str) -> Result<Self, ParseError> {
        let expr = parse(text)?;
        self.ensure_interp();
        let interp = self
            .interp
            .as_mut()
            .expect("invariant: ensure_interp just ran");
        let r = compile(&expr, &interp.job_schema, &interp.machine_schema);
        if r.reads_my() {
            self.rank_reads_my = true;
        } else {
            self.rank_static = Some(
                (0..self.pool_mem.len())
                    .map(|p| {
                        r.eval_rank(&interp.job_row, &interp.machine_rows[p], &mut interp.stack)
                    })
                    .collect(),
            );
        }
        self.rank = Some(r);
        self.reset_sigs();
        Ok(self)
    }

    /// Number of distinct job-side programs lowered so far (one per
    /// package mask seen) — observability for the per-mask cache the hot
    /// path relies on.
    pub fn compiled_programs(&self) -> usize {
        self.mask_keys.len()
    }

    /// Whether signatures may collapse demands per verdict class: true
    /// when no verdict input reads the raw job row (no fallback
    /// interpretation, no job-reading constraint or rank), so eligibility
    /// — and any static rank — is a pure function of the demand's rung
    /// rows and package mask.
    fn class_indexed(&self) -> bool {
        !self.fallback && !self.constraint_reads_my && !self.rank_reads_my
    }

    /// Drop every memoized signature — called when verdict inputs change
    /// (constraint/rank installation) — and re-warm the zero demand so
    /// `active` always addresses a valid eligibility row.
    fn reset_sigs(&mut self) {
        self.sig_lookup.clear();
        self.class_map.clear();
        self.sig_elig.clear();
        self.sig_rank.clear();
        self.last_key = None;
        self.active = 0;
        self.prepare(&Demand::new(0, 0, 0));
    }

    /// Row index of `mask` in `mask_bits`, building the subset bitset on
    /// first sight. Soundness of the subset test: the bridge appends one
    /// `other.HasPkgN == true` atom per set mask bit, and machine ads
    /// advertise `HasPkgN = true` exactly for set capacity bits, so every
    /// atom is exactly `true` iff `mask & !pkgs == 0` (an absent flag
    /// reads `undefined`, which `== true` leaves non-`true`). The
    /// `matchmaker_equiv` oracle pins this against the generated ads.
    fn mask_row(&mut self, mask: u32) -> usize {
        if let Some(i) = self.mask_keys.iter().position(|&m| m == mask) {
            return i;
        }
        let base = self.mask_bits.len();
        self.mask_bits.resize(base + self.words, 0);
        for (p, &pkgs) in self.pool_pkgs.iter().enumerate() {
            if mask & !pkgs == 0 {
                self.mask_bits[base + (p >> 6)] |= 1 << (p & 63);
            }
        }
        self.mask_keys.push(mask);
        self.mask_keys.len() - 1
    }

    /// Intern a new demand: build its eligibility row (and rank row when
    /// ranks read the job ad), returning the new signature index.
    fn build_sig(&mut self, demand: &Demand) -> usize {
        let base = self.sig_elig.len();
        let idx = base / self.words;
        let mask = self.mask_row(demand.packages);
        self.sig_elig.resize(base + self.words, 0);
        if self.fallback {
            self.interpret_sig(demand, base);
        } else {
            let mrow = self
                .mem_rungs
                .partition_point(|&r| r < clamp(demand.mem_kb));
            let drow = self
                .disk_rungs
                .partition_point(|&r| r < clamp(demand.disk_kb));
            let w = self.words;
            for i in 0..w {
                self.sig_elig[base + i] = self.mem_suffix[mrow * w + i]
                    & self.disk_suffix[drow * w + i]
                    & self.mask_bits[mask * w + i]
                    & self.static_bits[i];
            }
            if self.constraint_reads_my {
                self.constrain_sig(demand, base);
            }
        }
        if self.rank_reads_my {
            self.rank_sig(demand, base);
        }
        idx
    }

    /// Fold a job-reading constraint into a freshly indexed eligibility
    /// row: interpret it once per surviving pool (exactly the pools the
    /// old `&&` short-circuit would have evaluated it on).
    fn constrain_sig(&mut self, demand: &Demand, base: usize) {
        let interp = self
            .interp
            .as_mut()
            .expect("invariant: job-reading constraint implies interp");
        interp.job_row[JOB_MEM] = clamped(demand.mem_kb);
        interp.job_row[JOB_DISK] = clamped(demand.disk_kb);
        let c = self
            .constraint
            .as_ref()
            .expect("invariant: constraint_reads_my implies constraint");
        for p in 0..self.pool_mem.len() {
            let word = base + (p >> 6);
            let bit = 1u64 << (p & 63);
            if self.sig_elig[word] & bit != 0
                && !c.eval_true(&interp.job_row, &interp.machine_rows[p], &mut interp.stack)
            {
                self.sig_elig[word] &= !bit;
            }
        }
    }

    /// Build an eligibility row by full interpretation — the fallback for
    /// bridge programs that stopped specializing. Runs the same three
    /// exactly-`true` checks the pre-index matcher ran per attempt, once
    /// per (signature, pool).
    fn interpret_sig(&mut self, demand: &Demand, base: usize) {
        let interp = self
            .interp
            .as_mut()
            .expect("invariant: fallback implies interp");
        let Interp {
            job_schema,
            machine_schema,
            machine_rows,
            machine_req,
            job_programs,
            job_row,
            stack,
        } = &mut **interp;
        job_row[JOB_MEM] = clamped(demand.mem_kb);
        job_row[JOB_DISK] = clamped(demand.disk_kb);
        let prog = job_programs.entry(demand.packages).or_insert_with(|| {
            // The program shape only depends on the mask; memory and disk
            // enter as slots. Reuse the bridge's generator verbatim.
            let ad = bridge::job_ad(&Demand::new(0, 0, demand.packages));
            compile(
                ad.expr("requirements")
                    .expect("invariant: bridge job ads always carry Requirements"),
                job_schema,
                machine_schema,
            )
        });
        let constraint = self.constraint.as_ref();
        for (p, machine) in machine_rows.iter().enumerate() {
            let ok = prog.eval_true(job_row, machine, stack)
                && constraint.is_none_or(|c| c.eval_true(job_row, machine, stack))
                && machine_req.eval_true(machine, job_row, stack);
            if ok {
                self.sig_elig[base + (p >> 6)] |= 1 << (p & 63);
            }
        }
    }

    /// Memoize a job-reading rank for a freshly built signature: evaluate
    /// on matched pools only (the allocator ranks candidates, which are
    /// matched by construction).
    fn rank_sig(&mut self, demand: &Demand, elig_base: usize) {
        let interp = self
            .interp
            .as_mut()
            .expect("invariant: job-reading rank implies interp");
        interp.job_row[JOB_MEM] = clamped(demand.mem_kb);
        interp.job_row[JOB_DISK] = clamped(demand.disk_kb);
        let r = self
            .rank
            .as_ref()
            .expect("invariant: rank_reads_my implies rank");
        let npools = self.pool_mem.len();
        let base = self.sig_rank.len();
        self.sig_rank.resize(base + npools, 0.0);
        for p in 0..npools {
            if self.sig_elig[elig_base + (p >> 6)] >> (p & 63) & 1 != 0 {
                self.sig_rank[base + p] =
                    r.eval_rank(&interp.job_row, &interp.machine_rows[p], &mut interp.stack);
            }
        }
    }

    /// Build the interpreter state (schemas, machine rows, compiled
    /// machine requirement) if not already present.
    fn ensure_interp(&mut self) {
        if self.interp.is_some() {
            return;
        }
        let mut job_schema = AdSchema::new();
        assert_eq!(job_schema.add("RequestedMemory") as usize, JOB_MEM);
        assert_eq!(job_schema.add("RequestedDisk") as usize, JOB_DISK);
        let mut machine_schema = AdSchema::new();
        assert_eq!(machine_schema.add("Memory") as usize, MACH_MEM);
        assert_eq!(machine_schema.add("Disk") as usize, MACH_DISK);
        assert_eq!(machine_schema.add("Arch") as usize, MACH_ARCH);
        for (bit, name) in HAS_PKG.iter().enumerate() {
            assert_eq!(machine_schema.add(name) as usize, MACH_PKG0 + bit);
        }
        let machine_rows = (0..self.pool_mem.len())
            .map(|p| {
                let mut row = machine_schema.blank_row();
                row[MACH_MEM] = Value::Int(self.pool_mem[p]);
                row[MACH_DISK] = Value::Int(self.pool_disk[p]);
                if let Some(arch) = &self.arches[p] {
                    row[MACH_ARCH] = Value::Str(arch.clone());
                }
                for bit in 0..bridge::PACKAGE_BITS {
                    if self.pool_pkgs[p] & (1 << bit) != 0 {
                        row[MACH_PKG0 + bit as usize] = Value::Bool(true);
                    }
                }
                row
            })
            .collect();
        // Lift the machine-side Requirements off a bridge-generated ad so
        // the fallback and the tree-walking bridge stay textually
        // identical.
        let machine_ad = bridge::machine_ad(&Capacity::memory(0));
        let machine_req = compile(
            machine_ad
                .expr("requirements")
                .expect("invariant: bridge machine ads always carry Requirements"),
            &machine_schema,
            &job_schema,
        );
        self.interp = Some(Box::new(Interp {
            job_row: vec![Value::Int(0); job_schema.len()],
            job_schema,
            machine_schema,
            machine_rows,
            machine_req,
            job_programs: BTreeMap::new(),
            stack: Vec::new(),
        }));
    }
}

/// Build the suffix bitset table for sorted distinct `rungs` over pool
/// column `vals`: row `i` holds the pools with `vals[p] >= rungs[i]`, and
/// one extra empty row serves demands above every rung. A demand `d`
/// resolves to row `partition_point(rungs, r < d)` — the first rung ≥ `d`
/// — which is exactly `{p : vals[p] >= d}` because every pool value *is* a
/// rung.
fn suffix_table(rungs: &[i64], vals: &[i64], words: usize) -> Vec<u64> {
    let mut table = vec![0u64; (rungs.len() + 1) * words];
    for (p, &v) in vals.iter().enumerate() {
        let rows = rungs.partition_point(|&r| r <= v);
        for row in 0..rows {
            table[row * words + (p >> 6)] |= 1 << (p & 63);
        }
    }
    table
}

/// Whether the bridge's `Requirements` texts still lower to the canonical
/// threshold shape the eligibility index implements: the job side demands
/// machine memory/disk at or above the request, the machine side mirrors
/// the same two thresholds (so its verdict is subsumed and needs no
/// separate check). Per-mask package atoms are covered by
/// [`Matchmaker::mask_row`]'s subset argument.
fn bridge_shape_is_canonical() -> bool {
    let mut job = AdSchema::new();
    job.add("RequestedMemory");
    job.add("RequestedDisk");
    let mut machine = AdSchema::new();
    machine.add("Memory");
    machine.add("Disk");
    let (Ok(job_req), Ok(mach_req)) = (
        parse(bridge::JOB_REQ_BASE_TEXT),
        parse(bridge::MACHINE_REQ_TEXT),
    ) else {
        return false;
    };
    let (Some(job_shape), Some(mach_shape)) = (
        specialize(&job_req, &job, &machine),
        specialize(&mach_req, &machine, &job),
    ) else {
        return false;
    };
    let want_job = [
        (SlotRef::Other(0), SlotRef::My(0)),
        (SlotRef::Other(1), SlotRef::My(1)),
    ];
    let want_mach = [
        (SlotRef::My(0), SlotRef::Other(0)),
        (SlotRef::My(1), SlotRef::Other(1)),
    ];
    job_shape.ge == want_job
        && job_shape.must_true.is_empty()
        && job_shape.eq_str.is_empty()
        && mach_shape.ge == want_mach
        && mach_shape.must_true.is_empty()
        && mach_shape.eq_str.is_empty()
}

impl PoolMatcher for Matchmaker {
    fn prepare(&mut self, demand: &Demand) {
        let key = (demand.mem_kb, demand.disk_kb, demand.packages);
        if self.last_key == Some(key) {
            return;
        }
        self.last_key = Some(key);
        // Canonical indexed path: every verdict input is a pure function
        // of (mem row, disk row, package mask), so demands collapse into
        // verdict classes and the memo probe is a vector read. The
        // `i64::MAX` guard keeps clamping lossless — above it, distinct
        // demands could clamp into one class while a pool's raw capacity
        // still separated them under `Capacity::satisfies`.
        if self.class_indexed()
            && demand.mem_kb <= i64::MAX as u64
            && demand.disk_kb <= i64::MAX as u64
        {
            let mrow = self
                .mem_rungs
                .partition_point(|&r| r < demand.mem_kb as i64);
            let drow = self
                .disk_rungs
                .partition_point(|&r| r < demand.disk_kb as i64);
            let mask = self.mask_row(demand.packages);
            let ck = mask * self.class_stride + mrow * (self.disk_rungs.len() + 1) + drow;
            if self.class_map.len() <= ck {
                self.class_map.resize(ck + 1, u32::MAX);
            }
            let cached = self.class_map[ck];
            if cached != u32::MAX {
                self.active = cached as usize;
                return;
            }
            let i = self.build_sig(demand);
            self.class_map[ck] = i as u32;
            self.active = i;
            return;
        }
        if let Some(&i) = self.sig_lookup.get(&key) {
            self.active = i as usize;
            return;
        }
        let i = self.build_sig(demand);
        self.sig_lookup.insert(key, i as u32);
        self.active = i;
    }

    fn matches(&mut self, pool: usize, _capacity: &Capacity) -> bool {
        self.sig_elig[self.active * self.words + (pool >> 6)] >> (pool & 63) & 1 != 0
    }

    fn rank(&mut self, pool: usize, _capacity: &Capacity) -> f64 {
        if let Some(r) = &self.rank_static {
            return r[pool];
        }
        if self.rank_reads_my {
            return self.sig_rank[self.active * self.pool_mem.len() + pool];
        }
        0.0
    }

    fn is_ranked(&self) -> bool {
        self.rank.is_some()
    }

    fn demand_signature(&self) -> Option<u64> {
        // Sound on both interning paths: raw interning gives one
        // signature per demand; class interning only collapses demands
        // with identical per-pool verdicts and (static) ranks.
        Some(self.active as u64)
    }

    fn eligible_pools(&self) -> Option<&[u64]> {
        let base = self.active * self.words;
        Some(&self.sig_elig[base..base + self.words])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_cluster::{ClusterBuilder, MatchPolicy};

    const MB: u64 = 1024;

    fn pools() -> Vec<PoolAd> {
        vec![
            PoolAd::new(Capacity::new(32 * MB, 1000, 0b01)).with_arch("x86"),
            PoolAd::new(Capacity::new(24 * MB, 200, 0b11)).with_arch("sparc"),
        ]
    }

    fn demands() -> Vec<Demand> {
        vec![
            Demand::memory(16 * MB),
            Demand::memory(28 * MB),
            Demand::new(8 * MB, 500, 0),
            Demand::new(8 * MB, 100, 0b10),
            Demand::new(8 * MB, 0, 0b100),
            Demand::new(0, 0, 0),
            Demand::new(u64::MAX, u64::MAX, u32::MAX),
        ]
    }

    #[test]
    fn capacity_dimensions_match_like_native_satisfies() {
        let mut mm = Matchmaker::new(&pools());
        for demand in demands() {
            mm.prepare(&demand);
            for (i, pool) in pools().iter().enumerate() {
                assert_eq!(
                    mm.matches(i, &pool.capacity),
                    pool.capacity.satisfies(&demand),
                    "pool {i}, demand {demand:?}"
                );
            }
        }
    }

    #[test]
    fn job_programs_are_cached_per_package_mask() {
        let mut mm = Matchmaker::new(&pools());
        assert_eq!(mm.compiled_programs(), 1); // mask 0 precompiled
        for mask in [0, 0b01, 0b01, 0b11, 0] {
            mm.prepare(&Demand::new(MB, 0, mask));
        }
        assert_eq!(mm.compiled_programs(), 3);
    }

    #[test]
    fn constraint_conjoins_into_the_job_side() {
        let mut mm = Matchmaker::new(&pools())
            .with_constraint("other.Arch == \"sparc\"")
            .unwrap();
        mm.prepare(&Demand::memory(MB));
        assert!(!mm.matches(0, &pools()[0].capacity));
        assert!(mm.matches(1, &pools()[1].capacity));
        // Probing an attribute an untagged pool lacks yields undefined,
        // which rejects rather than matching vacuously.
        let untagged = [PoolAd::new(Capacity::memory(32 * MB))];
        let mut mm = Matchmaker::new(&untagged)
            .with_constraint("other.Arch == \"x86\"")
            .unwrap();
        mm.prepare(&Demand::memory(MB));
        assert!(!mm.matches(0, &untagged[0].capacity));
    }

    #[test]
    fn job_reading_constraint_is_folded_per_signature() {
        // Reads the job row, so it cannot fold into the static bits —
        // each demand signature re-evaluates it.
        let mut mm = Matchmaker::new(&pools())
            .with_constraint("my.RequestedMemory * 2 <= other.Memory")
            .unwrap();
        let tight = Demand::memory(14 * MB); // 2x fits only the 32 MB pool
        mm.prepare(&tight);
        assert!(mm.matches(0, &pools()[0].capacity));
        assert!(!mm.matches(1, &pools()[1].capacity));
        let loose = Demand::memory(8 * MB);
        mm.prepare(&loose);
        assert!(mm.matches(0, &pools()[0].capacity));
        assert!(mm.matches(1, &pools()[1].capacity));
        // Revisiting a signature serves the memo, same verdicts.
        mm.prepare(&tight);
        assert!(!mm.matches(1, &pools()[1].capacity));
    }

    #[test]
    fn constraint_after_warm_signature_still_applies() {
        // `new` warms the zero-demand signature; installing a constraint
        // must invalidate it, not serve the unconstrained memo.
        let mut mm = Matchmaker::new(&pools())
            .with_constraint("other.Arch == \"sparc\"")
            .unwrap();
        mm.prepare(&Demand::new(0, 0, 0));
        assert!(!mm.matches(0, &pools()[0].capacity));
        assert!(mm.matches(1, &pools()[1].capacity));
    }

    #[test]
    fn bad_expressions_surface_parse_errors() {
        assert!(Matchmaker::new(&pools()).with_constraint("1 +").is_err());
        assert!(Matchmaker::new(&pools()).with_rank("(Memory").is_err());
    }

    #[test]
    fn rank_expression_reorders_allocation() {
        let mut cluster = ClusterBuilder::new()
            .pool(4, 32 * MB)
            .pool(4, 24 * MB)
            .build();
        // FirstFit would draw from the 32 MB pool; ranking by smallest
        // sufficient memory sends the job to the 24 MB nodes instead.
        let mut mm = Matchmaker::from_cluster(&cluster)
            .with_rank("0 - other.Memory")
            .unwrap();
        let demand = Demand::memory(8 * MB);
        mm.prepare(&demand);
        let a = cluster
            .try_allocate_matched(2, &demand, MatchPolicy::FirstFit, 1, &mut mm)
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id >= 4), "{:?}", a.nodes());
        cluster.release(a);
    }

    #[test]
    fn job_reading_rank_is_memoized_per_signature() {
        let mut mm = Matchmaker::new(&pools())
            .with_rank("other.Memory - my.RequestedMemory")
            .unwrap();
        assert!(mm.is_ranked());
        for demand in [Demand::memory(8 * MB), Demand::memory(20 * MB)] {
            mm.prepare(&demand);
            for (i, pool) in pools().iter().enumerate() {
                if !mm.matches(i, &pool.capacity) {
                    continue;
                }
                let want = (clamp(pool.capacity.mem_kb) - clamp(demand.mem_kb)) as f64;
                assert_eq!(mm.rank(i, &pool.capacity), want, "pool {i}");
            }
        }
    }

    #[test]
    fn interpreter_fallback_agrees_with_the_index() {
        // Force the fallback path (as if the bridge texts stopped
        // specializing) and check it reproduces the indexed verdicts.
        let mut indexed = Matchmaker::new(&pools());
        let mut interpreted = Matchmaker::new(&pools());
        assert!(!interpreted.fallback, "bridge shape should specialize");
        interpreted.fallback = true;
        interpreted.ensure_interp();
        interpreted.reset_sigs();
        for demand in demands() {
            indexed.prepare(&demand);
            interpreted.prepare(&demand);
            for (i, pool) in pools().iter().enumerate() {
                assert_eq!(
                    indexed.matches(i, &pool.capacity),
                    interpreted.matches(i, &pool.capacity),
                    "pool {i}, demand {demand:?}"
                );
            }
        }
    }

    #[test]
    fn eligible_pools_bits_agree_with_matches() {
        let mut mm = Matchmaker::new(&pools())
            .with_constraint("other.Arch == \"x86\"")
            .unwrap();
        for demand in demands() {
            mm.prepare(&demand);
            let bits = mm.eligible_pools().expect("matchmaker always indexes");
            assert_eq!(bits.len(), 1);
            let words = bits.to_vec();
            for (i, pool) in pools().iter().enumerate() {
                assert_eq!(
                    words[i >> 6] >> (i & 63) & 1 != 0,
                    mm.matches(i, &pool.capacity),
                    "pool {i}, demand {demand:?}"
                );
            }
        }
    }

    #[test]
    fn demand_signature_is_stable_and_collapses_only_equal_verdicts() {
        let mut mm = Matchmaker::new(&pools());
        let mut seen = std::collections::BTreeMap::new();
        let mut verdicts = std::collections::BTreeMap::new();
        for _round in 0..2 {
            for demand in demands() {
                mm.prepare(&demand);
                let sig = mm.demand_signature().expect("matchmaker always vouches");
                // Stability: re-preparing a demand re-yields its signature.
                let key = (demand.mem_kb, demand.disk_kb, demand.packages);
                assert_eq!(*seen.entry(key).or_insert(sig), sig, "{demand:?}");
                // Soundness of collapse: one signature, one verdict set.
                let row: Vec<bool> = pools()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| mm.matches(i, &p.capacity))
                    .collect();
                assert_eq!(*verdicts.entry(sig).or_insert_with(|| row.clone()), row);
            }
        }
        // The class memo actually collapses: both demands sit below every
        // pool's rungs, so they share a verdict class and a signature.
        mm.prepare(&Demand::memory(16 * MB));
        let a = mm.demand_signature();
        mm.prepare(&Demand::new(0, 0, 0));
        assert_eq!(a, mm.demand_signature());
        // And distinct verdict classes keep distinct signatures.
        mm.prepare(&Demand::memory(28 * MB));
        assert_ne!(a, mm.demand_signature());
    }

    #[test]
    fn from_cluster_mirrors_pool_order_and_agrees_with_bridge() {
        use crate::ad::matches as ad_matches;
        let cluster = ClusterBuilder::new()
            .pool_with(2, Capacity::new(32 * MB, 500, 0b10))
            .pool_with(2, Capacity::new(24 * MB, 100, 0b01))
            .build();
        let mut mm = Matchmaker::from_cluster(&cluster);
        for demand in [
            Demand::memory(28 * MB),
            Demand::new(8 * MB, 300, 0),
            Demand::new(8 * MB, 50, 0b01),
        ] {
            mm.prepare(&demand);
            for i in 0..cluster.num_pools() {
                let capacity = cluster.pool_capacity(i);
                let walked =
                    ad_matches(&bridge::job_ad(&demand), &bridge::machine_ad(&capacity)).unwrap();
                assert_eq!(
                    mm.matches(i, &capacity),
                    walked,
                    "pool {i}, demand {demand:?}"
                );
            }
        }
    }
}
