//! The allocation-path matchmaker: [`Matchmaker`] implements the
//! cluster's [`PoolMatcher`] seam on top of compiled ClassAds.
//!
//! At construction every pool's capability ad is lowered to a dense slot
//! row ([`crate::compile::AdSchema`]) and the bridge's machine-side
//! `Requirements` is compiled once. Job-side `Requirements` depend only on
//! the demand's package mask (memory and disk enter as slot values, not
//! program shape), so compiled job programs are cached per distinct mask —
//! a workload with `k` package profiles compiles `k` programs total, and
//! the steady-state cost of [`PoolMatcher::matches`] is two compiled
//! evaluations over preallocated rows, allocation-free.
//!
//! Matching is Condor-symmetric, exactly [`crate::ad::matches`]: the job
//! program, the optional operator constraint, and the machine program must
//! each evaluate to exactly `true`. An optional `Rank` expression (job
//! side, `other` = machine) turns first-fit pool order into best-fit by
//! preference; rank coercion follows [`crate::ad::rank`].

use std::collections::BTreeMap;

use resmatch_cluster::{Capacity, Cluster, Demand, PoolMatcher};

use crate::bridge;
use crate::compile::{compile, AdSchema, CompiledExpr};
use crate::parser::{parse, ParseError};
use crate::value::Value;

/// A pool's capability ad as the matchmaker consumes it: the per-node
/// capacity plus scenario-level tags the cluster model does not carry.
#[derive(Debug, Clone)]
pub struct PoolAd {
    /// Per-node capacity (memory, disk, packages) of every node in the
    /// pool.
    pub capacity: Capacity,
    /// Architecture / platform tag, advertised as the string attribute
    /// `Arch` when present.
    pub arch: Option<String>,
}

impl PoolAd {
    /// A tagless ad for `capacity`.
    pub fn new(capacity: Capacity) -> Self {
        PoolAd {
            capacity,
            arch: None,
        }
    }

    /// Attach an `Arch` tag.
    pub fn with_arch(mut self, arch: &str) -> Self {
        self.arch = Some(arch.to_string());
        self
    }
}

fn clamped(v: u64) -> Value {
    Value::Int(v.min(i64::MAX as u64) as i64)
}

/// Slot index of `RequestedMemory` in the job schema.
const JOB_MEM: usize = 0;
/// Slot index of `RequestedDisk` in the job schema.
const JOB_DISK: usize = 1;

/// A compiled-ad matchmaker for a fixed set of pools, pluggable into
/// [`resmatch_cluster::Cluster::try_allocate_matched`] (and the simulation
/// engine's `--matchmaking` mode) via [`PoolMatcher`].
#[derive(Debug)]
pub struct Matchmaker {
    job_schema: AdSchema,
    machine_schema: AdSchema,
    /// One slot row per pool, filled at construction.
    machine_rows: Vec<Vec<Value>>,
    /// The bridge's machine-side `Requirements`, compiled with
    /// `my` = machine, `other` = job. Shared by every pool.
    machine_req: CompiledExpr,
    /// Compiled job-side `Requirements`, one per distinct package mask.
    job_programs: Vec<CompiledExpr>,
    program_by_mask: BTreeMap<u32, usize>,
    /// Operator constraint conjunct (`my` = job, `other` = machine).
    constraint: Option<CompiledExpr>,
    /// Rank expression (`my` = job, `other` = machine).
    rank: Option<CompiledExpr>,
    /// The prepared demand's slot row.
    job_row: Vec<Value>,
    /// Index into `job_programs` selected by the last `prepare`.
    active: usize,
    /// Reused evaluation stack.
    stack: Vec<Value>,
}

impl Matchmaker {
    /// Build for a fixed pool set. Pool index `i` here must correspond to
    /// the cluster's pool index `i` (construction order).
    pub fn new(pools: &[PoolAd]) -> Self {
        let mut job_schema = AdSchema::new();
        assert_eq!(job_schema.add("RequestedMemory") as usize, JOB_MEM);
        assert_eq!(job_schema.add("RequestedDisk") as usize, JOB_DISK);

        let mut machine_schema = AdSchema::new();
        machine_schema.add("Memory");
        machine_schema.add("Disk");
        machine_schema.add("Arch");
        for bit in 0..bridge::PACKAGE_BITS {
            machine_schema.add(&format!("HasPkg{bit}"));
        }

        let machine_rows = pools
            .iter()
            .map(|pool| {
                let mut row = machine_schema.blank_row();
                row[machine_schema
                    .slot("Memory")
                    .expect("invariant: slot added to machine_schema above")
                    as usize] = clamped(pool.capacity.mem_kb);
                row[machine_schema
                    .slot("Disk")
                    .expect("invariant: slot added to machine_schema above")
                    as usize] = clamped(pool.capacity.disk_kb);
                if let Some(arch) = &pool.arch {
                    row[machine_schema
                        .slot("Arch")
                        .expect("invariant: slot added to machine_schema above")
                        as usize] = Value::Str(arch.clone());
                }
                for bit in 0..bridge::PACKAGE_BITS {
                    if pool.capacity.packages & (1 << bit) != 0 {
                        let slot = machine_schema
                            .slot(&format!("HasPkg{bit}"))
                            .expect("invariant: slot added to machine_schema above");
                        row[slot as usize] = Value::Bool(true);
                    }
                }
                row
            })
            .collect();

        // The machine-side Requirements text is pool-independent; lift it
        // straight off a bridge-generated ad so the compiled matchmaker
        // and the tree-walking bridge stay textually identical.
        let machine_ad = bridge::machine_ad(&Capacity::memory(0));
        let machine_req = compile(
            machine_ad
                .expr("requirements")
                .expect("invariant: bridge machine ads always carry Requirements"),
            &machine_schema,
            &job_schema,
        );

        let mut mm = Matchmaker {
            job_row: vec![Value::Int(0); job_schema.len()],
            job_schema,
            machine_schema,
            machine_rows,
            machine_req,
            job_programs: Vec::new(),
            program_by_mask: BTreeMap::new(),
            constraint: None,
            rank: None,
            active: 0,
            stack: Vec::new(),
        };
        // Warm the cache for the unconstrained mask so a default workload
        // never compiles during simulation.
        mm.active = mm.program_for(0);
        mm
    }

    /// Build pool ads straight from a cluster's pools (no arch tags).
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let pools: Vec<PoolAd> = (0..cluster.num_pools())
            .map(|i| PoolAd::new(cluster.pool_capacity(i)))
            .collect();
        Matchmaker::new(&pools)
    }

    /// Add an operator constraint, conjoined into the job side of every
    /// match (`my` = the job ad, `other` = the machine ad). Like any
    /// requirement, it must evaluate to exactly `true` — an `undefined`
    /// result (e.g. probing `other.Arch` on an untagged pool) rejects.
    ///
    /// # Errors
    /// Returns the parse failure for invalid expression text.
    pub fn with_constraint(mut self, text: &str) -> Result<Self, ParseError> {
        let expr = parse(text)?;
        self.constraint = Some(compile(&expr, &self.job_schema, &self.machine_schema));
        Ok(self)
    }

    /// Set a `Rank` expression (`my` = the job ad, `other` = the machine
    /// ad); higher ranks are preferred, ties keep allocation-policy order.
    ///
    /// # Errors
    /// Returns the parse failure for invalid expression text.
    pub fn with_rank(mut self, text: &str) -> Result<Self, ParseError> {
        let expr = parse(text)?;
        self.rank = Some(compile(&expr, &self.job_schema, &self.machine_schema));
        Ok(self)
    }

    /// Number of distinct job programs compiled so far (one per package
    /// mask seen) — observability for the cache the hot path relies on.
    pub fn compiled_programs(&self) -> usize {
        self.job_programs.len()
    }

    /// Look up or compile the job program for a package mask.
    fn program_for(&mut self, mask: u32) -> usize {
        if let Some(&i) = self.program_by_mask.get(&mask) {
            return i;
        }
        // Reuse the bridge's generator verbatim: the program *shape* only
        // depends on the mask, the memory/disk figures enter as slots.
        let ad = bridge::job_ad(&Demand::new(0, 0, mask));
        let prog = compile(
            ad.expr("requirements")
                .expect("invariant: bridge job ads always carry Requirements"),
            &self.job_schema,
            &self.machine_schema,
        );
        self.job_programs.push(prog);
        let idx = self.job_programs.len() - 1;
        self.program_by_mask.insert(mask, idx);
        idx
    }
}

impl PoolMatcher for Matchmaker {
    fn prepare(&mut self, demand: &Demand) {
        self.job_row[JOB_MEM] = clamped(demand.mem_kb);
        self.job_row[JOB_DISK] = clamped(demand.disk_kb);
        self.active = self.program_for(demand.packages);
    }

    fn matches(&mut self, pool: usize, _capacity: &Capacity) -> bool {
        let machine = &self.machine_rows[pool];
        // Job requirements (and the operator constraint) against the
        // machine, then the machine's own requirements against the job —
        // Condor's symmetric match, each side exactly `true`.
        self.job_programs[self.active].eval_true(&self.job_row, machine, &mut self.stack)
            && self
                .constraint
                .as_ref()
                .is_none_or(|c| c.eval_true(&self.job_row, machine, &mut self.stack))
            && self
                .machine_req
                .eval_true(machine, &self.job_row, &mut self.stack)
    }

    fn rank(&mut self, pool: usize, _capacity: &Capacity) -> f64 {
        match &self.rank {
            Some(r) => r.eval_rank(&self.job_row, &self.machine_rows[pool], &mut self.stack),
            None => 0.0,
        }
    }

    fn is_ranked(&self) -> bool {
        self.rank.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_cluster::{ClusterBuilder, MatchPolicy};

    const MB: u64 = 1024;

    fn pools() -> Vec<PoolAd> {
        vec![
            PoolAd::new(Capacity::new(32 * MB, 1000, 0b01)).with_arch("x86"),
            PoolAd::new(Capacity::new(24 * MB, 200, 0b11)).with_arch("sparc"),
        ]
    }

    #[test]
    fn capacity_dimensions_match_like_native_satisfies() {
        let mut mm = Matchmaker::new(&pools());
        for demand in [
            Demand::memory(16 * MB),
            Demand::memory(28 * MB),
            Demand::new(8 * MB, 500, 0),
            Demand::new(8 * MB, 100, 0b10),
            Demand::new(8 * MB, 0, 0b100),
        ] {
            mm.prepare(&demand);
            for (i, pool) in pools().iter().enumerate() {
                assert_eq!(
                    mm.matches(i, &pool.capacity),
                    pool.capacity.satisfies(&demand),
                    "pool {i}, demand {demand:?}"
                );
            }
        }
    }

    #[test]
    fn job_programs_are_cached_per_package_mask() {
        let mut mm = Matchmaker::new(&pools());
        assert_eq!(mm.compiled_programs(), 1); // mask 0 precompiled
        for mask in [0, 0b01, 0b01, 0b11, 0] {
            mm.prepare(&Demand::new(MB, 0, mask));
        }
        assert_eq!(mm.compiled_programs(), 3);
    }

    #[test]
    fn constraint_conjoins_into_the_job_side() {
        let mut mm = Matchmaker::new(&pools())
            .with_constraint("other.Arch == \"sparc\"")
            .unwrap();
        mm.prepare(&Demand::memory(MB));
        assert!(!mm.matches(0, &pools()[0].capacity));
        assert!(mm.matches(1, &pools()[1].capacity));
        // Probing an attribute an untagged pool lacks yields undefined,
        // which rejects rather than matching vacuously.
        let untagged = [PoolAd::new(Capacity::memory(32 * MB))];
        let mut mm = Matchmaker::new(&untagged)
            .with_constraint("other.Arch == \"x86\"")
            .unwrap();
        mm.prepare(&Demand::memory(MB));
        assert!(!mm.matches(0, &untagged[0].capacity));
    }

    #[test]
    fn bad_expressions_surface_parse_errors() {
        assert!(Matchmaker::new(&pools()).with_constraint("1 +").is_err());
        assert!(Matchmaker::new(&pools()).with_rank("(Memory").is_err());
    }

    #[test]
    fn rank_expression_reorders_allocation() {
        let mut cluster = ClusterBuilder::new()
            .pool(4, 32 * MB)
            .pool(4, 24 * MB)
            .build();
        // FirstFit would draw from the 32 MB pool; ranking by smallest
        // sufficient memory sends the job to the 24 MB nodes instead.
        let mut mm = Matchmaker::from_cluster(&cluster)
            .with_rank("0 - other.Memory")
            .unwrap();
        let demand = Demand::memory(8 * MB);
        mm.prepare(&demand);
        let a = cluster
            .try_allocate_matched(2, &demand, MatchPolicy::FirstFit, 1, &mut mm)
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id >= 4), "{:?}", a.nodes());
        cluster.release(a);
    }

    #[test]
    fn from_cluster_mirrors_pool_order_and_agrees_with_bridge() {
        use crate::ad::matches as ad_matches;
        let cluster = ClusterBuilder::new()
            .pool_with(2, Capacity::new(32 * MB, 500, 0b10))
            .pool_with(2, Capacity::new(24 * MB, 100, 0b01))
            .build();
        let mut mm = Matchmaker::from_cluster(&cluster);
        for demand in [
            Demand::memory(28 * MB),
            Demand::new(8 * MB, 300, 0),
            Demand::new(8 * MB, 50, 0b01),
        ] {
            mm.prepare(&demand);
            for i in 0..cluster.num_pools() {
                let capacity = cluster.pool_capacity(i);
                let walked =
                    ad_matches(&bridge::job_ad(&demand), &bridge::machine_ad(&capacity)).unwrap();
                assert_eq!(
                    mm.matches(i, &capacity),
                    walked,
                    "pool {i}, demand {demand:?}"
                );
            }
        }
    }
}
