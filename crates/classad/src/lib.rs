//! A miniature ClassAd matchmaking language.
//!
//! The paper's related-work section grounds resource matching in Condor's
//! ClassAds: "jobs and resources declare their capabilities, constraints,
//! and preferences using ClassAds ... two ClassAds are matched against each
//! other", and "successful matching occurs when the available resource
//! capacity is equal to or greater than the job request". This crate
//! implements that substrate: a declarative attribute/expression language
//! with Condor's symmetric two-ad matchmaking semantics, plus a bridge
//! mapping this workspace's jobs and node capacities onto ads — so the
//! estimator's effect can be expressed the way a production matchmaker
//! would see it (the estimator rewrites the *job ad's* requested
//! attributes; the matchmaker is untouched, exactly the paper's Figure 2
//! separation).
//!
//! Supported language: integer/float/boolean/string literals, attribute
//! references (`Memory`), scoped references (`my.RequestedMemory`,
//! `other.Memory`), arithmetic (`+ - * /`), comparisons, `&&`/`||`/`!`,
//! and parentheses — with ClassAd-style three-valued logic (`undefined`
//! propagates, `&&`/`||` short-circuit around it).
//!
//! ```
//! use resmatch_classad::{ClassAd, matches};
//!
//! let mut machine = ClassAd::new();
//! machine.insert_int("Memory", 24 * 1024);
//! machine
//!     .insert_expr("Requirements", "other.RequestedMemory <= my.Memory")
//!     .unwrap();
//!
//! let mut job = ClassAd::new();
//! job.insert_int("RequestedMemory", 16 * 1024);
//! job.insert_expr("Requirements", "other.Memory >= my.RequestedMemory")
//!     .unwrap();
//!
//! assert!(matches(&job, &machine).unwrap());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ad;
pub mod bridge;
pub mod compile;
pub mod eval;
pub mod lexer;
pub mod matchmaker;
pub mod parser;
pub mod value;

pub use ad::{matches, rank, ClassAd};
pub use compile::{compile, AdSchema, CompiledExpr};
pub use eval::EvalError;
pub use matchmaker::{Matchmaker, PoolAd};
pub use parser::{parse, ParseError};
pub use value::Value;
