//! Tokenizer for the expression language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal (quotes stripped).
    Str(String),
    /// Identifier or keyword (`true`/`false`/`undefined`/`error` are
    /// resolved by the parser).
    Ident(String),
    /// `.` (scope separator).
    Dot,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

/// Tokenize an expression string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' if !bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                tokens.push(Token::Dot);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "single '=' (use '==')".into(),
                    });
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "single '&' (use '&&')".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "single '|' (use '||')".into(),
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(LexError {
                        offset: i,
                        message: "unterminated string".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '.'
                    && bytes
                        .get(i + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || (bytes[i] == b'.' && !seen_dot))
                {
                    if bytes[i] == b'.' {
                        seen_dot = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if seen_dot {
                    let f: f64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("bad float {text:?}"),
                    })?;
                    tokens.push(Token::Float(f));
                } else {
                    let n: i64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("integer {text:?} out of range"),
                    })?;
                    tokens.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_and_literals() {
        let toks = lex("a.b >= 32 && x != 1.5 || !(y == \"hi\")").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Int(32),
                Token::AndAnd,
                Token::Ident("x".into()),
                Token::Ne,
                Token::Float(1.5),
                Token::OrOr,
                Token::Bang,
                Token::LParen,
                Token::Ident("y".into()),
                Token::EqEq,
                Token::Str("hi".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn leading_dot_float() {
        assert_eq!(lex(".5").unwrap(), vec![Token::Float(0.5)]);
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(lex("  1\t+\n2 ").unwrap(), lex("1+2").unwrap());
    }

    #[test]
    fn error_reporting() {
        assert!(lex("a = b").unwrap_err().message.contains("=="));
        assert!(lex("a & b").unwrap_err().message.contains("&&"));
        assert!(lex("\"open").unwrap_err().message.contains("unterminated"));
        assert!(lex("a # b").unwrap_err().message.contains("unexpected"));
    }

    #[test]
    fn big_integer_overflow_reported() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn empty_input() {
        assert!(lex("").unwrap().is_empty());
    }
}
