//! Least-squares regression: simple (one predictor) and multivariate.
//!
//! The paper uses simple linear regression twice in its analysis — the
//! log-linear fit over the Figure 1 histogram (R² = 0.69) and the fit between
//! benefiting-job node counts and utilization improvement in Figure 8
//! (R² = 0.991) — and proposes multivariate regression as the estimator for
//! the explicit-feedback / no-similarity quadrant of Table 1. The
//! [`LeastSquares`] solver implements that estimator's training step.

/// Result of fitting `y = slope * x + intercept` by ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleLinearRegression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (clamped; see [`r_squared`]).
    pub r_squared: f64,
}

impl SimpleLinearRegression {
    /// Fit a line through `(xs[i], ys[i])`. Returns `None` when fewer than
    /// two points are given, the slices differ in length, or all `x` are
    /// identical (the slope is then undefined).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<Self> {
        if xs.len() != ys.len() || xs.len() < 2 {
            return None;
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let fit = SimpleLinearRegression {
            slope,
            intercept,
            r_squared: 0.0,
        };
        let r2 = r_squared(ys, &xs.iter().map(|&x| fit.predict(x)).collect::<Vec<_>>());
        Some(SimpleLinearRegression {
            r_squared: r2,
            ..fit
        })
    }

    /// Predict `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Coefficient of determination between observations `ys` and model
/// predictions `preds`, clamped to `[0, 1]`.
///
/// When the observations have zero variance the fit explains everything or
/// nothing; we return 1 if the predictions match exactly and 0 otherwise.
pub fn r_squared(ys: &[f64], preds: &[f64]) -> f64 {
    assert_eq!(ys.len(), preds.len(), "length mismatch");
    if ys.is_empty() {
        return 0.0;
    }
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = ys.iter().zip(preds).map(|(y, p)| (y - p) * (y - p)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
}

/// Multivariate ordinary least squares fitted by solving the normal
/// equations `(XᵀX + λI) β = Xᵀy` with partial-pivot Gaussian elimination.
///
/// A small ridge term `λ` (default 0) regularizes collinear designs, which
/// matters for workload features like requested-memory × node-count that are
/// frequently correlated.
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquares {
    /// Fitted coefficients, one per feature (plus intercept if requested at
    /// fit time — the caller appends the constant-1 feature).
    pub coefficients: Vec<f64>,
    /// R² of the fit on the training data.
    pub r_squared: f64,
}

impl LeastSquares {
    /// Fit `y ≈ X β` where `rows[i]` is the i-th feature vector. All rows
    /// must share a length equal to the number of features. Returns `None`
    /// when the system is empty, ragged, or singular beyond `ridge`'s help.
    pub fn fit(rows: &[Vec<f64>], ys: &[f64], ridge: f64) -> Option<Self> {
        let n = rows.len();
        if n == 0 || n != ys.len() {
            return None;
        }
        let k = rows[0].len();
        if k == 0 || rows.iter().any(|r| r.len() != k) {
            return None;
        }
        // Normal equations: A = XᵀX + λI (k×k), b = Xᵀy (k).
        let mut a = vec![vec![0.0f64; k]; k];
        let mut b = vec![0.0f64; k];
        for (row, &y) in rows.iter().zip(ys) {
            for i in 0..k {
                b[i] += row[i] * y;
                for j in 0..k {
                    a[i][j] += row[i] * row[j];
                }
            }
        }
        for (i, diag_row) in a.iter_mut().enumerate() {
            diag_row[i] += ridge;
        }
        let coefficients = solve_linear_system(&mut a, &mut b)?;
        let preds: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&coefficients).map(|(x, c)| x * c).sum())
            .collect();
        let r2 = r_squared(ys, &preds);
        Some(LeastSquares {
            coefficients,
            r_squared: r2,
        })
    }

    /// Predict for one feature vector.
    ///
    /// # Panics
    /// Panics if `features.len()` differs from the fitted coefficient count.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "feature count mismatch"
        );
        features
            .iter()
            .zip(&self.coefficients)
            .map(|(x, c)| x * c)
            .sum()
    }
}

/// Solve `A x = b` in place by Gaussian elimination with partial pivoting.
/// Returns `None` for singular systems.
fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot: the largest magnitude in this column at/below row `col`.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite pivots")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            // `row > col`, so the pivot row sits in the left half of the
            // split and the two borrows are disjoint.
            let (above, below) = a.split_at_mut(row);
            let pivot_row = &above[col][col..n];
            for (dst, &src) in below[0][col..n].iter_mut().zip(pivot_row) {
                *dst -= factor * src;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let fit = SimpleLinearRegression::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(SimpleLinearRegression::fit(&[1.0], &[1.0]).is_none());
        assert!(SimpleLinearRegression::fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(SimpleLinearRegression::fit(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn r_squared_bounds() {
        // Anti-correlated predictions: raw R² would be negative, we clamp to 0.
        let ys = [1.0, 2.0, 3.0];
        let bad = [3.0, 2.0, 1.0];
        assert_eq!(r_squared(&ys, &bad), 0.0);
        assert_eq!(r_squared(&ys, &ys), 1.0);
    }

    #[test]
    fn r_squared_constant_observations() {
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn multivariate_recovers_planted_model() {
        // y = 2*x0 - 0.5*x1 + 4 (intercept as trailing constant feature).
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x0 = i as f64;
                let x1 = (i * i % 7) as f64;
                vec![x0, x1, 1.0]
            })
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 4.0).collect();
        let fit = LeastSquares::fit(&rows, &ys, 0.0).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[1] + 0.5).abs() < 1e-9);
        assert!((fit.coefficients[2] - 4.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn multivariate_rejects_singular_without_ridge() {
        // Two identical features: XᵀX singular.
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(LeastSquares::fit(&rows, &ys, 0.0).is_none());
        // Ridge rescues it.
        let fit = LeastSquares::fit(&rows, &ys, 1e-6).unwrap();
        let pred = fit.predict(&[2.0, 2.0]);
        assert!((pred - 2.0).abs() < 1e-3);
    }

    #[test]
    fn multivariate_rejects_ragged_rows() {
        let rows = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(LeastSquares::fit(&rows, &[1.0, 2.0], 0.0).is_none());
        assert!(LeastSquares::fit(&[], &[], 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_checks_arity() {
        let fit = LeastSquares {
            coefficients: vec![1.0, 2.0],
            r_squared: 1.0,
        };
        let _ = fit.predict(&[1.0]);
    }

    #[test]
    fn solver_handles_pivoting() {
        // First pivot is zero; partial pivoting must swap rows.
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![2.0, 3.0];
        let x = solve_linear_system(&mut a, &mut b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }
}
