//! Streaming statistics: Welford mean/variance and exponentially weighted
//! moving averages.
//!
//! The online estimators (reinforcement learning, recursive regression)
//! observe one job at a time, so they need numerically stable single-pass
//! summaries rather than batch recomputation.

use serde::{Deserialize, Serialize};

/// Welford's single-pass algorithm for mean and variance.
///
/// Numerically stable for long streams (no catastrophic cancellation of
/// `E[x²] - E[x]²`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 before any observation.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction), using
    /// the Chan et al. pairwise update.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`
/// in `(0, 1]`; larger `alpha` weights recent observations more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with the given smoothing factor.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Fold one observation in. The first observation seeds the average.
    pub fn update(&mut self, observation: f64) {
        self.value = Some(match self.value {
            None => observation,
            Some(v) => self.alpha * observation + (1.0 - self.alpha) * v,
        });
    }

    /// Current average, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &v in &data {
            w.update(v);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.update(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Welford::new();
        for &v in &data {
            seq.update(v);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &v in &data[..37] {
            left.update(v);
        }
        for &v in &data[37..] {
            right.update(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), seq.count());
        assert!((left.mean() - seq.mean()).abs() < 1e-9);
        assert!((left.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.update(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ewma_seeds_and_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.update(20.0);
        assert_eq!(e.value(), Some(15.0));
        e.update(20.0);
        assert_eq!(e.value(), Some(17.5));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_alpha_one_tracks_last() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(42.0);
        assert_eq!(e.value(), Some(42.0));
    }
}
