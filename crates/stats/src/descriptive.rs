//! Batch descriptive statistics: means, variances, percentiles, summaries.

/// A one-pass numeric summary of a sample.
///
/// Percentile queries require the data to be retained and sorted, so
/// [`Summary`] is built from a slice rather than streamed; for streaming use
/// [`crate::online::Welford`].
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean; 0 for an empty sample.
    pub mean: f64,
    /// Unbiased (n-1) sample variance; 0 for samples of size < 2.
    pub variance: f64,
    /// Smallest observation; +inf for an empty sample.
    pub min: f64,
    /// Largest observation; -inf for an empty sample.
    pub max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Summarize `data`. Non-finite values are ignored.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let count = sorted.len();
        let mean = if count == 0 {
            0.0
        } else {
            sorted.iter().sum::<f64>() / count as f64
        };
        let variance = if count < 2 {
            0.0
        } else {
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        };
        let min = sorted.first().copied().unwrap_or(f64::INFINITY);
        let max = sorted.last().copied().unwrap_or(f64::NEG_INFINITY);
        Summary {
            count,
            mean,
            variance,
            min,
            max,
            sorted,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Percentile in `[0, 100]` using linear interpolation between order
    /// statistics (the "linear" / type-7 method). Returns `None` for an
    /// empty sample or an out-of-range `p`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let n = self.sorted.len();
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let rank = p / 100.0 * (n as f64 - 1.0);
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Fraction of observations `>= threshold`. Returns 0 for an empty sample.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < threshold);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }
}

/// Arithmetic mean of a slice; 0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// Geometric mean of a slice of positive values; 0 if empty or any value is
/// non-positive. Used for bounded-slowdown aggregation, where the literature
/// prefers geometric means because slowdowns are ratio-scale.
pub fn geometric_mean(data: &[f64]) -> f64 {
    if data.is_empty() || data.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = data.iter().map(|v| v.ln()).sum();
    (log_sum / data.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.variance, 0.0);
        assert!(s.percentile(50.0).is_none());
        assert_eq!(s.fraction_at_least(1.0), 0.0);
    }

    #[test]
    fn single_element() {
        let s = Summary::from_slice(&[7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.percentile(0.0), Some(7.5));
        assert_eq!(s.percentile(100.0), Some(7.5));
    }

    #[test]
    fn known_mean_and_variance() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32; n-1 = 7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(4.0));
        assert!((s.median().unwrap() - 2.5).abs() < 1e-12);
        assert!((s.percentile(25.0).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        let s = Summary::from_slice(&[1.0, 2.0]);
        assert!(s.percentile(-1.0).is_none());
        assert!(s.percentile(100.1).is_none());
    }

    #[test]
    fn non_finite_values_ignored() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_least_counts_ties() {
        let s = Summary::from_slice(&[1.0, 2.0, 2.0, 3.0]);
        assert!((s.fraction_at_least(2.0) - 0.75).abs() < 1e-12);
        assert!((s.fraction_at_least(3.5) - 0.0).abs() < 1e-12);
        assert!((s.fraction_at_least(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
