//! Fixed-bin histograms over linear and logarithmic domains.
//!
//! Figure 1 of the paper is a histogram of requested/used memory ratios whose
//! horizontal axis spans two orders of magnitude, so [`LogHistogram`] bins by
//! powers of a configurable base. [`Histogram`] covers linear domains such as
//! group sizes (Figure 3).

/// A linear-bin histogram over `[lo, hi)` with equally wide bins.
///
/// Values below `lo` land in an underflow counter, values `>= hi` in an
/// overflow counter, so no observation is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Floating point can round up to the bin count at the very edge.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record every value in `values`.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Count in bin `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Midpoint of bin `idx`.
    pub fn bin_center(&self, idx: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (idx as f64 + 0.5)
    }

    /// `(center, count)` pairs for all bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_center(i), self.bins[i]))
    }

    /// Fraction of in-range observations in bin `idx` relative to the total.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[idx] as f64 / self.total as f64
        }
    }
}

/// A histogram whose bins are powers of `base` starting at `first`:
/// bin k covers `[first * base^k, first * base^(k+1))`.
///
/// This is the natural binning for the over-provisioning-ratio histogram of
/// Figure 1 (base 2, first bin at ratio 1).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    first: f64,
    base: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Create a log histogram of `bins` bins with the given `base`, the first
    /// bin starting at `first`.
    ///
    /// # Panics
    /// Panics if `bins == 0`, `base <= 1`, or `first <= 0`.
    pub fn new(first: f64, base: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(base > 1.0, "log base must exceed 1");
        assert!(
            first > 0.0 && first.is_finite(),
            "first edge must be positive"
        );
        LogHistogram {
            first,
            base,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        // NaN and anything below the first bucket both land in underflow.
        if value < self.first || value.is_nan() {
            self.underflow += 1;
            return;
        }
        let idx = (value / self.first).log(self.base).floor() as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Record every value in `values`.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Count in bin `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bin `idx`.
    pub fn bin_lower(&self, idx: usize) -> f64 {
        self.first * self.base.powi(idx as i32)
    }

    /// Geometric midpoint of bin `idx`.
    pub fn bin_center(&self, idx: usize) -> f64 {
        self.bin_lower(idx) * self.base.sqrt()
    }

    /// Fraction of observations in bin `idx` relative to the total.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[idx] as f64 / self.total as f64
        }
    }

    /// `(lower_edge, count)` pairs for all bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lower(i), self.bins[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_places_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.0, 1.9, 2.0, 9.99, 10.0, -0.1]);
        assert_eq!(h.count(0), 2); // 0.0 and 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(4), 1); // 9.99
        assert_eq!(h.overflow(), 1); // 10.0
        assert_eq!(h.underflow(), 1); // -0.1
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn linear_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn linear_edge_value_rounds_into_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        // A value just below hi must not index out of bounds.
        h.record(1.0 - 1e-16);
        assert_eq!(h.count(2) + h.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn log_binning_by_powers_of_two() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.record_all([1.0, 1.5, 2.0, 3.9, 4.0, 8.0, 100.0, 0.5]);
        assert_eq!(h.count(0), 2); // [1,2): 1.0, 1.5
        assert_eq!(h.count(1), 2); // [2,4): 2.0, 3.9
        assert_eq!(h.count(2), 1); // [4,8): 4.0
        assert_eq!(h.count(3), 1); // [8,16): 8.0
        assert_eq!(h.overflow(), 1); // 100
        assert_eq!(h.underflow(), 1); // 0.5
    }

    #[test]
    fn log_bin_edges() {
        let h = LogHistogram::new(1.0, 2.0, 8);
        assert!((h.bin_lower(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_lower(3) - 8.0).abs() < 1e-12);
        assert!((h.bin_center(0) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn log_nan_counts_as_underflow() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn fractions_sum_to_at_most_one() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        h.record_all([1.0, 2.0, 4.0, 50.0]);
        let in_range: f64 = (0..h.num_bins()).map(|i| h.fraction(i)).sum();
        assert!(in_range <= 1.0 + 1e-12);
        assert!((in_range - 0.75).abs() < 1e-12);
    }
}
