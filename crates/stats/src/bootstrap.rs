//! Percentile-bootstrap confidence intervals.
//!
//! Experiment binaries report single utilization/slowdown numbers per
//! configuration; the bootstrap quantifies how much trace-sampling noise
//! those numbers carry. The resampler uses an internal SplitMix64 stream so
//! this crate stays dependency-free and results stay deterministic per
//! seed.

use crate::descriptive::Summary;

/// Deterministic SplitMix64 — a tiny, well-mixed PRNG adequate for
/// resampling indices (not for cryptography).
#[derive(Debug, Clone, Copy)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`.
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A two-sided bootstrap confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The statistic on the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

/// Percentile-bootstrap CI for an arbitrary statistic of a sample.
///
/// Returns `None` for empty data, `resamples == 0`, or a `level` outside
/// `(0, 1)`.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() || resamples == 0 || !(0.0 < level && level < 1.0) {
        return None;
    }
    let point = statistic(data);
    let mut rng = SplitMix64::new(seed);
    let mut scratch = vec![0.0; data.len()];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = data[rng.index(data.len())];
        }
        stats.push(statistic(&scratch));
    }
    let summary = Summary::from_slice(&stats);
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        point,
        lower: summary.percentile(alpha * 100.0)?,
        upper: summary.percentile((1.0 - alpha) * 100.0)?,
        level,
    })
}

/// Bootstrap CI for the mean — the common case for slowdown and wait-time
/// reporting.
pub fn bootstrap_mean_ci(
    data: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(
        data,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..200).map(|i| ((i * 37) % 100) as f64).collect()
    }

    #[test]
    fn interval_brackets_the_point() {
        let ci = bootstrap_mean_ci(&sample(), 500, 0.95, 7).unwrap();
        assert!(ci.lower <= ci.point);
        assert!(ci.point <= ci.upper);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn interval_shrinks_with_confidence_level() {
        let data = sample();
        let wide = bootstrap_mean_ci(&data, 800, 0.99, 7).unwrap();
        let narrow = bootstrap_mean_ci(&data, 800, 0.80, 7).unwrap();
        assert!(narrow.upper - narrow.lower < wide.upper - wide.lower);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = sample();
        let a = bootstrap_mean_ci(&data, 300, 0.95, 1).unwrap();
        let b = bootstrap_mean_ci(&data, 300, 0.95, 1).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&data, 300, 0.95, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(bootstrap_mean_ci(&[], 100, 0.95, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.0, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.0, 1).is_none());
    }

    #[test]
    fn constant_sample_collapses() {
        let ci = bootstrap_mean_ci(&[5.0; 50], 200, 0.95, 3).unwrap();
        assert_eq!(ci.point, 5.0);
        assert_eq!(ci.lower, 5.0);
        assert_eq!(ci.upper, 5.0);
    }

    #[test]
    fn custom_statistic() {
        let data = sample();
        let ci = bootstrap_ci(
            &data,
            |s| Summary::from_slice(s).median().unwrap(),
            300,
            0.9,
            11,
        )
        .unwrap();
        assert!(ci.lower <= ci.point && ci.point <= ci.upper);
    }

    #[test]
    fn mean_ci_covers_true_mean_for_large_samples() {
        let data = sample();
        let true_mean = data.iter().sum::<f64>() / data.len() as f64;
        let ci = bootstrap_mean_ci(&data, 1_000, 0.99, 5).unwrap();
        assert!(ci.lower <= true_mean && true_mean <= ci.upper);
    }
}
