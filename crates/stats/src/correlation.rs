//! Correlation measures: Pearson's r and Spearman's rank correlation.
//!
//! Used by the experiment harness to quantify relationships the paper
//! asserts qualitatively — e.g. that utilization improvements under FCFS
//! "will be correlated" with those under backfilling (§3.1), and the
//! benefiting-node-count relationship behind Figure 8.

/// Pearson product-moment correlation in `[-1, 1]`. Returns `None` for
/// mismatched lengths, fewer than two points, or zero variance on either
/// axis.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        syy += (y - mean_y) * (y - mean_y);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Fractional ranks with ties sharing their average rank (the convention
/// Spearman's ρ requires).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Average rank over the tie run [i, j]; ranks are 1-based.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation in `[-1, 1]`: Pearson's r over the rank
/// transforms, robust to monotone nonlinearity. Same `None` conditions as
/// [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[2.0, 2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn spearman_sees_monotone_nonlinearity() {
        // y = x^3 is nonlinear but perfectly monotone.
        let xs: Vec<f64> = (-5..=5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        let p = pearson(&xs, &ys).unwrap();
        let s = spearman(&xs, &ys).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p < 1.0);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn uncorrelated_data_near_zero() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let ys: Vec<f64> = (0..40).map(|i| ((i + 13) as f64 * 1.3).cos()).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.5, "r = {r}");
    }
}
