//! Statistics substrate for the `resmatch` workspace.
//!
//! The paper's analysis and evaluation lean on a handful of statistical
//! tools: histograms over wide dynamic ranges (Figure 1 spans two orders of
//! magnitude of over-provisioning ratios, so its bins are logarithmic),
//! least-squares regression with the R² goodness-of-fit measure (the Figure 1
//! log-linear fit reports R² = 0.69 and the Figure 8 node-count fit reports
//! R² = 0.991), and running summaries used by the online estimators.
//!
//! Everything in this crate is dependency-light, deterministic, and
//! allocation-conscious so it can sit on the simulator's hot paths.
//!
//! # Quick example
//!
//! ```
//! use resmatch_stats::regression::SimpleLinearRegression;
//!
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! let ys = [2.1, 3.9, 6.2, 7.8];
//! let fit = SimpleLinearRegression::fit(&xs, &ys).unwrap();
//! assert!((fit.slope - 2.0).abs() < 0.2);
//! assert!(fit.r_squared > 0.99);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod empirical;
pub mod histogram;
pub mod ks;
pub mod online;
pub mod regression;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, ConfidenceInterval};
pub use correlation::{pearson, spearman};
pub use descriptive::Summary;
pub use empirical::EmpiricalDistribution;
pub use histogram::{Histogram, LogHistogram};
pub use ks::{ks_two_sample, KsResult};
pub use online::{Ewma, Welford};
pub use regression::{LeastSquares, SimpleLinearRegression};
