//! Two-sample Kolmogorov–Smirnov test.
//!
//! The calibration harness compares distributions the synthetic generator
//! produces (over-provisioning ratios, group sizes, runtimes) against
//! reference samples — KS distance is the standard scale-free measure for
//! that, and the asymptotic p-value flags drift.

/// Result of a two-sample KS comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// Supremum distance between the two empirical CDFs, in `[0, 1]`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution
    /// approximation); small values reject "same distribution".
    pub p_value: f64,
}

/// Two-sample KS test. Returns `None` when either sample is empty after
/// dropping non-finite values.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    let mut xs: Vec<f64> = a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut ys: Vec<f64> = b.iter().copied().filter(|v| v.is_finite()).collect();
    if xs.is_empty() || ys.is_empty() {
        return None;
    }
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("finite"));

    // Walk the merged order, tracking both ECDFs.
    let (n, m) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n && j < m {
        let x = xs[i].min(ys[j]);
        while i < n && xs[i] <= x {
            i += 1;
        }
        while j < m && ys[j] <= x {
            j += 1;
        }
        let diff = (i as f64 / n as f64 - j as f64 / m as f64).abs();
        d = d.max(diff);
    }

    // Asymptotic p-value: Q_KS(sqrt(en) * d) with the standard small-sample
    // correction (Press et al., Numerical Recipes).
    let en = (n as f64 * m as f64 / (n as f64 + m as f64)).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    Some(KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    })
}

/// Kolmogorov survival function `Q(λ) = 2 Σ (-1)^(k-1) exp(-2 k² λ²)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64 * scale).collect()
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = ramp(500, 1.0);
        let r = ks_two_sample(&a, &a).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = ramp(200, 1.0);
        let b: Vec<f64> = ramp(200, 1.0).iter().map(|v| v + 10.0).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn same_distribution_different_draws_passes() {
        // Two interleaved halves of one uniform grid.
        let a: Vec<f64> = (0..500).map(|i| (2 * i) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| (2 * i + 1) as f64).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic < 0.05, "D = {}", r.statistic);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn shifted_distribution_detected() {
        let a = ramp(1_000, 1.0);
        let b: Vec<f64> = ramp(1_000, 1.0).iter().map(|v| v * 1.5).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic > 0.2);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn empty_and_non_finite_inputs() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[f64::NAN], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[1.0]).is_some());
    }

    #[test]
    fn unequal_sample_sizes() {
        let a = ramp(1_000, 1.0);
        let b = ramp(37, 1.0);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic < 0.1);
        assert!(r.p_value > 0.2);
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.3) > 0.99);
        assert!(kolmogorov_q(2.0) < 0.001);
    }
}
