//! Parametric distributions for workload modeling.
//!
//! Workload-modeling literature (Feitelson's archive documentation, the
//! Lublin-Feitelson model) describes runtimes, inter-arrival gaps, and
//! sizes with a small family of distributions. Samplers take uniform
//! variates from a caller-supplied source so this crate stays free of RNG
//! dependencies and samples stay reproducible by construction.

use std::f64::consts::TAU;

/// A source of uniform variates in `[0, 1)`.
///
/// Blanket-implemented for closures; `resmatch-workload` adapts its seeded
/// RNG through this trait.
pub trait UniformSource {
    /// Next uniform variate in `[0, 1)`.
    fn uniform(&mut self) -> f64;
}

impl<F: FnMut() -> f64> UniformSource for F {
    fn uniform(&mut self) -> f64 {
        self().clamp(0.0, 1.0 - f64::EPSILON)
    }
}

/// Standard normal via Box-Muller (one variate per call, two uniforms).
pub fn sample_standard_normal(src: &mut impl UniformSource) -> f64 {
    let u1 = src.uniform().max(1e-300);
    let u2 = src.uniform();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Exponential distribution with the given rate `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter.
    pub rate: f64,
}

impl Exponential {
    /// Construct; panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// Mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Inverse-transform sample.
    pub fn sample(&self, src: &mut impl UniformSource) -> f64 {
        -(1.0 - src.uniform()).ln() / self.rate
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal (> 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct; panics unless `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        LogNormal { mu, sigma }
    }

    /// Construct from a target median and multiplicative spread
    /// (`sigma` in log-space), the natural parameterization for runtimes.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Distribution mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Sample.
    pub fn sample(&self, src: &mut impl UniformSource) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(src)).exp()
    }
}

/// Weibull distribution with shape `k` and scale `λ` — heavy-tailed for
/// `k < 1`, the classic fit for parallel-job inter-arrival burstiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter (> 0).
    pub shape: f64,
    /// Scale parameter (> 0).
    pub scale: f64,
}

impl Weibull {
    /// Construct; panics unless both parameters are positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "parameters must be positive");
        Weibull { shape, scale }
    }

    /// Inverse-transform sample: `λ(-ln(1-u))^(1/k)`.
    pub fn sample(&self, src: &mut impl UniformSource) -> f64 {
        self.scale * (-(1.0 - src.uniform()).ln()).powf(1.0 / self.shape)
    }

    /// CDF at `x >= 0`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }
}

/// Gamma distribution (shape `k > 0`, scale `θ > 0`) via Marsaglia-Tsang
/// squeeze sampling (with the boost trick for `k < 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Shape parameter.
    pub shape: f64,
    /// Scale parameter.
    pub scale: f64,
}

impl Gamma {
    /// Construct; panics unless both parameters are positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "parameters must be positive");
        Gamma { shape, scale }
    }

    /// Mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Sample.
    pub fn sample(&self, src: &mut impl UniformSource) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
            let boosted = Gamma::new(self.shape + 1.0, self.scale).sample(src);
            let u = src.uniform().max(1e-300);
            return boosted * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = sample_standard_normal(src);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = src.uniform().max(1e-300);
            if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
                return d * v3 * self.scale;
            }
        }
    }
}

/// Truncated discrete Zipf over `1..=n` with exponent `s`, sampled by
/// precomputed inverse CDF — the shape of per-user activity and class-size
/// distributions in workload traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Construct; panics when `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s.is_finite(), "exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a value in `1..=n`.
    pub fn sample(&self, src: &mut impl UniformSource) -> usize {
        let u = src.uniform();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Probability mass at `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "k out of support");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform source for tests (SplitMix64-based).
    struct TestSource(u64);

    impl UniformSource for TestSource {
        fn uniform(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(0.25);
        let mut src = TestSource(1);
        let m = mean_of(50_000, || d.sample(&mut src));
        assert!((m - d.mean()).abs() / d.mean() < 0.03, "mean {m}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::from_median(600.0, 1.3);
        assert!((d.median() - 600.0).abs() < 1e-9);
        let mut src = TestSource(2);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut src)).collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = sorted[sorted.len() / 2];
        assert!((med - 600.0).abs() / 600.0 < 0.05, "median {med}");
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.10,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn weibull_cdf_matches_samples() {
        let d = Weibull::new(0.7, 100.0);
        let mut src = TestSource(3);
        let n = 40_000;
        let below: usize = (0..n).filter(|_| d.sample(&mut src) < 100.0).count();
        let expected = d.cdf(100.0);
        assert!(
            (below as f64 / n as f64 - expected).abs() < 0.02,
            "empirical {} vs cdf {expected}",
            below as f64 / n as f64
        );
        assert_eq!(d.cdf(0.0), 0.0);
        assert!(d.cdf(f64::INFINITY) <= 1.0);
    }

    #[test]
    fn gamma_mean_converges_for_large_and_small_shape() {
        for shape in [0.5, 2.5] {
            let d = Gamma::new(shape, 3.0);
            let mut src = TestSource(4);
            let m = mean_of(60_000, || d.sample(&mut src));
            assert!(
                (m - d.mean()).abs() / d.mean() < 0.05,
                "shape {shape}: mean {m} vs {}",
                d.mean()
            );
        }
    }

    #[test]
    fn gamma_samples_positive() {
        let d = Gamma::new(0.3, 1.0);
        let mut src = TestSource(5);
        for _ in 0..1_000 {
            assert!(d.sample(&mut src) >= 0.0);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(50, 1.4);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..50 {
            assert!(z.pmf(k) >= z.pmf(k + 1));
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut src = TestSource(6);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut src) - 1] += 1;
        }
        for k in 1..=10 {
            let emp = counts[k - 1] as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "k={k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut src = TestSource(7);
        let samples: Vec<f64> = (0..80_000)
            .map(|_| sample_standard_normal(&mut src))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_validates() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "parameters must be positive")]
    fn weibull_validates() {
        let _ = Weibull::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "k out of support")]
    fn zipf_pmf_bounds() {
        let _ = Zipf::new(5, 1.0).pmf(6);
    }
}
