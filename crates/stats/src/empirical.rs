//! Empirical distributions: ECDF queries and inverse-CDF sampling.
//!
//! The synthetic workload generator draws over-provisioning ratios, runtimes,
//! and inter-arrival gaps from piecewise distributions calibrated against the
//! statistics the paper reports about the LANL CM5 trace. An
//! [`EmpiricalDistribution`] turns any observed (or designed) sample into a
//! samplable distribution via inverse-transform on uniform variates supplied
//! by the caller, keeping this crate free of RNG dependencies.

/// An empirical distribution built from a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDistribution {
    sorted: Vec<f64>,
}

impl EmpiricalDistribution {
    /// Build from a sample; non-finite values are dropped. Returns `None`
    /// when no finite values remain.
    pub fn from_sample(values: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Some(EmpiricalDistribution { sorted })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty (never: construction forbids it), kept
    /// for API symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Empirical CDF: fraction of sample `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF with linear interpolation between order statistics.
    /// `u` must be in `[0, 1]`.
    ///
    /// # Panics
    /// Panics when `u` is outside `[0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "u must be in [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = u * (n as f64 - 1.0);
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// Sample by inverse transform from a uniform variate in `[0, 1)`.
    pub fn sample_with(&self, uniform: f64) -> f64 {
        self.quantile(uniform.clamp(0.0, 1.0))
    }

    /// Smallest sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_filters_non_finite() {
        let d = EmpiricalDistribution::from_sample(&[3.0, f64::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 3.0);
        assert!(EmpiricalDistribution::from_sample(&[f64::NAN]).is_none());
        assert!(EmpiricalDistribution::from_sample(&[]).is_none());
    }

    #[test]
    fn cdf_steps() {
        let d = EmpiricalDistribution::from_sample(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.25);
        assert_eq!(d.cdf(2.5), 0.5);
        assert_eq!(d.cdf(4.0), 1.0);
        assert_eq!(d.cdf(99.0), 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let d = EmpiricalDistribution::from_sample(&[0.0, 10.0]).unwrap();
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 10.0);
        assert!((d.quantile(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_point() {
        let d = EmpiricalDistribution::from_sample(&[7.0]).unwrap();
        assert_eq!(d.quantile(0.0), 7.0);
        assert_eq!(d.quantile(0.7), 7.0);
        assert_eq!(d.quantile(1.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "u must be in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let d = EmpiricalDistribution::from_sample(&[1.0]).unwrap();
        let _ = d.quantile(1.5);
    }

    #[test]
    fn sample_with_clamps() {
        let d = EmpiricalDistribution::from_sample(&[1.0, 2.0]).unwrap();
        assert_eq!(d.sample_with(-0.1), 1.0);
        assert_eq!(d.sample_with(2.0), 2.0);
    }

    #[test]
    fn quantile_round_trip_cdf() {
        let d = EmpiricalDistribution::from_sample(&[1.0, 2.0, 4.0, 8.0, 16.0]).unwrap();
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let x = d.quantile(u);
            assert!(x >= d.min() && x <= d.max());
        }
    }
}
