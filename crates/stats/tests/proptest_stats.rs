//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use resmatch_stats::descriptive::Summary;
use resmatch_stats::empirical::EmpiricalDistribution;
use resmatch_stats::histogram::{Histogram, LogHistogram};
use resmatch_stats::online::Welford;
use resmatch_stats::regression::{r_squared, LeastSquares, SimpleLinearRegression};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn welford_matches_batch(data in finite_vec(200)) {
        let mut w = Welford::new();
        for &v in &data {
            w.update(v);
        }
        let s = Summary::from_slice(&data);
        prop_assert_eq!(w.count() as usize, s.count);
        prop_assert!((w.mean() - s.mean).abs() < 1e-6 * (1.0 + s.mean.abs()));
        prop_assert!((w.variance() - s.variance).abs() < 1e-4 * (1.0 + s.variance));
    }

    #[test]
    fn welford_merge_equals_sequential(data in finite_vec(200), split in 0usize..200) {
        let split = split.min(data.len());
        let mut all = Welford::new();
        for &v in &data {
            all.update(v);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &v in &data[..split] {
            left.update(v);
        }
        for &v in &data[split..] {
            right.update(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!((left.variance() - all.variance()).abs() < 1e-4 * (1.0 + all.variance()));
    }

    #[test]
    fn histogram_conserves_observations(data in finite_vec(300)) {
        let mut h = Histogram::new(-1e5, 1e5, 16);
        h.record_all(data.iter().copied());
        let binned: u64 = (0..h.num_bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
    }

    #[test]
    fn log_histogram_conserves_observations(data in prop::collection::vec(1e-3f64..1e6, 1..300)) {
        let mut h = LogHistogram::new(1.0, 2.0, 12);
        h.record_all(data.iter().copied());
        let binned: u64 = (0..h.num_bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
    }

    #[test]
    fn percentiles_are_monotone(data in finite_vec(100)) {
        let s = Summary::from_slice(&data);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let q = s.percentile(p).unwrap();
            prop_assert!(q >= last);
            prop_assert!(q >= s.min && q <= s.max);
            last = q;
        }
    }

    #[test]
    fn r_squared_is_bounded(
        ys in finite_vec(100),
        noise in prop::collection::vec(-10.0f64..10.0, 100),
    ) {
        let preds: Vec<f64> = ys.iter().zip(&noise).map(|(y, n)| y + n).collect();
        let r2 = r_squared(&ys, &preds[..ys.len().min(preds.len())]);
        prop_assert!((0.0..=1.0).contains(&r2));
    }

    #[test]
    fn regression_recovers_planted_line(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..50,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = SimpleLinearRegression::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn least_squares_recovers_planted_plane(
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        c in -10.0f64..10.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let x = i as f64;
                let y = ((i * 7) % 13) as f64;
                vec![x, y, 1.0]
            })
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| a * r[0] + b * r[1] + c).collect();
        let fit = LeastSquares::fit(&rows, &ys, 0.0).unwrap();
        prop_assert!((fit.coefficients[0] - a).abs() < 1e-6);
        prop_assert!((fit.coefficients[1] - b).abs() < 1e-6);
        prop_assert!((fit.coefficients[2] - c).abs() < 1e-5);
    }

    #[test]
    fn empirical_quantiles_bounded_and_monotone(data in finite_vec(100)) {
        let d = EmpiricalDistribution::from_sample(&data).unwrap();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = d.quantile(i as f64 / 20.0);
            prop_assert!(q >= last - 1e-12);
            prop_assert!(q >= d.min() && q <= d.max());
            last = q;
        }
    }

    #[test]
    fn empirical_cdf_quantile_consistent(data in finite_vec(100), u in 0.0f64..1.0) {
        let d = EmpiricalDistribution::from_sample(&data).unwrap();
        let x = d.quantile(u);
        // At least a u-fraction of mass lies at or below the u-quantile
        // (up to interpolation granularity of one sample).
        let cdf = d.cdf(x);
        prop_assert!(cdf + 1.0 / d.len() as f64 >= u - 1e-9);
    }
}
