//! The estimator interface.
//!
//! The paper's Figure 2 places the estimator between job submission and
//! resource allocation: `estimate` maps a job (plus a little scheduler
//! context) to the demand the allocator should match, and `feedback` closes
//! the loop when the job terminates. The estimator is deliberately
//! independent of scheduling policy and allocation scheme — the same trait
//! object plugs into FCFS, backfilling, or SJF unchanged.

use resmatch_cluster::Demand;
use resmatch_workload::Job;

use crate::snapshot::{SnapshotError, SnapshotState};

/// Scheduler-side context available at estimation time. Similarity-based
/// estimators ignore it; the reinforcement-learning estimator conditions its
/// policy on it (the paper's §4: "the status of each node ... and the
/// requested resource capacities of the jobs in the queue").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateContext {
    /// Jobs currently waiting, *excluding* the job being estimated.
    ///
    /// Convention: whether the estimate happens at first admission (the job
    /// is not queued yet), at requeue after a failed execution (removed from
    /// `running`, not yet re-queued), or as an in-queue refresh just before
    /// allocation (the entry sits in the queue), the job itself never counts
    /// toward `queue_len`. A job therefore sees the same context either way,
    /// and `queue_len == 0` always means "nothing else is waiting".
    pub queue_len: usize,
    /// Fraction of cluster nodes currently free, in `[0, 1]`.
    pub free_fraction: f64,
}

impl Default for EstimateContext {
    fn default() -> Self {
        EstimateContext {
            queue_len: 0,
            free_fraction: 1.0,
        }
    }
}

/// Termination feedback for one job execution.
///
/// *Implicit* feedback is the bare success/failure bit every cluster
/// reports. *Explicit* feedback adds the actually used capacities, which
/// requires monitoring infrastructure but lets estimators distinguish
/// under-allocation from unrelated failures (the paper's false-positive
/// discussion in §2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Feedback {
    /// Only the termination status is known.
    Implicit {
        /// Did the job complete successfully?
        success: bool,
    },
    /// The termination status plus measured peak usage.
    Explicit {
        /// Did the job complete successfully?
        success: bool,
        /// Peak capacities the job actually consumed, per node.
        used: Demand,
    },
}

impl Feedback {
    /// Implicit success.
    pub fn success() -> Self {
        Feedback::Implicit { success: true }
    }

    /// Implicit failure.
    pub fn failure() -> Self {
        Feedback::Implicit { success: false }
    }

    /// Explicit feedback with measured usage.
    pub fn explicit(success: bool, used: Demand) -> Self {
        Feedback::Explicit { success, used }
    }

    /// The success bit, whichever variant.
    pub fn is_success(&self) -> bool {
        match *self {
            Feedback::Implicit { success } | Feedback::Explicit { success, .. } => success,
        }
    }

    /// Measured usage, when available.
    pub fn used(&self) -> Option<Demand> {
        match *self {
            Feedback::Explicit { used, .. } => Some(used),
            Feedback::Implicit { .. } => None,
        }
    }
}

/// How far one `feedback` call can reach into this estimator's future
/// `estimate` outputs — the invalidation contract a scheduler may rely on
/// to avoid re-estimating queued jobs whose estimates cannot have changed.
///
/// The scope is a *promise* about estimator internals:
///
/// - [`EstimateScope::Static`]: `estimate(job, ·)` is a pure function of
///   the job (and fixed configuration). Feedback never changes any
///   estimate. Queued entries only need refreshing when external structure
///   (cluster capacity) changes.
/// - [`EstimateScope::Group`]: the estimate depends only on learning state
///   private to the returned group key, `estimate` has no side effects
///   that alter future estimates, `estimate` ignores the scheduler context,
///   and `feedback(job, ..)` mutates only `job`'s own group. Feedback for
///   one group cannot move another group's estimate, so only same-group
///   entries need refreshing. Two jobs map to the same state if and only
///   if they return the same key.
/// - [`EstimateScope::Global`]: no promise — any feedback (or even an
///   `estimate` call itself, e.g. an exploring RL policy) may influence any
///   later estimate, or the estimate reads the scheduler context. Callers
///   must refresh on every feedback, exactly as if the scope API did not
///   exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimateScope {
    /// Estimates are pure in the job; feedback is inert.
    Static,
    /// Estimates depend only on the state of this (stable, collision-free
    /// per estimator) group key.
    Group(u64),
    /// Any feedback may change any estimate (the conservative default).
    Global,
}

/// A resource-requirement estimator (Figure 2's "Estimator" box).
///
/// Contract: `estimate` must never exceed the job's stated request on any
/// axis — the paper assumes requests always cover actual usage, so
/// estimation only ever *frees* capacity. All implementations in this crate
/// uphold this, and the simulator debug-asserts it.
pub trait ResourceEstimator: Send {
    /// Estimator name for reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Estimate the demand to allocate for `job`.
    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand;

    /// Learn from a terminated execution of `job` that was `granted` the
    /// given demand.
    fn feedback(&mut self, job: &Job, granted: &Demand, feedback: &Feedback, ctx: &EstimateContext);

    /// The invalidation scope of `job`'s estimate (see [`EstimateScope`]).
    ///
    /// Must be a pure function of the job: the simulator calls it at
    /// admission time and on every feedback to decide which queued entries
    /// to re-estimate. The default is [`EstimateScope::Global`], which is
    /// always correct (it reproduces refresh-on-every-feedback behaviour);
    /// override it only when the estimator genuinely upholds the stronger
    /// promise — a wrong `Static`/`Group` answer makes schedulers run stale
    /// estimates.
    fn estimate_scope(&self, job: &Job) -> EstimateScope {
        let _ = job;
        EstimateScope::Global
    }

    /// Export this estimator's durable learning state, or `None` when it
    /// keeps nothing worth persisting (stateless baselines) or does not
    /// implement snapshotting. See [`SnapshotState`] for the portability
    /// and versioning contract.
    fn snapshot_state(&self) -> Option<SnapshotState> {
        None
    }

    /// Replace this estimator's learning state with a previously exported
    /// snapshot. Restoring must be exact: after
    /// `b.restore_state(a.snapshot_state()...)`, `b` serves the same
    /// estimates `a` would.
    ///
    /// # Errors
    /// [`SnapshotError::Unsupported`] when the estimator does not snapshot
    /// (the default), [`SnapshotError::Mismatch`] when `state` belongs to a
    /// different estimator family.
    fn restore_state(&mut self, state: SnapshotState) -> Result<(), SnapshotError> {
        let _ = state;
        Err(SnapshotError::Unsupported {
            estimator: self.name(),
        })
    }
}

/// The demand a job's raw request corresponds to (no estimation). Jobs
/// from traces without disk records carry `requested_disk_kb == 0`, which
/// `Demand` already reads as "unconstrained" — so this stays equivalent to
/// the historical memory-and-packages demand for every such trace.
pub fn requested_demand(job: &Job) -> Demand {
    Demand {
        mem_kb: job.requested_mem_kb,
        disk_kb: job.requested_disk_kb,
        packages: job.requested_packages,
    }
}

/// The demand a job actually needs (oracle knowledge).
pub fn used_demand(job: &Job) -> Demand {
    Demand {
        mem_kb: job.used_mem_kb,
        disk_kb: job.used_disk_kb,
        packages: job.used_packages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    #[test]
    fn feedback_accessors() {
        assert!(Feedback::success().is_success());
        assert!(!Feedback::failure().is_success());
        assert_eq!(Feedback::success().used(), None);
        let fb = Feedback::explicit(true, Demand::memory(42));
        assert!(fb.is_success());
        assert_eq!(fb.used(), Some(Demand::memory(42)));
    }

    #[test]
    fn demand_extraction() {
        let job = JobBuilder::new(1)
            .requested_mem_kb(100)
            .used_mem_kb(30)
            .requested_packages(0b11)
            .used_packages(0b01)
            .build();
        assert_eq!(requested_demand(&job).mem_kb, 100);
        assert_eq!(requested_demand(&job).packages, 0b11);
        assert_eq!(used_demand(&job).mem_kb, 30);
        assert_eq!(used_demand(&job).packages, 0b01);
        assert!(used_demand(&job).within(&requested_demand(&job)));
    }

    #[test]
    fn default_context_is_idle() {
        let ctx = EstimateContext::default();
        assert_eq!(ctx.queue_len, 0);
        assert_eq!(ctx.free_fraction, 1.0);
    }
}
