//! Similarity keys and group tables.
//!
//! "Similar jobs are disjoint groups of job submissions that use similar
//! amounts of resource capacities" (§2.1). Since job IDs are rarely
//! available, groups are identified by a tuple of job-request parameters;
//! for the LANL CM5 the paper settles on (user ID, application number,
//! requested memory). There is no formal method to pick the parameter set —
//! it is a trial-and-error design choice — so [`SimilarityPolicy`] makes the
//! key configurable and [`GroupTable`] stores per-group learning state for
//! any policy.

use std::collections::HashMap;

use resmatch_workload::Job;
use serde::{Deserialize, Serialize};

/// Which job-request parameters make up the similarity key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimilarityPolicy {
    /// (user, application, requested memory) — the paper's CM5 key.
    #[default]
    UserAppRequest,
    /// (user, application) — coarser: one group per program per user.
    UserApp,
    /// (user) — coarsest: one group per user.
    User,
    /// (application, requested memory) — ignores the submitting user.
    AppRequest,
}

/// A concrete similarity-group key under some policy. Unused components are
/// `None` so keys from different policies never collide accidentally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimilarityKey {
    /// User component, if the policy includes it.
    pub user: Option<u32>,
    /// Application component, if the policy includes it.
    pub app: Option<u32>,
    /// Requested-memory component, if the policy includes it.
    pub requested_mem_kb: Option<u64>,
}

/// Manual `Hash`: the derived impl feeds each `Option` discriminant and
/// value to the hasher separately (~40 bytes through [`FnvHasher`]'s
/// byte-serial loop), and group-table lookups hash a key on every estimate
/// and every feedback. Packing the fields into 17 bytes — a presence mask
/// plus two words — keeps the injection (`None` never collides with
/// `Some(0)`; the mask disambiguates) while halving the per-lookup cost.
impl std::hash::Hash for SimilarityKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mask = (u8::from(self.user.is_some()) << 2)
            | (u8::from(self.app.is_some()) << 1)
            | u8::from(self.requested_mem_kb.is_some());
        state.write_u8(mask);
        state.write_u64(
            (u64::from(self.user.unwrap_or(0)) << 32) | u64::from(self.app.unwrap_or(0)),
        );
        state.write_u64(self.requested_mem_kb.unwrap_or(0));
    }
}

impl SimilarityKey {
    /// A stable 64-bit fingerprint of this key (FNV-1a over the fields).
    ///
    /// Used as the payload of `EstimateScope::Group`, so it must be
    /// deterministic across runs, platforms, and toolchain versions —
    /// `std`'s `DefaultHasher` makes no such promise, hence the hand-rolled
    /// hash. Each field is folded as a presence byte followed by the value,
    /// so `None` never collides with `Some(0)`.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let mut fold_opt_u64 = |v: Option<u64>| match v {
            Some(x) => {
                fold(&[1]);
                fold(&x.to_le_bytes());
            }
            None => fold(&[0]),
        };
        fold_opt_u64(self.user.map(u64::from));
        fold_opt_u64(self.app.map(u64::from));
        fold_opt_u64(self.requested_mem_kb);
        h
    }
}

/// FNV-1a [`std::hash::Hasher`]: seed-free and far cheaper than the
/// default SipHash for the small fixed-size keys hashed on the simulator's
/// hot path (similarity keys, group fingerprints). Only the *bucket
/// placement* changes versus the default hasher — key equality, and
/// therefore every lookup result, is untouched.
///
/// Not DoS-resistant; all keys here come from trusted trace data.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `HashMap`.
pub type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

impl SimilarityPolicy {
    /// Extract the key for `job`.
    pub fn key(&self, job: &Job) -> SimilarityKey {
        match self {
            SimilarityPolicy::UserAppRequest => SimilarityKey {
                user: Some(job.user),
                app: Some(job.app),
                requested_mem_kb: Some(job.requested_mem_kb),
            },
            SimilarityPolicy::UserApp => SimilarityKey {
                user: Some(job.user),
                app: Some(job.app),
                requested_mem_kb: None,
            },
            SimilarityPolicy::User => SimilarityKey {
                user: Some(job.user),
                app: None,
                requested_mem_kb: None,
            },
            SimilarityPolicy::AppRequest => SimilarityKey {
                user: None,
                app: Some(job.app),
                requested_mem_kb: Some(job.requested_mem_kb),
            },
        }
    }
}

/// Per-group learning state, keyed by [`SimilarityKey`].
///
/// The paper highlights that Algorithm 1 "is very memory space efficient: it
/// only saves two parameters per similarity group" — this table is the
/// realization of that registry.
#[derive(Debug, Clone, Default)]
pub struct GroupTable<T> {
    policy: SimilarityPolicy,
    groups: HashMap<SimilarityKey, T, FnvBuildHasher>,
}

impl<T> GroupTable<T> {
    /// Create a table under the given policy.
    pub fn new(policy: SimilarityPolicy) -> Self {
        GroupTable {
            policy,
            groups: HashMap::default(),
        }
    }

    /// The policy keys are extracted with.
    pub fn policy(&self) -> SimilarityPolicy {
        self.policy
    }

    /// Number of groups seen so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no group exists yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group state for `job`, if the group exists.
    pub fn get(&self, job: &Job) -> Option<&T> {
        self.groups.get(&self.policy.key(job))
    }

    /// Mutable group state for `job`, if the group exists.
    pub fn get_mut(&mut self, job: &Job) -> Option<&mut T> {
        self.groups.get_mut(&self.policy.key(job))
    }

    /// The group state for `job`, creating it with `init` on first sight
    /// (Algorithm 1 line 4: "Initialize a new group").
    pub fn get_or_insert_with(&mut self, job: &Job, init: impl FnOnce(&Job) -> T) -> &mut T {
        self.groups
            .entry(self.policy.key(job))
            .or_insert_with(|| init(job))
    }

    /// Iterate over `(key, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SimilarityKey, &T)> {
        self.groups.iter()
    }

    /// Insert state under an explicit key (state restoration after a
    /// scheduler restart). Replaces any existing entry.
    pub fn insert_key(&mut self, key: SimilarityKey, value: T) {
        self.groups.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    fn job(user: u32, app: u32, req: u64) -> Job {
        JobBuilder::new(1)
            .user(user)
            .app(app)
            .requested_mem_kb(req)
            .build()
    }

    #[test]
    fn paper_policy_distinguishes_all_three_fields() {
        let p = SimilarityPolicy::UserAppRequest;
        let base = p.key(&job(1, 2, 100));
        assert_eq!(base, p.key(&job(1, 2, 100)));
        assert_ne!(base, p.key(&job(9, 2, 100)));
        assert_ne!(base, p.key(&job(1, 9, 100)));
        assert_ne!(base, p.key(&job(1, 2, 999)));
    }

    #[test]
    fn coarser_policies_merge() {
        assert_eq!(
            SimilarityPolicy::UserApp.key(&job(1, 2, 100)),
            SimilarityPolicy::UserApp.key(&job(1, 2, 999))
        );
        assert_eq!(
            SimilarityPolicy::User.key(&job(1, 2, 100)),
            SimilarityPolicy::User.key(&job(1, 9, 999))
        );
        assert_eq!(
            SimilarityPolicy::AppRequest.key(&job(1, 2, 100)),
            SimilarityPolicy::AppRequest.key(&job(7, 2, 100))
        );
    }

    #[test]
    fn keys_from_different_policies_do_not_collide() {
        // UserApp leaves requested_mem None; UserAppRequest fills it.
        let a = SimilarityPolicy::UserApp.key(&job(1, 2, 100));
        let b = SimilarityPolicy::UserAppRequest.key(&job(1, 2, 100));
        assert_ne!(a, b);
    }

    #[test]
    fn table_creates_groups_lazily() {
        let mut t: GroupTable<u32> = GroupTable::new(SimilarityPolicy::UserAppRequest);
        assert!(t.is_empty());
        assert!(t.get(&job(1, 1, 100)).is_none());
        *t.get_or_insert_with(&job(1, 1, 100), |_| 0) += 5;
        *t.get_or_insert_with(&job(1, 1, 100), |_| 0) += 5;
        *t.get_or_insert_with(&job(2, 1, 100), |_| 100) += 1;
        assert_eq!(t.len(), 2);
        assert_eq!(*t.get(&job(1, 1, 100)).unwrap(), 10);
        assert_eq!(*t.get(&job(2, 1, 100)).unwrap(), 101);
    }

    #[test]
    fn stable_hash_is_injective_on_distinct_keys_and_fixed() {
        let keys = [
            SimilarityPolicy::UserAppRequest.key(&job(1, 2, 100)),
            SimilarityPolicy::UserAppRequest.key(&job(1, 2, 999)),
            SimilarityPolicy::UserApp.key(&job(1, 2, 100)),
            SimilarityPolicy::User.key(&job(1, 2, 100)),
            SimilarityPolicy::AppRequest.key(&job(1, 2, 100)),
            // None vs Some(0) on every field.
            SimilarityPolicy::UserAppRequest.key(&job(0, 0, 0)),
            SimilarityPolicy::UserApp.key(&job(0, 0, 0)),
            SimilarityPolicy::User.key(&job(0, 0, 0)),
            SimilarityPolicy::AppRequest.key(&job(0, 0, 0)),
        ];
        let mut hashes: Vec<u64> = keys.iter().map(|k| k.stable_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), keys.len(), "distinct keys must not collide");

        // The value is part of the golden-reproducibility surface: equal
        // keys hash equally in every run on every platform.
        assert_eq!(
            SimilarityPolicy::UserAppRequest
                .key(&job(1, 2, 100))
                .stable_hash(),
            SimilarityPolicy::UserAppRequest
                .key(&job(1, 2, 100))
                .stable_hash(),
        );
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut t: GroupTable<Vec<u32>> = GroupTable::new(SimilarityPolicy::User);
        t.get_or_insert_with(&job(1, 1, 100), |_| vec![]);
        t.get_mut(&job(1, 5, 7)).unwrap().push(3); // same user → same group
        assert_eq!(t.get(&job(1, 0, 0)).unwrap(), &[3]);
    }
}
