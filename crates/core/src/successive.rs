//! Algorithm 1: successive approximation with implicit feedback.
//!
//! Per similarity group the estimator keeps just two learning parameters —
//! the current estimate `Eᵢ` (initialized to the first job's request `R`)
//! and a learning rate `αᵢ` (initialized to the global `α`):
//!
//! - every submission is granted `E′ = ⌈Eᵢ⌉`, the estimate rounded up to the
//!   lowest cluster capacity that can hold it;
//! - success ⇒ `Eᵢ ← E′ / αᵢ` — probe lower next time;
//! - failure ⇒ restore `Eᵢ` to its previous (working) value and shrink the
//!   learning rate, `αᵢ ← max(1, β·αᵢ)`; at `αᵢ = 1` the estimate freezes.
//!
//! With the paper's settings `α = 2, β = 0` this produces exactly the
//! Figure 7 trajectory: 32 → 16 → 8 → (4 fails) → 8 frozen.
//!
//! Two notes on fidelity:
//!
//! - The pseudocode's success update divides the *rounded* `E′` by `αᵢ`
//!   (line 9), which fixed-points at `E′/α` when the ladder is coarse; the
//!   §2.3 prose narrates an unrounded descent instead. We implement the
//!   pseudocode — its conclusions (with α = 2 a 32→4 MB descent stalls at
//!   the 24 MB rung; α = 10 reaches the 4 MB machines) hold either way.
//! - The published algorithm assumes serial, in-order feedback. Under a real
//!   scheduler several group members are in flight at once, so updates are
//!   guarded to be monotone: a success never *raises* the estimate and a
//!   failure never lowers it.

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_workload::Job;
use serde::{Deserialize, Serialize};

use crate::similarity::{GroupTable, SimilarityKey, SimilarityPolicy};
use crate::snapshot::{SnapshotError, SnapshotState};
use crate::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};

/// Tunables of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessiveConfig {
    /// Initial learning rate `α > 1`: each success divides the estimate by
    /// this. Paper experiments use 2.
    pub alpha: f64,
    /// Learning-rate decay on failure, `0 <= β < 1`. Paper experiments use
    /// 0, freezing a group after its first failure.
    pub beta: f64,
    /// How similarity groups are keyed.
    pub policy: SimilarityPolicy,
}

impl Default for SuccessiveConfig {
    fn default() -> Self {
        SuccessiveConfig {
            alpha: 2.0,
            beta: 0.0,
            policy: SimilarityPolicy::UserAppRequest,
        }
    }
}

/// Public snapshot of a group's learning state (Figure 7's y-axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSnapshot {
    /// Current estimate `Eᵢ`, KB.
    pub estimate_kb: f64,
    /// Current learning rate `αᵢ`.
    pub alpha: f64,
    /// Successful executions fed back so far.
    pub successes: u64,
    /// Failed executions fed back so far.
    pub failures: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GroupState {
    /// `Eᵢ`.
    estimate: f64,
    /// `αᵢ`.
    alpha: f64,
    /// The last estimate known to work; failures restore to it.
    prev: f64,
    /// The group's initial request `R` — estimates never exceed it.
    request: f64,
    successes: u64,
    failures: u64,
}

/// A persisted group: key plus full learning state. The paper highlights
/// Algorithm 1's tiny per-group footprint ("only two parameters per
/// similarity group"); this is that footprint made durable, so a scheduler
/// restart does not forget months of learning.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PersistedGroup {
    /// Similarity key the state belongs to.
    pub key: SimilarityKey,
    /// Current estimate `Eᵢ`, KB.
    pub estimate_kb: f64,
    /// Learning rate `αᵢ`.
    pub alpha: f64,
    /// Restore point, KB.
    pub prev_kb: f64,
    /// Group request `R`, KB.
    pub request_kb: f64,
    /// Successful executions observed.
    pub successes: u64,
    /// Failed executions observed.
    pub failures: u64,
}

/// The Algorithm 1 estimator.
pub struct SuccessiveApproximation {
    cfg: SuccessiveConfig,
    ladder: CapacityLadder,
    groups: GroupTable<GroupState>,
    lowered_submissions: u64,
    total_submissions: u64,
}

impl SuccessiveApproximation {
    /// Create for a cluster described by `ladder`.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` and `0 <= beta < 1`.
    pub fn new(cfg: SuccessiveConfig, ladder: CapacityLadder) -> Self {
        assert!(cfg.alpha > 1.0, "alpha must exceed 1");
        assert!((0.0..1.0).contains(&cfg.beta), "beta must be in [0, 1)");
        let policy = cfg.policy;
        SuccessiveApproximation {
            cfg,
            ladder,
            groups: GroupTable::new(policy),
            lowered_submissions: 0,
            total_submissions: 0,
        }
    }

    /// `⌈x⌉`: lowest cluster capacity ≥ x, or x itself above the ladder.
    fn round_up(&self, x: f64) -> f64 {
        let as_kb = x.ceil().max(0.0) as u64;
        self.ladder.round_up(as_kb).map_or(x, |rung| rung as f64)
    }

    /// Number of similarity groups created so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Fraction of submissions estimated below the job request's own rung —
    /// the paper reports 15%–40% across cluster configurations.
    pub fn lowered_fraction(&self) -> f64 {
        if self.total_submissions == 0 {
            0.0
        } else {
            self.lowered_submissions as f64 / self.total_submissions as f64
        }
    }

    /// Seed the group `job` belongs to with an initial estimate (KB)
    /// *before* its first submission — the hook behind the paper's §4
    /// future-work item of initializing the learning parameters formally
    /// instead of starting from the raw request. The seed is clamped to the
    /// request; seeding an existing group is a no-op (learning state wins).
    /// Returns true when a new group was created.
    pub fn seed_group(&mut self, job: &Job, initial_estimate_kb: f64) -> bool {
        if self.groups.get(job).is_some() {
            return false;
        }
        let alpha = self.cfg.alpha;
        let request = job.requested_mem_kb as f64;
        let seed = initial_estimate_kb.clamp(0.0, request);
        self.groups.get_or_insert_with(job, |_| GroupState {
            estimate: seed,
            alpha,
            // The seed is a prior, not an observation: restores fall back
            // to the trusted request until a success confirms something
            // lower.
            prev: request,
            request,
            successes: 0,
            failures: 0,
        });
        true
    }

    /// Export every group's learning state, sorted by key for
    /// deterministic output. Serialize the result (it implements serde) to
    /// persist across scheduler restarts.
    pub fn export_state(&self) -> Vec<PersistedGroup> {
        let mut out: Vec<PersistedGroup> = self
            .groups
            .iter()
            .map(|(key, g)| PersistedGroup {
                key: *key,
                estimate_kb: g.estimate,
                alpha: g.alpha,
                prev_kb: g.prev,
                request_kb: g.request,
                successes: g.successes,
                failures: g.failures,
            })
            .collect();
        out.sort_by_key(|e| e.key);
        out
    }

    /// Restore previously exported learning state (replacing any existing
    /// entry for the same key). Entries must come from an estimator with
    /// the same similarity policy — keys from other policies simply never
    /// match any job.
    pub fn import_state(&mut self, entries: &[PersistedGroup]) {
        for e in entries {
            self.groups.insert_key(
                e.key,
                GroupState {
                    estimate: e.estimate_kb,
                    alpha: e.alpha.max(1.0),
                    prev: e.prev_kb,
                    request: e.request_kb,
                    successes: e.successes,
                    failures: e.failures,
                },
            );
        }
    }

    /// Snapshot of the group `job` belongs to, if it exists.
    pub fn group_snapshot(&self, job: &Job) -> Option<GroupSnapshot> {
        self.groups.get(job).map(|g| GroupSnapshot {
            estimate_kb: g.estimate,
            alpha: g.alpha,
            successes: g.successes,
            failures: g.failures,
        })
    }
}

impl ResourceEstimator for SuccessiveApproximation {
    fn name(&self) -> &'static str {
        "successive-approximation"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        let alpha = self.cfg.alpha;
        let group = self.groups.get_or_insert_with(job, |j| GroupState {
            estimate: j.requested_mem_kb as f64,
            alpha,
            prev: j.requested_mem_kb as f64,
            request: j.requested_mem_kb as f64,
            successes: 0,
            failures: 0,
        });
        let estimate = group.estimate;
        let request = job.requested_mem_kb as f64;
        let rounded = self.round_up(estimate);
        self.total_submissions += 1;
        if rounded < self.round_up(request) {
            self.lowered_submissions += 1;
        }
        // Matching against min(E', R) selects exactly the machines E' would
        // (no rung lies strictly between), while keeping the public
        // invariant that estimates never exceed the user request.
        let granted = rounded.min(request).max(0.0) as u64;
        Demand {
            mem_kb: granted,
            disk_kb: job.requested_disk_kb,
            packages: job.requested_packages,
        }
    }

    fn feedback(
        &mut self,
        job: &Job,
        granted: &Demand,
        feedback: &Feedback,
        _ctx: &EstimateContext,
    ) {
        // Recover E' from the granted demand: identical rounding as at
        // estimate time because the ladder is fixed.
        let e_prime = self.round_up(granted.mem_kb as f64);
        let Some(group) = self.groups.get_mut(job) else {
            // Feedback for a job never estimated (e.g. an engine bypass
            // before the first estimate) — nothing to learn from.
            return;
        };
        if feedback.is_success() {
            group.successes += 1;
            let proposal = e_prime / group.alpha;
            // Monotone guard: concurrent stale successes must not raise the
            // estimate, and the estimate never exceeds the group request.
            group.prev = group.prev.min(e_prime).min(group.request);
            group.estimate = group.estimate.min(proposal).min(group.request);
        } else {
            group.failures += 1;
            // Restore to the last working value (never lowering), and
            // refine the learning rate: αᵢ ← max(1, β·αᵢ).
            group.estimate = group.estimate.max(group.prev);
            group.alpha = (group.alpha * self.cfg.beta).max(1.0);
        }
    }

    fn estimate_scope(&self, job: &Job) -> EstimateScope {
        // Algorithm 1's state is entirely per-group, estimate ignores the
        // context, and feedback only touches the fed-back job's own group
        // (the submission counters updated in `estimate` feed reports, not
        // estimates), so feedback in one group cannot move another group's
        // estimate.
        EstimateScope::Group(self.groups.policy().key(job).stable_hash())
    }

    fn snapshot_state(&self) -> Option<SnapshotState> {
        Some(SnapshotState::SuccessiveV1 {
            groups: self.export_state(),
        })
    }

    fn restore_state(&mut self, state: SnapshotState) -> Result<(), SnapshotError> {
        match state {
            SnapshotState::SuccessiveV1 { groups } => {
                self.import_state(&groups);
                Ok(())
            }
            other => Err(SnapshotError::Mismatch {
                expected: "successive-v1",
                found: other.kind(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn job(req_mb: u64, used_mb: u64) -> Job {
        JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(req_mb * MB)
            .used_mem_kb(used_mb * MB)
            .build()
    }

    fn estimator(rungs: &[u64], alpha: f64, beta: f64) -> SuccessiveApproximation {
        SuccessiveApproximation::new(
            SuccessiveConfig {
                alpha,
                beta,
                policy: SimilarityPolicy::UserAppRequest,
            },
            CapacityLadder::new(rungs.iter().map(|&r| r * MB).collect()),
        )
    }

    /// Drive one estimate/feedback cycle; success iff granted memory covers
    /// the job's actual usage (the simulator's failure rule).
    fn cycle(est: &mut SuccessiveApproximation, j: &Job) -> (u64, bool) {
        let ctx = EstimateContext::default();
        let d = est.estimate(j, &ctx);
        // The machine granted is the rounded-up rung (or the raw demand when
        // above the ladder).
        let node_mem = est.round_up(d.mem_kb as f64) as u64;
        let success = j.used_mem_kb <= node_mem;
        est.feedback(
            j,
            &d,
            &if success {
                Feedback::success()
            } else {
                Feedback::failure()
            },
            &ctx,
        );
        (d.mem_kb, success)
    }

    #[test]
    fn figure7_trajectory() {
        // Requested 32 MB, actual slightly above 5 MB, rungs at every power
        // of two: estimates must walk 32 → 16 → 8, fail at 4, restore to 8
        // and freeze (α = 2, β = 0).
        let mut est = estimator(&[32, 24, 16, 8, 4], 2.0, 0.0);
        let j = job(32, 5); // uses slightly more than 5 MB? 5 MB exactly: fails below 8.
        let mut granted = Vec::new();
        for _ in 0..7 {
            let (g, _) = cycle(&mut est, &j);
            granted.push(g / MB);
        }
        assert_eq!(granted, vec![32, 16, 8, 4, 8, 8, 8]);
        let snap = est.group_snapshot(&j).unwrap();
        assert_eq!(snap.estimate_kb as u64 / MB, 8);
        assert_eq!(snap.alpha, 1.0);
        assert_eq!(snap.failures, 1);
        // A four-fold reduction in memory, as the paper reports.
    }

    #[test]
    fn section23_alpha2_stalls_above_small_machines() {
        // §2.3: machines of 32/24/4 MB, request 32, usage 4 MB, α = 2:
        // estimation reaches the 24 MB machines but never the 4 MB ones.
        let mut est = estimator(&[32, 24, 4], 2.0, 0.0);
        let j = job(32, 4);
        let mut minimum = u64::MAX;
        for _ in 0..10 {
            let (g, success) = cycle(&mut est, &j);
            assert!(success, "nothing below 24 MB is ever granted");
            minimum = minimum.min(est.round_up(g as f64) as u64);
        }
        assert_eq!(minimum / MB, 24);
    }

    #[test]
    fn section23_alpha10_reaches_small_machines() {
        // Same cluster, α = 10: 32 → 3.2 rounds up to the 4 MB machines.
        let mut est = estimator(&[32, 24, 4], 10.0, 0.0);
        let j = job(32, 4);
        let (g1, s1) = cycle(&mut est, &j);
        assert_eq!(g1 / MB, 32);
        assert!(s1);
        let (g2, s2) = cycle(&mut est, &j);
        assert_eq!(g2 / MB, 4);
        assert!(s2, "4 MB machines hold a 4 MB job");
    }

    #[test]
    fn section23_alpha10_overshoot_reverts_to_request() {
        // The paper's caveat: with usage 5 MB instead of 4, the α = 10 probe
        // at 4 MB fails and the estimate reverts to 32, not 24.
        let mut est = estimator(&[32, 24, 4], 10.0, 0.0);
        let j = job(32, 5);
        cycle(&mut est, &j); // 32, ok
        let (g2, s2) = cycle(&mut est, &j);
        assert_eq!(g2 / MB, 4);
        assert!(!s2);
        let (g3, s3) = cycle(&mut est, &j);
        assert_eq!(g3 / MB, 32);
        assert!(s3);
    }

    #[test]
    fn beta_enables_finer_refinement() {
        // β = 0.5, α = 4, rungs at every MB: after a failure the learning
        // rate halves and probing resumes more carefully.
        let rungs: Vec<u64> = (1..=32).collect();
        let mut est = SuccessiveApproximation::new(
            SuccessiveConfig {
                alpha: 4.0,
                beta: 0.5,
                policy: SimilarityPolicy::UserAppRequest,
            },
            CapacityLadder::new(rungs.iter().map(|&r| r * MB).collect()),
        );
        let j = job(32, 7);
        let mut history = Vec::new();
        for _ in 0..8 {
            let (g, s) = cycle(&mut est, &j);
            history.push((g / MB, s));
        }
        // 32 ok → 8 ok → 2 fail (α→2) → 8 ok → 4 fail (α→1) → 8 frozen.
        assert_eq!(
            history,
            vec![
                (32, true),
                (8, true),
                (2, false),
                (8, true),
                (4, false),
                (8, true),
                (8, true),
                (8, true),
            ]
        );
    }

    #[test]
    fn estimate_never_exceeds_request() {
        let mut est = estimator(&[32, 24, 8], 1.5, 0.5);
        let j = job(20, 6);
        let ctx = EstimateContext::default();
        for _ in 0..20 {
            let d = est.estimate(&j, &ctx);
            assert!(d.mem_kb <= j.requested_mem_kb);
            let node_mem = est.round_up(d.mem_kb as f64) as u64;
            let fb = if j.used_mem_kb <= node_mem {
                Feedback::success()
            } else {
                Feedback::failure()
            };
            est.feedback(&j, &d, &fb, &ctx);
        }
    }

    #[test]
    fn groups_learn_independently() {
        let mut est = estimator(&[32, 16, 8], 2.0, 0.0);
        let a = JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(4 * MB)
            .build();
        let b = JobBuilder::new(2)
            .user(2)
            .app(1)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(30 * MB)
            .build();
        cycle(&mut est, &a);
        cycle(&mut est, &a);
        // Group A has walked down; group B starts fresh at its request.
        let ctx = EstimateContext::default();
        let db = est.estimate(&b, &ctx);
        assert_eq!(db.mem_kb, 32 * MB);
        assert_eq!(est.group_count(), 2);
    }

    #[test]
    fn stale_success_cannot_raise_estimate() {
        let mut est = estimator(&[32, 16, 8, 4], 2.0, 0.0);
        let j = job(32, 4);
        let ctx = EstimateContext::default();
        // Walk the estimate down to 8.
        cycle(&mut est, &j);
        cycle(&mut est, &j);
        let before = est.group_snapshot(&j).unwrap().estimate_kb;
        assert!(before <= 8.0 * MB as f64);
        // A stale success for an old execution granted the full request.
        est.feedback(&j, &Demand::memory(32 * MB), &Feedback::success(), &ctx);
        let after = est.group_snapshot(&j).unwrap().estimate_kb;
        assert!(after <= before);
    }

    #[test]
    fn stale_failure_cannot_lower_estimate() {
        let mut est = estimator(&[32, 16, 8, 4], 2.0, 0.0);
        let j = job(32, 4);
        cycle(&mut est, &j); // estimate now 16
        let ctx = EstimateContext::default();
        let before = est.group_snapshot(&j).unwrap().estimate_kb;
        est.feedback(&j, &Demand::memory(4 * MB), &Feedback::failure(), &ctx);
        let after = est.group_snapshot(&j).unwrap().estimate_kb;
        assert!(after >= before);
    }

    #[test]
    fn feedback_without_estimate_is_ignored() {
        let mut est = estimator(&[32], 2.0, 0.0);
        let j = job(32, 4);
        let ctx = EstimateContext::default();
        est.feedback(&j, &Demand::memory(32 * MB), &Feedback::success(), &ctx);
        assert_eq!(est.group_count(), 0);
    }

    #[test]
    fn lowered_fraction_counts() {
        let mut est = estimator(&[32, 16], 2.0, 0.0);
        let j = job(32, 4);
        let ctx = EstimateContext::default();
        let d1 = est.estimate(&j, &ctx);
        est.feedback(&j, &d1, &Feedback::success(), &ctx);
        assert_eq!(est.lowered_fraction(), 0.0); // first was at the request rung
        let _ = est.estimate(&j, &ctx);
        assert_eq!(est.lowered_fraction(), 0.5); // second was lowered
    }

    #[test]
    fn estimate_above_ladder_passes_through() {
        // Request exceeds every machine: the estimator must not round away
        // the impossibility; the raw request is preserved.
        let mut est = estimator(&[16, 8], 2.0, 0.0);
        let j = job(32, 4);
        let ctx = EstimateContext::default();
        let d = est.estimate(&j, &ctx);
        assert_eq!(d.mem_kb, 32 * MB);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn rejects_alpha_at_most_one() {
        let _ = estimator(&[32], 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1)")]
    fn rejects_beta_of_one() {
        let _ = estimator(&[32], 2.0, 1.0);
    }

    #[test]
    fn state_round_trips_across_restart() {
        // Learn, export, restart, import: the new estimator must continue
        // exactly where the old one stopped.
        let mut before = estimator(&[32, 24, 16, 8, 4], 2.0, 0.0);
        let j = job(32, 5);
        for _ in 0..5 {
            cycle(&mut before, &j);
        }
        let state = before.export_state();
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].failures, 1);

        let mut after = estimator(&[32, 24, 16, 8, 4], 2.0, 0.0);
        after.import_state(&state);
        let ctx = EstimateContext::default();
        assert_eq!(
            after.estimate(&j, &ctx).mem_kb,
            before.estimate(&j, &ctx).mem_kb,
            "restored estimator must serve the learned estimate, not R"
        );
        assert_eq!(after.export_state(), state);
    }

    #[test]
    fn import_sanitizes_alpha_below_one() {
        let mut est = estimator(&[32, 16], 2.0, 0.0);
        let j = job(32, 4);
        cycle(&mut est, &j);
        let mut state = est.export_state();
        state[0].alpha = 0.5; // corrupted persistence
        let mut fresh = estimator(&[32, 16], 2.0, 0.0);
        fresh.import_state(&state);
        // alpha is floored at 1 so estimates can never grow via division.
        let ctx = EstimateContext::default();
        let d1 = fresh.estimate(&j, &ctx);
        fresh.feedback(&j, &d1, &Feedback::success(), &ctx);
        let d2 = fresh.estimate(&j, &ctx);
        assert!(d2.mem_kb <= d1.mem_kb);
    }

    #[test]
    fn exported_state_is_sorted_and_serializable() {
        let mut est = estimator(&[32, 16], 2.0, 0.0);
        for user in [3u32, 1, 2] {
            let j = JobBuilder::new(1)
                .user(user)
                .app(1)
                .requested_mem_kb(32 * MB)
                .used_mem_kb(4 * MB)
                .build();
            let ctx = EstimateContext::default();
            let d = est.estimate(&j, &ctx);
            est.feedback(&j, &d, &Feedback::success(), &ctx);
        }
        let state = est.export_state();
        assert_eq!(state.len(), 3);
        assert!(state.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn packages_pass_through_untouched() {
        let mut est = estimator(&[32], 2.0, 0.0);
        let j = JobBuilder::new(1)
            .requested_mem_kb(32 * MB)
            .requested_packages(0b101)
            .build();
        let d = est.estimate(&j, &EstimateContext::default());
        assert_eq!(d.packages, 0b101);
    }
}
