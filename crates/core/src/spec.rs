//! Declarative estimator selection.
//!
//! Experiments describe *which* estimator to run as data rather than code so
//! sweeps can clone configurations across threads and report tables can name
//! their rows. [`EstimatorSpec::build`] instantiates the estimator against a
//! concrete cluster's capacity ladder.

use std::fmt;
use std::str::FromStr;

use resmatch_cluster::CapacityLadder;

use crate::adaptive::{AdaptiveConfig, AdaptiveSimilarity};
use crate::baseline::{Oracle, PassThrough};
use crate::last_instance::{LastInstance, LastInstanceConfig};
use crate::multi::{MultiResourceConfig, MultiResourceEstimator};
use crate::per_resource::{PerResourceConfig, PerResourceEstimator};
use crate::quantile::{QuantileConfig, QuantileEstimator};
use crate::regression::{RegressionConfig, RegressionEstimator};
use crate::reinforcement::{ReinforcementConfig, ReinforcementEstimator};
use crate::robust::{RobustBisection, RobustConfig};
use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
use crate::traits::ResourceEstimator;
use crate::warm_start::{WarmStartConfig, WarmStartEstimator};

/// Every estimator the workspace provides, with its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorSpec {
    /// No estimation (the conventional scheduler).
    PassThrough,
    /// Perfect knowledge of actual usage.
    Oracle,
    /// Algorithm 1 (implicit feedback + similarity groups).
    Successive(SuccessiveConfig),
    /// Last-instance identification (explicit feedback + similarity).
    LastInstance(LastInstanceConfig),
    /// Linear regression on request features (explicit, no similarity).
    Regression(RegressionConfig),
    /// Contextual-bandit RL (implicit, no similarity).
    Reinforcement(ReinforcementConfig),
    /// Robust direct-search bisection (§2.3 extension).
    Robust(RobustConfig),
    /// Multi-resource coordinate descent (§2.3 extension).
    MultiResource(MultiResourceConfig),
    /// Per-resource successive approximation: memory via Algorithm 1,
    /// disk via a parallel ladder-free channel (§2.3, matchmaking mode).
    PerResource(PerResourceConfig),
    /// Quantile-of-window estimation (explicit feedback + similarity, with
    /// a risk dial).
    Quantile(QuantileConfig),
    /// Hierarchical online similarity refinement (§4 future work).
    Adaptive(AdaptiveConfig),
    /// Regression-seeded successive approximation (§4 future work). Built
    /// untrained; it arms its prior from explicit feedback online (run it
    /// under the simulator's explicit feedback mode).
    WarmStart(WarmStartConfig),
}

impl EstimatorSpec {
    /// Algorithm 1 with the paper's experimental settings (α = 2, β = 0).
    pub fn paper_successive() -> Self {
        EstimatorSpec::Successive(SuccessiveConfig::default())
    }

    /// Instantiate for a cluster with the given capacity ladder.
    pub fn build(&self, ladder: &CapacityLadder) -> Box<dyn ResourceEstimator> {
        match *self {
            EstimatorSpec::PassThrough => Box::new(PassThrough),
            EstimatorSpec::Oracle => Box::new(Oracle),
            EstimatorSpec::Successive(cfg) => {
                Box::new(SuccessiveApproximation::new(cfg, ladder.clone()))
            }
            EstimatorSpec::LastInstance(cfg) => Box::new(LastInstance::new(cfg)),
            EstimatorSpec::Regression(cfg) => Box::new(RegressionEstimator::new(cfg)),
            EstimatorSpec::Reinforcement(cfg) => Box::new(ReinforcementEstimator::new(cfg)),
            EstimatorSpec::Robust(cfg) => Box::new(RobustBisection::new(cfg)),
            EstimatorSpec::MultiResource(cfg) => {
                Box::new(MultiResourceEstimator::new(cfg, ladder.clone()))
            }
            EstimatorSpec::PerResource(cfg) => {
                Box::new(PerResourceEstimator::new(cfg, ladder.clone()))
            }
            EstimatorSpec::Quantile(cfg) => Box::new(QuantileEstimator::new(cfg)),
            EstimatorSpec::Adaptive(cfg) => Box::new(AdaptiveSimilarity::new(cfg, ladder.clone())),
            EstimatorSpec::WarmStart(cfg) => Box::new(WarmStartEstimator::new(cfg, ladder.clone())),
        }
    }

    /// Human-readable name matching the built estimator's `name()`.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorSpec::PassThrough => "pass-through",
            EstimatorSpec::Oracle => "oracle",
            EstimatorSpec::Successive(_) => "successive-approximation",
            EstimatorSpec::LastInstance(_) => "last-instance",
            EstimatorSpec::Regression(_) => "regression",
            EstimatorSpec::Reinforcement(_) => "reinforcement-learning",
            EstimatorSpec::Robust(_) => "robust-bisection",
            EstimatorSpec::MultiResource(_) => "multi-resource",
            EstimatorSpec::PerResource(_) => "per-resource",
            EstimatorSpec::Quantile(_) => "quantile",
            EstimatorSpec::Adaptive(_) => "adaptive-similarity",
            EstimatorSpec::WarmStart(_) => "warm-start-successive",
        }
    }

    /// Whether this estimator needs explicit (measured-usage) feedback to
    /// function as designed.
    pub fn wants_explicit_feedback(&self) -> bool {
        matches!(
            self,
            EstimatorSpec::LastInstance(_)
                | EstimatorSpec::Regression(_)
                | EstimatorSpec::WarmStart(_)
                | EstimatorSpec::Quantile(_)
        )
    }

    /// Canonical short names, in [`FromStr`] grammar order. `"none"` also
    /// parses as an alias for `"pass-through"`.
    pub const NAMES: &'static [&'static str] = &[
        "pass-through",
        "oracle",
        "successive",
        "last-instance",
        "regression",
        "reinforcement",
        "robust",
        "multi-resource",
        "per-resource",
        "quantile",
        "adaptive",
        "warm-start",
    ];

    /// The canonical short name this spec renders as (and parses from).
    pub fn short_name(&self) -> &'static str {
        match self {
            EstimatorSpec::PassThrough => "pass-through",
            EstimatorSpec::Oracle => "oracle",
            EstimatorSpec::Successive(_) => "successive",
            EstimatorSpec::LastInstance(_) => "last-instance",
            EstimatorSpec::Regression(_) => "regression",
            EstimatorSpec::Reinforcement(_) => "reinforcement",
            EstimatorSpec::Robust(_) => "robust",
            EstimatorSpec::MultiResource(_) => "multi-resource",
            EstimatorSpec::PerResource(_) => "per-resource",
            EstimatorSpec::Quantile(_) => "quantile",
            EstimatorSpec::Adaptive(_) => "adaptive",
            EstimatorSpec::WarmStart(_) => "warm-start",
        }
    }

    /// The successive-approximation (α, β) this spec carries, for the
    /// variants built on Algorithm 1.
    fn successive_params(&self) -> Option<(f64, f64)> {
        match self {
            EstimatorSpec::Successive(c) => Some((c.alpha, c.beta)),
            EstimatorSpec::MultiResource(c) => Some((c.memory.alpha, c.memory.beta)),
            EstimatorSpec::PerResource(c) => Some((c.memory.alpha, c.memory.beta)),
            EstimatorSpec::Adaptive(c) => Some((c.successive.alpha, c.successive.beta)),
            EstimatorSpec::WarmStart(c) => Some((c.successive.alpha, c.successive.beta)),
            _ => None,
        }
    }

    /// Override the successive-approximation α/β on the variants built on
    /// Algorithm 1 (successive, multi-resource, adaptive, warm-start);
    /// no-op for the rest.
    pub fn with_alpha_beta(self, alpha: f64, beta: f64) -> Self {
        match self {
            EstimatorSpec::Successive(mut c) => {
                c.alpha = alpha;
                c.beta = beta;
                EstimatorSpec::Successive(c)
            }
            EstimatorSpec::MultiResource(mut c) => {
                c.memory.alpha = alpha;
                c.memory.beta = beta;
                EstimatorSpec::MultiResource(c)
            }
            EstimatorSpec::PerResource(mut c) => {
                // The override speaks for both channels: a sweep over α/β
                // probes memory and disk at the same aggressiveness.
                c.memory.alpha = alpha;
                c.memory.beta = beta;
                c.disk_alpha = alpha;
                c.disk_beta = beta;
                EstimatorSpec::PerResource(c)
            }
            EstimatorSpec::Adaptive(mut c) => {
                c.successive.alpha = alpha;
                c.successive.beta = beta;
                EstimatorSpec::Adaptive(c)
            }
            EstimatorSpec::WarmStart(mut c) => {
                c.successive.alpha = alpha;
                c.successive.beta = beta;
                EstimatorSpec::WarmStart(c)
            }
            other => other,
        }
    }
}

/// Renders the [`FromStr`] grammar: the canonical short name, plus an
/// `:alpha,beta` suffix for the Algorithm-1 family when (α, β) differ
/// from [`SuccessiveConfig::default`]. Round-trips through [`FromStr`]
/// for any spec whose remaining configuration is default — the suffix is
/// the only non-default state the grammar can carry.
impl fmt::Display for EstimatorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.short_name();
        let default = SuccessiveConfig::default();
        match self.successive_params() {
            Some((alpha, beta)) if (alpha, beta) != (default.alpha, default.beta) => {
                write!(f, "{name}:{alpha},{beta}")
            }
            _ => write!(f, "{name}"),
        }
    }
}

/// Error from parsing an [`EstimatorSpec`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseEstimatorError {
    /// The name before any `:` matched no known estimator.
    UnknownName(String),
    /// The `:alpha[,beta]` suffix did not parse as finite floats.
    BadParams(String),
    /// A parameter suffix was given for an estimator outside the
    /// Algorithm-1 family.
    ParamsNotSupported(&'static str),
}

impl fmt::Display for ParseEstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEstimatorError::UnknownName(name) => write!(
                f,
                "unknown estimator {name:?}; expected one of {}",
                EstimatorSpec::NAMES.join(", ")
            ),
            ParseEstimatorError::BadParams(raw) => write!(
                f,
                "bad estimator parameters {raw:?}; expected \"alpha\" or \"alpha,beta\" \
                 as finite numbers"
            ),
            ParseEstimatorError::ParamsNotSupported(name) => {
                write!(f, "estimator {name} takes no alpha/beta parameters")
            }
        }
    }
}

impl std::error::Error for ParseEstimatorError {}

/// Grammar: `name[:alpha[,beta]]`, e.g. `successive`, `successive:4`,
/// `adaptive:2.5,0.1`. Names are the canonical short names in
/// [`EstimatorSpec::NAMES`] (plus `none` for `pass-through`); the
/// parameter suffix is only accepted by the Algorithm-1 family. All other
/// configuration stays at its default — the grammar is the CLI surface,
/// not a full serialization.
impl FromStr for EstimatorSpec {
    type Err = ParseEstimatorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n.trim(), Some(p.trim())),
            None => (s, None),
        };
        let default = SuccessiveConfig::default();
        let (alpha, beta) = match params {
            None => (default.alpha, default.beta),
            Some(raw) => {
                let bad = || ParseEstimatorError::BadParams(raw.to_string());
                let (a, b) = match raw.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<f64>().map_err(|_| bad())?,
                        b.trim().parse::<f64>().map_err(|_| bad())?,
                    ),
                    None => (raw.parse::<f64>().map_err(|_| bad())?, default.beta),
                };
                if !a.is_finite() || !b.is_finite() {
                    return Err(bad());
                }
                (a, b)
            }
        };
        let spec = match name {
            "pass-through" | "none" => EstimatorSpec::PassThrough,
            "oracle" => EstimatorSpec::Oracle,
            "successive" => EstimatorSpec::Successive(SuccessiveConfig::default()),
            "last-instance" => EstimatorSpec::LastInstance(LastInstanceConfig::default()),
            "regression" => EstimatorSpec::Regression(RegressionConfig::default()),
            "reinforcement" => EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
            "robust" => EstimatorSpec::Robust(RobustConfig::default()),
            "multi-resource" => EstimatorSpec::MultiResource(MultiResourceConfig::default()),
            "per-resource" => EstimatorSpec::PerResource(PerResourceConfig::default()),
            "quantile" => EstimatorSpec::Quantile(QuantileConfig::default()),
            "adaptive" => EstimatorSpec::Adaptive(AdaptiveConfig::default()),
            "warm-start" => EstimatorSpec::WarmStart(WarmStartConfig::default()),
            other => return Err(ParseEstimatorError::UnknownName(other.to_string())),
        };
        if params.is_some() && spec.successive_params().is_none() {
            return Err(ParseEstimatorError::ParamsNotSupported(spec.short_name()));
        }
        Ok(spec.with_alpha_beta(alpha, beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![32 * 1024, 24 * 1024])
    }

    #[test]
    fn every_spec_builds_and_names_consistently() {
        let specs = [
            EstimatorSpec::PassThrough,
            EstimatorSpec::Oracle,
            EstimatorSpec::paper_successive(),
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
            EstimatorSpec::Regression(RegressionConfig::default()),
            EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
            EstimatorSpec::Robust(RobustConfig::default()),
            EstimatorSpec::MultiResource(MultiResourceConfig::default()),
            EstimatorSpec::PerResource(PerResourceConfig::default()),
            EstimatorSpec::Quantile(QuantileConfig::default()),
            EstimatorSpec::Adaptive(AdaptiveConfig::default()),
            EstimatorSpec::WarmStart(WarmStartConfig::default()),
        ];
        for spec in specs {
            let built = spec.build(&ladder());
            assert_eq!(built.name(), spec.name());
        }
    }

    #[test]
    fn display_and_fromstr_round_trip_all_names() {
        for name in EstimatorSpec::NAMES {
            let spec: EstimatorSpec = name.parse().unwrap();
            assert_eq!(spec.short_name(), *name);
            assert_eq!(spec.to_string(), *name, "default specs omit the suffix");
            assert_eq!(spec.to_string().parse::<EstimatorSpec>().unwrap(), spec);
        }
        assert_eq!(
            "none".parse::<EstimatorSpec>().unwrap(),
            EstimatorSpec::PassThrough
        );
    }

    #[test]
    fn alpha_beta_suffix_round_trips() {
        let spec: EstimatorSpec = "successive:4,0.5".parse().unwrap();
        assert_eq!(
            spec,
            EstimatorSpec::paper_successive().with_alpha_beta(4.0, 0.5)
        );
        assert_eq!(spec.to_string(), "successive:4,0.5");
        assert_eq!(spec.to_string().parse::<EstimatorSpec>().unwrap(), spec);

        // Single parameter: beta stays default.
        let spec: EstimatorSpec = "adaptive:3".parse().unwrap();
        assert_eq!(spec.to_string(), "adaptive:3,0");

        // Whitespace tolerated.
        let spec: EstimatorSpec = " warm-start : 2.5 , 0.1 ".parse().unwrap();
        assert_eq!(spec.to_string(), "warm-start:2.5,0.1");
    }

    #[test]
    fn fromstr_rejects_bad_input() {
        assert!(matches!(
            "bogus".parse::<EstimatorSpec>(),
            Err(ParseEstimatorError::UnknownName(_))
        ));
        assert!(matches!(
            "successive:abc".parse::<EstimatorSpec>(),
            Err(ParseEstimatorError::BadParams(_))
        ));
        assert!(matches!(
            "successive:inf,0".parse::<EstimatorSpec>(),
            Err(ParseEstimatorError::BadParams(_))
        ));
        assert!(matches!(
            "oracle:2,0".parse::<EstimatorSpec>(),
            Err(ParseEstimatorError::ParamsNotSupported("oracle"))
        ));
        let msg = "bogus".parse::<EstimatorSpec>().unwrap_err().to_string();
        assert!(msg.contains("pass-through"), "{msg}");
    }

    #[test]
    fn explicit_feedback_flags() {
        assert!(
            EstimatorSpec::LastInstance(LastInstanceConfig::default()).wants_explicit_feedback()
        );
        assert!(EstimatorSpec::Regression(RegressionConfig::default()).wants_explicit_feedback());
        assert!(!EstimatorSpec::paper_successive().wants_explicit_feedback());
        assert!(!EstimatorSpec::PassThrough.wants_explicit_feedback());
    }
}
