//! Regression modeling: explicit feedback, no similarity groups.
//!
//! Table 1's explicit-feedback/no-similarity quadrant (§4): "regression
//! models (either linear or non-linear) can be used to learn a mapping from
//! the request file parameters to the actual resource capacities used". The
//! model here is linear least squares over request-file features (requested
//! memory, node count, requested runtime, and an intercept), trained either
//! offline on a historical trace ([`RegressionEstimator::fit_offline`]) or
//! online by periodic refits on accumulated explicit feedback.
//!
//! Because a linear fit can under-predict individual jobs, predictions are
//! inflated by a configurable safety factor and clamped into
//! `[floor, request]`. Until enough samples accumulate the estimator passes
//! the request through unchanged.

use resmatch_cluster::Demand;
use resmatch_stats::regression::LeastSquares;
use resmatch_workload::{Job, Workload};

use crate::traits::{EstimateContext, Feedback, ResourceEstimator};

/// Tunables for [`RegressionEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionConfig {
    /// Minimum observations before the model is trusted.
    pub min_samples: usize,
    /// Refit cadence: every this many new observations.
    pub refit_interval: usize,
    /// Multiplier on predictions (>= 1) absorbing residual error.
    pub safety_factor: f64,
    /// Lower clamp on estimates, KB.
    pub floor_kb: u64,
    /// Ridge regularization passed to the solver.
    pub ridge: f64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        RegressionConfig {
            min_samples: 50,
            refit_interval: 200,
            safety_factor: 1.25,
            floor_kb: 64,
            ridge: 1e-6,
        }
    }
}

/// The regression estimator.
pub struct RegressionEstimator {
    cfg: RegressionConfig,
    model: Option<LeastSquares>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
    since_refit: usize,
}

fn features(job: &Job) -> Vec<f64> {
    vec![
        job.requested_mem_kb as f64,
        job.nodes as f64,
        job.requested_runtime.as_secs_f64(),
        1.0,
    ]
}

impl RegressionEstimator {
    /// Create an untrained estimator.
    ///
    /// # Panics
    /// Panics when `safety_factor < 1` or `min_samples == 0`.
    pub fn new(cfg: RegressionConfig) -> Self {
        assert!(cfg.safety_factor >= 1.0, "safety factor must be at least 1");
        assert!(cfg.min_samples > 0, "min_samples must be positive");
        RegressionEstimator {
            cfg,
            model: None,
            rows: Vec::new(),
            targets: Vec::new(),
            since_refit: 0,
        }
    }

    /// Pre-train on a historical trace whose jobs carry recorded usage —
    /// the paper's offline customization phase.
    pub fn fit_offline(&mut self, history: &Workload) {
        for job in history.jobs() {
            if job.used_mem_kb > 0 {
                self.rows.push(features(job));
                self.targets.push(job.used_mem_kb as f64);
            }
        }
        self.refit();
    }

    /// Whether a model is currently fitted.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Training R² of the current model, if any.
    pub fn training_r_squared(&self) -> Option<f64> {
        self.model.as_ref().map(|m| m.r_squared)
    }

    /// Number of accumulated training observations.
    pub fn samples(&self) -> usize {
        self.targets.len()
    }

    fn refit(&mut self) {
        self.since_refit = 0;
        if self.targets.len() >= self.cfg.min_samples {
            self.model = LeastSquares::fit(&self.rows, &self.targets, self.cfg.ridge);
        }
    }
}

impl ResourceEstimator for RegressionEstimator {
    fn name(&self) -> &'static str {
        "regression"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        let request = job.requested_mem_kb;
        let mem_kb = match &self.model {
            None => request,
            Some(model) => {
                let pred = model.predict(&features(job)) * self.cfg.safety_factor;
                (pred.ceil().max(0.0) as u64).clamp(self.cfg.floor_kb.min(request), request)
            }
        };
        Demand {
            mem_kb,
            disk_kb: job.requested_disk_kb,
            packages: job.requested_packages,
        }
    }

    fn feedback(&mut self, job: &Job, _granted: &Demand, fb: &Feedback, _ctx: &EstimateContext) {
        // Only clean, explicitly measured runs are training data: a failed
        // run's peak is truncated by the allocation it was granted.
        if let Feedback::Explicit {
            success: true,
            used,
        } = fb
        {
            if used.mem_kb > 0 {
                self.rows.push(features(job));
                self.targets.push(used.mem_kb as f64);
                self.since_refit += 1;
                if self.since_refit >= self.cfg.refit_interval
                    || (self.model.is_none() && self.targets.len() >= self.cfg.min_samples)
                {
                    self.refit();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;
    use resmatch_workload::Time;

    /// A synthetic population where usage = 25% of the request.
    fn quarter_usage_history(n: u64) -> Workload {
        Workload::new(
            (0..n)
                .map(|i| {
                    let req = 8_192 + (i % 7) * 4_096;
                    JobBuilder::new(i)
                        .submit(Time::from_secs(i))
                        .requested_mem_kb(req)
                        .used_mem_kb(req / 4)
                        .nodes(32)
                        .build()
                })
                .collect(),
        )
    }

    #[test]
    fn untrained_passes_request_through() {
        let mut e = RegressionEstimator::new(RegressionConfig::default());
        let j = JobBuilder::new(1).requested_mem_kb(10_000).build();
        assert_eq!(e.estimate(&j, &EstimateContext::default()).mem_kb, 10_000);
        assert!(!e.is_trained());
    }

    #[test]
    fn offline_fit_learns_the_paper_example() {
        // §4's example: "if all users over-estimated by 100% ... divide each
        // requested resource capacity by 2"; here the factor is 4.
        let mut e = RegressionEstimator::new(RegressionConfig {
            safety_factor: 1.0,
            ..RegressionConfig::default()
        });
        e.fit_offline(&quarter_usage_history(200));
        assert!(e.is_trained());
        assert!(e.training_r_squared().unwrap() > 0.99);
        let j = JobBuilder::new(999)
            .requested_mem_kb(16_384)
            .nodes(32)
            .build();
        let d = e.estimate(&j, &EstimateContext::default());
        let expected = 16_384 / 4;
        assert!(
            (d.mem_kb as i64 - expected as i64).unsigned_abs() < 200,
            "predicted {} for expected {expected}",
            d.mem_kb
        );
    }

    #[test]
    fn online_learning_kicks_in_after_min_samples() {
        let cfg = RegressionConfig {
            min_samples: 30,
            refit_interval: 10,
            safety_factor: 1.0,
            ..RegressionConfig::default()
        };
        let mut e = RegressionEstimator::new(cfg);
        let ctx = EstimateContext::default();
        for i in 0..40u64 {
            let req = 8_192 + (i % 5) * 2_048;
            let j = JobBuilder::new(i).requested_mem_kb(req).nodes(16).build();
            let d = e.estimate(&j, &ctx);
            if i < 30 {
                assert_eq!(d.mem_kb, req, "untrained model must pass through");
            }
            e.feedback(
                &j,
                &d,
                &Feedback::explicit(true, Demand::memory(req / 2)),
                &ctx,
            );
        }
        assert!(e.is_trained());
        let j = JobBuilder::new(99)
            .requested_mem_kb(10_240)
            .nodes(16)
            .build();
        let d = e.estimate(&j, &ctx);
        assert!(
            (d.mem_kb as i64 - 5_120).unsigned_abs() < 200,
            "{}",
            d.mem_kb
        );
    }

    #[test]
    fn predictions_clamped_to_request_and_floor() {
        let mut e = RegressionEstimator::new(RegressionConfig {
            safety_factor: 1.0,
            floor_kb: 1_000,
            ..RegressionConfig::default()
        });
        e.fit_offline(&quarter_usage_history(100));
        // Tiny request: prediction would go below the floor.
        let j = JobBuilder::new(1).requested_mem_kb(2_000).nodes(32).build();
        let d = e.estimate(&j, &EstimateContext::default());
        assert!(d.mem_kb >= 1_000);
        assert!(d.mem_kb <= 2_000);
    }

    #[test]
    fn failed_runs_are_not_training_data() {
        let mut e = RegressionEstimator::new(RegressionConfig {
            min_samples: 1,
            refit_interval: 1,
            ..RegressionConfig::default()
        });
        let ctx = EstimateContext::default();
        let j = JobBuilder::new(1).requested_mem_kb(8_192).build();
        let d = e.estimate(&j, &ctx);
        e.feedback(
            &j,
            &d,
            &Feedback::explicit(false, Demand::memory(100)),
            &ctx,
        );
        e.feedback(&j, &d, &Feedback::failure(), &ctx);
        assert_eq!(e.samples(), 0);
        assert!(!e.is_trained());
    }

    #[test]
    fn safety_factor_inflates() {
        let mut plain = RegressionEstimator::new(RegressionConfig {
            safety_factor: 1.0,
            ..RegressionConfig::default()
        });
        let mut padded = RegressionEstimator::new(RegressionConfig {
            safety_factor: 1.5,
            ..RegressionConfig::default()
        });
        let h = quarter_usage_history(100);
        plain.fit_offline(&h);
        padded.fit_offline(&h);
        let j = JobBuilder::new(1)
            .requested_mem_kb(16_384)
            .nodes(32)
            .build();
        let ctx = EstimateContext::default();
        let a = plain.estimate(&j, &ctx).mem_kb;
        let b = padded.estimate(&j, &ctx).mem_kb;
        assert!(b > a);
        assert!((b as f64 / a as f64 - 1.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "safety factor must be at least 1")]
    fn rejects_deflating_safety_factor() {
        let _ = RegressionEstimator::new(RegressionConfig {
            safety_factor: 0.5,
            ..RegressionConfig::default()
        });
    }
}
