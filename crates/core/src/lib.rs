//! Estimation of actual job requirements — the paper's primary contribution.
//!
//! Users over-provision: they request resource capacities (memory, disk,
//! software prerequisites) well beyond what their jobs use, and every
//! conventional matcher honours the request, so capable machines idle while
//! jobs queue. This crate provides estimators that sit *between* submission
//! and resource allocation (the paper's Figure 2): given a job, they produce
//! a — usually smaller — demand for the allocator to match, and learn from
//! per-job feedback.
//!
//! The paper's Table 1 organizes the estimator design space by feedback type
//! and whether similar jobs can be identified; this crate implements all
//! four quadrants plus reference baselines:
//!
//! | | Implicit feedback | Explicit feedback |
//! |---|---|---|
//! | **Similar jobs** | [`successive::SuccessiveApproximation`] (Algorithm 1) | [`last_instance::LastInstance`] |
//! | **No similarity** | [`reinforcement::ReinforcementEstimator`] | [`regression::RegressionEstimator`] |
//!
//! Baselines: [`baseline::PassThrough`] (no estimation — what every
//! conventional scheduler does) and [`baseline::Oracle`] (perfect knowledge
//! of actual usage — the upper bound). Extensions the paper sketches:
//! [`robust::RobustBisection`] (direct-search refinement for heterogeneous
//! groups, §2.3) and [`multi::MultiResourceEstimator`] (coordinate-wise
//! multi-resource estimation, §2.3).
//!
//! # Quick example
//!
//! ```
//! use resmatch_core::prelude::*;
//! use resmatch_cluster::{CapacityLadder, Demand};
//! use resmatch_workload::job::JobBuilder;
//!
//! let ladder = CapacityLadder::new(vec![4 * 1024, 24 * 1024, 32 * 1024]);
//! let mut est = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder);
//!
//! let job = JobBuilder::new(1)
//!     .requested_mem_kb(32 * 1024)
//!     .used_mem_kb(5 * 1024)
//!     .build();
//! let ctx = EstimateContext::default();
//! let demand = est.estimate(&job, &ctx);
//! assert_eq!(demand.mem_kb, 32 * 1024); // first submission: trust the user
//! est.feedback(&job, &demand, &Feedback::success(), &ctx);
//! let second = est.estimate(&job, &ctx);
//! assert!(second.mem_kb < demand.mem_kb); // now it probes lower
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baseline;
pub mod last_instance;
pub mod multi;
pub mod per_resource;
pub mod quantile;
pub mod regression;
pub mod reinforcement;
pub mod robust;
pub mod selector;
pub mod similarity;
pub mod snapshot;
pub mod spec;
pub mod successive;
pub mod traits;
pub mod warm_start;

/// Common imports for estimator users.
pub mod prelude {
    pub use crate::adaptive::{AdaptiveConfig, AdaptiveSimilarity};
    pub use crate::baseline::{Oracle, PassThrough};
    pub use crate::last_instance::{LastInstance, LastInstanceConfig};
    pub use crate::multi::{MultiResourceConfig, MultiResourceEstimator};
    pub use crate::per_resource::{PerResourceConfig, PerResourceEstimator};
    pub use crate::quantile::{QuantileConfig, QuantileEstimator};
    pub use crate::regression::{RegressionConfig, RegressionEstimator};
    pub use crate::reinforcement::{ReinforcementConfig, ReinforcementEstimator};
    pub use crate::robust::{RobustBisection, RobustConfig};
    pub use crate::selector::{EstimatorSelector, SelectorConfig};
    pub use crate::similarity::SimilarityPolicy;
    pub use crate::snapshot::{SnapshotError, SnapshotState};
    pub use crate::spec::{EstimatorSpec, ParseEstimatorError};
    pub use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
    pub use crate::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};
    pub use crate::warm_start::{WarmStartConfig, WarmStartEstimator};
}

pub use prelude::*;
