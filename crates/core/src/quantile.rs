//! Quantile-tracking estimation: explicit feedback + similarity groups with
//! a tunable risk dial.
//!
//! [`crate::last_instance::LastInstance`] serves the *maximum* of a recent
//! window — the zero-risk choice. When a group's usage has outliers (one
//! member occasionally spikes), reserving for the max wastes the very
//! capacity estimation exists to reclaim. This estimator serves a
//! configurable *quantile* of the observed usage instead: `q = 1.0`
//! reproduces max-of-window; `q = 0.9` accepts that roughly one execution
//! in ten retries in exchange for tighter packing. The paper's §2.3
//! observation that group heterogeneity degrades point estimates is what
//! motivates estimating the usage *distribution* rather than its last
//! value.

use std::collections::VecDeque;

use resmatch_cluster::Demand;
use resmatch_stats::Summary;
use resmatch_workload::Job;

use crate::similarity::{GroupTable, SimilarityPolicy};
use crate::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};

/// Tunables for [`QuantileEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileConfig {
    /// Usage quantile to reserve for, in `(0, 1]`; 1.0 = window maximum.
    pub quantile: f64,
    /// Observations retained per group.
    pub window: usize,
    /// Safety multiplier on the quantile (>= 1).
    pub margin: f64,
    /// Minimum observations before estimating below the request.
    pub min_observations: usize,
    /// Similarity keying.
    pub policy: SimilarityPolicy,
}

impl Default for QuantileConfig {
    fn default() -> Self {
        QuantileConfig {
            quantile: 1.0,
            window: 32,
            margin: 1.1,
            min_observations: 3,
            policy: SimilarityPolicy::UserAppRequest,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct GroupState {
    observed_kb: VecDeque<u64>,
}

/// The quantile estimator.
pub struct QuantileEstimator {
    cfg: QuantileConfig,
    groups: GroupTable<GroupState>,
}

impl QuantileEstimator {
    /// Create with the given configuration.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn new(cfg: QuantileConfig) -> Self {
        assert!(
            cfg.quantile > 0.0 && cfg.quantile <= 1.0,
            "quantile must be in (0, 1]"
        );
        assert!(cfg.window >= 1, "window must be at least 1");
        assert!(cfg.margin >= 1.0, "margin must be at least 1");
        assert!(cfg.min_observations >= 1, "need at least one observation");
        let policy = cfg.policy;
        QuantileEstimator {
            cfg,
            groups: GroupTable::new(policy),
        }
    }

    /// Number of groups observed.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl ResourceEstimator for QuantileEstimator {
    fn name(&self) -> &'static str {
        "quantile"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        let group = self
            .groups
            .get_or_insert_with(job, |_| GroupState::default());
        let request = job.requested_mem_kb;
        let mem_kb = if group.observed_kb.len() < self.cfg.min_observations {
            request
        } else {
            let values: Vec<f64> = group.observed_kb.iter().map(|&v| v as f64).collect();
            let summary = Summary::from_slice(&values);
            let q = summary
                .percentile(self.cfg.quantile * 100.0)
                .expect("invariant: the observation window was checked non-empty above");
            ((q * self.cfg.margin).ceil() as u64).clamp(64.min(request), request)
        };
        Demand {
            mem_kb,
            disk_kb: job.requested_disk_kb,
            packages: job.requested_packages,
        }
    }

    fn feedback(&mut self, job: &Job, granted: &Demand, fb: &Feedback, _ctx: &EstimateContext) {
        let window = self.cfg.window;
        let Some(group) = self.groups.get_mut(job) else {
            return;
        };
        match fb {
            Feedback::Explicit {
                success: true,
                used,
            } if used.mem_kb > 0 => {
                group.observed_kb.push_back(used.mem_kb);
            }
            Feedback::Explicit { success: false, .. } | Feedback::Implicit { success: false } => {
                // A failure means the true peak exceeded what the granted
                // nodes offered: record that lower bound so the quantile
                // climbs past it (conservative: one step above granted).
                group
                    .observed_kb
                    .push_back(granted.mem_kb.saturating_mul(2));
            }
            Feedback::Implicit { success: true } | Feedback::Explicit { .. } => {}
        }
        while group.observed_kb.len() > window {
            group.observed_kb.pop_front();
        }
    }

    fn estimate_scope(&self, job: &Job) -> EstimateScope {
        // The observation window is per group; feedback only appends to the
        // fed-back job's own window.
        EstimateScope::Group(self.groups.policy().key(job).stable_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn job(used_mb: u64) -> Job {
        JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(used_mb * MB)
            .build()
    }

    fn observe(est: &mut QuantileEstimator, used_mb: u64) {
        let ctx = EstimateContext::default();
        let j = job(used_mb);
        let d = est.estimate(&j, &ctx);
        est.feedback(
            &j,
            &d,
            &Feedback::explicit(true, Demand::memory(used_mb * MB)),
            &ctx,
        );
    }

    #[test]
    fn passes_request_until_enough_observations() {
        let mut e = QuantileEstimator::new(QuantileConfig::default());
        let ctx = EstimateContext::default();
        observe(&mut e, 4);
        observe(&mut e, 4);
        assert_eq!(e.estimate(&job(4), &ctx).mem_kb, 32 * MB);
        observe(&mut e, 4);
        assert!(e.estimate(&job(4), &ctx).mem_kb < 32 * MB);
    }

    #[test]
    fn max_quantile_covers_every_observation() {
        let mut e = QuantileEstimator::new(QuantileConfig::default());
        for used in [4, 9, 6, 5, 7] {
            observe(&mut e, used);
        }
        let d = e.estimate(&job(9), &EstimateContext::default());
        // q=1.0 with margin 1.1 over a max of 9 MB.
        assert!(d.mem_kb >= 9 * MB);
        assert!(d.mem_kb <= (10 * MB).max((9.0 * 1.1 * MB as f64).ceil() as u64));
    }

    #[test]
    fn lower_quantile_packs_tighter_than_max() {
        let make = |q: f64| {
            let mut e = QuantileEstimator::new(QuantileConfig {
                quantile: q,
                margin: 1.0,
                ..QuantileConfig::default()
            });
            // One outlier among many small observations.
            for used in [4, 4, 4, 4, 4, 4, 4, 4, 4, 30] {
                observe(&mut e, used);
            }
            e.estimate(&job(4), &EstimateContext::default()).mem_kb
        };
        let tight = make(0.8);
        let safe = make(1.0);
        assert!(tight < safe, "q=0.8 gives {tight}, q=1.0 gives {safe}");
        assert!(safe >= 30 * MB);
        assert!(tight <= 5 * MB);
    }

    #[test]
    fn failure_pushes_the_window_up() {
        let mut e = QuantileEstimator::new(QuantileConfig {
            min_observations: 1,
            margin: 1.0,
            ..QuantileConfig::default()
        });
        let ctx = EstimateContext::default();
        observe(&mut e, 4);
        let d = e.estimate(&job(20), &ctx);
        assert!(d.mem_kb < 20 * MB, "estimate trails the small history");
        // The 20 MB member fails on the small allocation.
        e.feedback(&job(20), &d, &Feedback::failure(), &ctx);
        let d2 = e.estimate(&job(20), &ctx);
        assert!(d2.mem_kb > d.mem_kb, "failure must raise the estimate");
    }

    #[test]
    fn estimates_respect_request() {
        let mut e = QuantileEstimator::new(QuantileConfig {
            margin: 10.0,
            min_observations: 1,
            ..QuantileConfig::default()
        });
        observe(&mut e, 30);
        let d = e.estimate(&job(30), &EstimateContext::default());
        assert_eq!(d.mem_kb, 32 * MB, "margin can never exceed the request");
    }

    #[test]
    fn window_evicts_old_observations() {
        let mut e = QuantileEstimator::new(QuantileConfig {
            window: 3,
            margin: 1.0,
            min_observations: 1,
            ..QuantileConfig::default()
        });
        observe(&mut e, 30);
        for _ in 0..3 {
            observe(&mut e, 4);
        }
        let d = e.estimate(&job(4), &EstimateContext::default());
        assert!(
            d.mem_kb <= 5 * MB,
            "the 30 MB observation must have aged out"
        );
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn rejects_zero_quantile() {
        let _ = QuantileEstimator::new(QuantileConfig {
            quantile: 0.0,
            ..QuantileConfig::default()
        });
    }
}
