//! Warm-started successive approximation — the §4 initialization
//! future-work item.
//!
//! Algorithm 1 initializes every new group's estimate at the user request
//! `R` and pays one probing step per halving to walk down from it; the
//! paper lists "more formal ways to initialize the learning algorithm's
//! parameters" as an open problem. This estimator initializes each new
//! group's `Eᵢ` from an offline regression prior instead: a linear model
//! trained on a historical trace (with recorded usage) predicts the group's
//! likely need, inflated by a configurable head-room factor, and the group
//! starts its successive-approximation walk from there.
//!
//! The prior is only a starting point — failures still restore to the
//! trusted request (the seed is never treated as a confirmed-safe level),
//! so a bad prior costs one extra failure, never a stuck group.

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_workload::{Job, Workload};

use crate::regression::{RegressionConfig, RegressionEstimator};
use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
use crate::traits::{EstimateContext, Feedback, ResourceEstimator};

/// Tunables for [`WarmStartEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStartConfig {
    /// Inner Algorithm 1 parameters.
    pub successive: SuccessiveConfig,
    /// Prior-model parameters.
    pub regression: RegressionConfig,
    /// Multiplier on the prior prediction (>= 1); absorbs model error so a
    /// slightly-low prior does not start the group under water.
    pub prior_headroom: f64,
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        WarmStartConfig {
            successive: SuccessiveConfig::default(),
            regression: RegressionConfig::default(),
            prior_headroom: 2.0,
        }
    }
}

/// Successive approximation with regression-seeded group initialization.
pub struct WarmStartEstimator {
    cfg: WarmStartConfig,
    inner: SuccessiveApproximation,
    prior: RegressionEstimator,
    seeded_groups: u64,
}

impl WarmStartEstimator {
    /// Create untrained (groups start at the request until the prior is
    /// fitted); call [`Self::fit_offline`] to arm the prior.
    ///
    /// # Panics
    /// Panics unless `prior_headroom >= 1`.
    pub fn new(cfg: WarmStartConfig, ladder: CapacityLadder) -> Self {
        assert!(cfg.prior_headroom >= 1.0, "headroom must be at least 1");
        WarmStartEstimator {
            inner: SuccessiveApproximation::new(cfg.successive, ladder),
            prior: RegressionEstimator::new(cfg.regression),
            cfg,
            seeded_groups: 0,
        }
    }

    /// Train the prior on a historical trace with recorded usage (the
    /// paper's offline customization phase).
    pub fn fit_offline(&mut self, history: &Workload) {
        self.prior.fit_offline(history);
    }

    /// Whether the prior model is armed.
    pub fn prior_trained(&self) -> bool {
        self.prior.is_trained()
    }

    /// Groups whose initial estimate came from the prior.
    pub fn seeded_groups(&self) -> u64 {
        self.seeded_groups
    }

    /// Access the inner Algorithm 1 estimator.
    pub fn inner(&self) -> &SuccessiveApproximation {
        &self.inner
    }
}

impl ResourceEstimator for WarmStartEstimator {
    fn name(&self) -> &'static str {
        "warm-start-successive"
    }

    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
        if self.prior.is_trained() && self.inner.group_snapshot(job).is_none() {
            let predicted = self.prior.estimate(job, ctx).mem_kb as f64;
            let seed = predicted * self.cfg.prior_headroom;
            if self.inner.seed_group(job, seed) {
                self.seeded_groups += 1;
            }
        }
        self.inner.estimate(job, ctx)
    }

    fn feedback(&mut self, job: &Job, granted: &Demand, fb: &Feedback, ctx: &EstimateContext) {
        self.inner.feedback(job, granted, fb, ctx);
        // Keep improving the prior whenever measured usage is available.
        self.prior.feedback(job, granted, fb, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;
    use resmatch_workload::Time;

    const MB: u64 = 1024;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB])
    }

    /// History where every job uses a quarter of its request.
    fn history(n: u64) -> Workload {
        Workload::new(
            (0..n)
                .map(|i| {
                    let req = 16 * MB + (i % 3) * 8 * MB;
                    JobBuilder::new(i)
                        .submit(Time::from_secs(i))
                        .nodes(32)
                        .requested_mem_kb(req)
                        .used_mem_kb(req / 4)
                        .build()
                })
                .collect(),
        )
    }

    fn job(id: u64) -> Job {
        JobBuilder::new(id)
            .user(9)
            .app(9)
            .nodes(32)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(7 * MB)
            .build()
    }

    #[test]
    fn untrained_behaves_like_plain_successive() {
        let mut warm = WarmStartEstimator::new(WarmStartConfig::default(), ladder());
        let mut plain = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder());
        let ctx = EstimateContext::default();
        assert!(!warm.prior_trained());
        assert_eq!(warm.estimate(&job(1), &ctx), plain.estimate(&job(1), &ctx));
        assert_eq!(warm.seeded_groups(), 0);
    }

    #[test]
    fn trained_prior_skips_the_walk() {
        let mut warm = WarmStartEstimator::new(WarmStartConfig::default(), ladder());
        warm.fit_offline(&history(200));
        assert!(warm.prior_trained());
        let ctx = EstimateContext::default();
        // Prior predicts ~8 MB (32/4); headroom 2 → seed ~16 MB: the very
        // first submission already probes below the request.
        let d = warm.estimate(&job(1), &ctx);
        assert!(
            d.mem_kb < 32 * MB,
            "first estimate {} should start below the request",
            d.mem_kb
        );
        assert!(d.mem_kb >= 7 * MB, "seed must still cover actual usage");
        assert_eq!(warm.seeded_groups(), 1);
    }

    #[test]
    fn bad_prior_recovers_via_restore_to_request() {
        // A prior that under-predicts: usage history says 1/4, but this
        // group uses 90% of its request. The seeded first attempt fails and
        // the restore must go to the *request*, not the bogus seed.
        let mut warm = WarmStartEstimator::new(
            WarmStartConfig {
                prior_headroom: 1.0,
                ..WarmStartConfig::default()
            },
            ladder(),
        );
        warm.fit_offline(&history(200));
        let hungry = JobBuilder::new(1)
            .user(3)
            .app(3)
            .nodes(32)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(30 * MB)
            .build();
        let ctx = EstimateContext::default();
        let d1 = warm.estimate(&hungry, &ctx);
        assert!(d1.mem_kb < 30 * MB, "seed under-predicts by construction");
        warm.feedback(&hungry, &d1, &Feedback::failure(), &ctx);
        let d2 = warm.estimate(&hungry, &ctx);
        assert_eq!(d2.mem_kb, 32 * MB, "restore must fall back to the request");
        warm.feedback(&hungry, &d2, &Feedback::success(), &ctx);
    }

    #[test]
    fn seed_never_exceeds_request() {
        let mut warm = WarmStartEstimator::new(
            WarmStartConfig {
                prior_headroom: 100.0,
                ..WarmStartConfig::default()
            },
            ladder(),
        );
        warm.fit_offline(&history(200));
        let ctx = EstimateContext::default();
        let d = warm.estimate(&job(1), &ctx);
        assert!(d.mem_kb <= 32 * MB);
    }

    #[test]
    fn seeding_happens_once_per_group() {
        let mut warm = WarmStartEstimator::new(WarmStartConfig::default(), ladder());
        warm.fit_offline(&history(200));
        let ctx = EstimateContext::default();
        for i in 0..5 {
            let _ = warm.estimate(&job(i), &ctx); // same (user, app, request)
        }
        assert_eq!(warm.seeded_groups(), 1);
    }

    #[test]
    fn explicit_feedback_keeps_training_the_prior() {
        let mut warm = WarmStartEstimator::new(
            WarmStartConfig {
                regression: RegressionConfig {
                    min_samples: 10,
                    refit_interval: 5,
                    ..RegressionConfig::default()
                },
                ..WarmStartConfig::default()
            },
            ladder(),
        );
        let ctx = EstimateContext::default();
        for i in 0..30u64 {
            let j = JobBuilder::new(i)
                .user(i as u32)
                .app(1)
                .nodes(16)
                .requested_mem_kb(16 * MB)
                .used_mem_kb(4 * MB)
                .build();
            let d = warm.estimate(&j, &ctx);
            warm.feedback(
                &j,
                &d,
                &Feedback::explicit(true, Demand::memory(4 * MB)),
                &ctx,
            );
        }
        assert!(
            warm.prior_trained(),
            "online explicit feedback must arm the prior"
        );
    }

    #[test]
    #[should_panic(expected = "headroom must be at least 1")]
    fn rejects_deflating_headroom() {
        let _ = WarmStartEstimator::new(
            WarmStartConfig {
                prior_headroom: 0.5,
                ..WarmStartConfig::default()
            },
            ladder(),
        );
    }
}
