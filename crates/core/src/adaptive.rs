//! Online identification of similarity groups — the §4 future-work item.
//!
//! The paper determines its similarity key (user, application, requested
//! memory) *offline*, by trial and error over a historical trace, and lists
//! online identification as an open problem. This estimator solves it by
//! hierarchical refinement: it starts keying groups at the coarsest level
//! (per user), which maximizes how quickly feedback accumulates, and
//! *splits* a user's grouping to a finer key — (user, app), then
//! (user, app, requested memory) — when failures reveal the coarse group to
//! be heterogeneous (members with very different actual needs confusing one
//! shared estimate).
//!
//! Each level is a full [`SuccessiveApproximation`] instance; a user's jobs
//! are always routed to the estimator of that user's current level, so
//! refinement never discards other users' learning. Feedback that arrives
//! after a split lands in the coarse estimator's table, where the monotone
//! guards make it harmless.

use std::collections::HashMap;

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_workload::Job;

use crate::similarity::FnvBuildHasher;

use crate::similarity::SimilarityPolicy;
use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
use crate::traits::{EstimateContext, Feedback, ResourceEstimator};

/// Tunables for [`AdaptiveSimilarity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Algorithm 1 parameters shared by every level.
    pub successive: SuccessiveConfig,
    /// *Unproductive* failures a user may accumulate at a level before
    /// their grouping is refined to the next finer key. A failure is
    /// unproductive when it throws the group's estimate all the way back to
    /// the user request — the group learned nothing, the signature of
    /// members with incompatible needs sharing one estimate. (Productive
    /// failures — Figure 7's probe overshoot that settles above actual
    /// usage — never trigger refinement.)
    pub split_after_failures: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            successive: SuccessiveConfig::default(),
            split_after_failures: 1,
        }
    }
}

/// Refinement levels, coarse to fine.
const LEVELS: [SimilarityPolicy; 3] = [
    SimilarityPolicy::User,
    SimilarityPolicy::UserApp,
    SimilarityPolicy::UserAppRequest,
];

/// The online-similarity estimator.
pub struct AdaptiveSimilarity {
    cfg: AdaptiveConfig,
    levels: Vec<SuccessiveApproximation>,
    /// Current refinement level and failure count at that level, per user.
    users: HashMap<u32, (usize, u64), FnvBuildHasher>,
}

impl AdaptiveSimilarity {
    /// Create for a cluster described by `ladder`.
    pub fn new(cfg: AdaptiveConfig, ladder: CapacityLadder) -> Self {
        let levels = LEVELS
            .iter()
            .map(|&policy| {
                SuccessiveApproximation::new(
                    SuccessiveConfig {
                        policy,
                        ..cfg.successive
                    },
                    ladder.clone(),
                )
            })
            .collect();
        AdaptiveSimilarity {
            cfg,
            levels,
            users: HashMap::default(),
        }
    }

    /// The refinement level a user currently keys at (0 = per-user,
    /// 2 = the paper's full key).
    pub fn user_level(&self, user: u32) -> usize {
        self.users.get(&user).map(|&(l, _)| l).unwrap_or(0)
    }

    /// How many users have been refined at least once.
    pub fn refined_users(&self) -> usize {
        self.users.values().filter(|&&(l, _)| l > 0).count()
    }
}

impl ResourceEstimator for AdaptiveSimilarity {
    fn name(&self) -> &'static str {
        "adaptive-similarity"
    }

    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
        let level = self.user_level(job.user);
        self.levels[level].estimate(job, ctx)
    }

    fn feedback(&mut self, job: &Job, granted: &Demand, fb: &Feedback, ctx: &EstimateContext) {
        let level = self.users.entry(job.user).or_insert((0, 0)).0;
        self.levels[level].feedback(job, granted, fb, ctx);
        if !fb.is_success() {
            // Unproductive failure: the restore landed back at the request,
            // so the group retains no learned reduction — evidence the key
            // is too coarse for this user's mix of jobs.
            let unproductive = self.levels[level]
                .group_snapshot(job)
                .map(|s| s.estimate_kb >= job.requested_mem_kb as f64 * 0.999)
                .unwrap_or(false);
            if unproductive {
                let entry = self
                    .users
                    .get_mut(&job.user)
                    .expect("invariant: the user's entry was inserted earlier in this call");
                entry.1 += 1;
                if entry.1 >= self.cfg.split_after_failures && entry.0 + 1 < LEVELS.len() {
                    entry.0 += 1;
                    entry.1 = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB, 2 * MB])
    }

    fn estimator() -> AdaptiveSimilarity {
        AdaptiveSimilarity::new(AdaptiveConfig::default(), ladder())
    }

    fn job(id: u64, user: u32, app: u32, used_mb: u64) -> Job {
        JobBuilder::new(id)
            .user(user)
            .app(app)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(used_mb * MB)
            .build()
    }

    /// Simulator-faithful cycle: success iff the ladder rung covering the
    /// demand also covers actual usage.
    fn cycle(est: &mut AdaptiveSimilarity, j: &Job) -> bool {
        let ctx = EstimateContext::default();
        let d = est.estimate(j, &ctx);
        let l = ladder();
        let node = l.round_up(d.mem_kb).unwrap_or(d.mem_kb);
        let ok = j.used_mem_kb <= node;
        est.feedback(
            j,
            &d,
            &if ok {
                Feedback::success()
            } else {
                Feedback::failure()
            },
            &ctx,
        );
        ok
    }

    #[test]
    fn homogeneous_user_stays_coarse() {
        // One user, one app, constant usage: the per-user group works and
        // no refinement happens.
        let mut est = estimator();
        for i in 0..20 {
            cycle(&mut est, &job(i, 1, 1, 5));
        }
        assert_eq!(est.user_level(1), 0);
        assert_eq!(est.refined_users(), 0);
    }

    #[test]
    fn heterogeneous_apps_force_refinement() {
        // One user running two very different apps: the shared per-user
        // estimate walks down for the light app and keeps starving the
        // heavy one → repeated failures → split to (user, app).
        let mut est = estimator();
        let mut failures = 0;
        for i in 0..40 {
            let j = if i % 2 == 0 {
                job(i, 1, 1, 2) // light app
            } else {
                job(i, 1, 2, 28) // heavy app
            };
            if !cycle(&mut est, &j) {
                failures += 1;
            }
        }
        assert!(
            est.user_level(1) >= 1,
            "user must refine after {failures} failures"
        );
        // After refinement the two apps learn independently: drive more
        // cycles and require both to succeed consistently at the end.
        let mut tail_failures = 0;
        for i in 100..140 {
            let j = if i % 2 == 0 {
                job(i, 1, 1, 2)
            } else {
                job(i, 1, 2, 28)
            };
            if !cycle(&mut est, &j) {
                tail_failures += 1;
            }
        }
        assert!(
            tail_failures <= 2,
            "refined groups must stop the failure churn, saw {tail_failures}"
        );
    }

    #[test]
    fn refinement_is_per_user() {
        let mut est = estimator();
        // User 1 is heterogeneous, user 2 is not.
        for i in 0..30 {
            let j = if i % 2 == 0 {
                job(i, 1, 1, 2)
            } else {
                job(i, 1, 2, 28)
            };
            cycle(&mut est, &j);
            cycle(&mut est, &job(1_000 + i, 2, 1, 5));
        }
        assert!(est.user_level(1) >= 1);
        assert_eq!(est.user_level(2), 0);
        assert_eq!(est.refined_users(), 1);
    }

    #[test]
    fn refinement_caps_at_full_key() {
        let mut est = AdaptiveSimilarity::new(
            AdaptiveConfig {
                split_after_failures: 1,
                ..AdaptiveConfig::default()
            },
            ladder(),
        );
        let ctx = EstimateContext::default();
        // Hammer failures directly; the level must stop at 2.
        for i in 0..10 {
            let j = job(i, 1, 1, 30);
            let d = est.estimate(&j, &ctx);
            est.feedback(&j, &d, &Feedback::failure(), &ctx);
        }
        assert_eq!(est.user_level(1), 2);
    }

    #[test]
    fn estimates_respect_request_at_every_level() {
        let mut est = AdaptiveSimilarity::new(
            AdaptiveConfig {
                split_after_failures: 1,
                ..AdaptiveConfig::default()
            },
            ladder(),
        );
        let ctx = EstimateContext::default();
        for i in 0..30 {
            let j = job(i, 1, (i % 3) as u32, (i % 30) + 1);
            let d = est.estimate(&j, &ctx);
            assert!(d.mem_kb <= j.requested_mem_kb);
            let ok = i % 4 != 0;
            est.feedback(
                &j,
                &d,
                &if ok {
                    Feedback::success()
                } else {
                    Feedback::failure()
                },
                &ctx,
            );
        }
    }
}
