//! Reference estimators bounding the design space.
//!
//! [`PassThrough`] is the status quo every conventional matcher implements:
//! allocate exactly what the user asked for. [`Oracle`] allocates exactly
//! what the job will use — unattainable in practice (it reads the trace's
//! recorded usage) but the upper bound any learning estimator can approach.

use resmatch_cluster::Demand;
use resmatch_workload::Job;

use crate::traits::{used_demand, EstimateContext, EstimateScope, Feedback, ResourceEstimator};

/// No estimation: the demand is the user request, verbatim.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThrough;

impl ResourceEstimator for PassThrough {
    fn name(&self) -> &'static str {
        "pass-through"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        crate::traits::requested_demand(job)
    }

    fn feedback(&mut self, _job: &Job, _granted: &Demand, _fb: &Feedback, _ctx: &EstimateContext) {}

    fn estimate_scope(&self, _job: &Job) -> EstimateScope {
        // The request is fixed at submission; no feedback can change it.
        EstimateScope::Static
    }
}

/// Perfect estimation: the demand is the job's actual usage.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl ResourceEstimator for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        used_demand(job)
    }

    fn feedback(&mut self, _job: &Job, _granted: &Demand, _fb: &Feedback, _ctx: &EstimateContext) {}

    fn estimate_scope(&self, _job: &Job) -> EstimateScope {
        // Recorded usage is a property of the trace, not of learning state.
        EstimateScope::Static
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    #[test]
    fn pass_through_echoes_request() {
        let mut e = PassThrough;
        let j = JobBuilder::new(1)
            .requested_mem_kb(100)
            .used_mem_kb(10)
            .requested_packages(0b11)
            .build();
        let d = e.estimate(&j, &EstimateContext::default());
        assert_eq!(d.mem_kb, 100);
        assert_eq!(d.packages, 0b11);
    }

    #[test]
    fn oracle_echoes_usage() {
        let mut e = Oracle;
        let j = JobBuilder::new(1)
            .requested_mem_kb(100)
            .used_mem_kb(10)
            .requested_packages(0b11)
            .used_packages(0b01)
            .build();
        let d = e.estimate(&j, &EstimateContext::default());
        assert_eq!(d.mem_kb, 10);
        assert_eq!(d.packages, 0b01);
    }

    #[test]
    fn feedback_is_inert() {
        let mut p = PassThrough;
        let mut o = Oracle;
        let j = JobBuilder::new(1).build();
        let ctx = EstimateContext::default();
        let d = p.estimate(&j, &ctx);
        p.feedback(&j, &d, &Feedback::failure(), &ctx);
        o.feedback(&j, &d, &Feedback::failure(), &ctx);
        assert_eq!(p.estimate(&j, &ctx), d);
    }
}
