//! Reinforcement learning: implicit feedback, no similarity groups.
//!
//! Table 1's implicit-feedback/no-similarity quadrant. The paper (§4)
//! envisions an agent that learns a *global* policy over the system state —
//! "if all users over-estimated their resource capacities by 100%, the
//! global policy to which RL will converge is that it is sufficient to send
//! jobs for execution with only 50% of their requested resources".
//!
//! Per-job estimation is a one-step decision: observe state, pick a scaling
//! factor, and the job's termination delivers the (immediate) reward — so
//! the natural instantiation is a contextual bandit: tabular Q-values over a
//! discretized state (request-size bucket × cluster free fraction × queue
//! depth), ε-greedy exploration with a decaying ε, and incremental value
//! updates `Q ← Q + lr·(r − Q)`. Success earns the fraction of the request
//! the action saved; a failure (wasted execution, resubmission) costs a
//! fixed penalty, which keeps the learned policy conservative exactly as the
//! paper observed of its estimator.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use resmatch_cluster::Demand;
use resmatch_workload::{Job, JobId};

use crate::similarity::FnvBuildHasher;
use crate::traits::{EstimateContext, Feedback, ResourceEstimator};

/// Scaling factors the agent chooses among; 1.0 is "trust the request".
pub const ACTIONS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.125];

const REQUEST_BUCKETS: usize = 6;
const FREE_BUCKETS: usize = 4;
const QUEUE_BUCKETS: usize = 3;
const STATES: usize = REQUEST_BUCKETS * FREE_BUCKETS * QUEUE_BUCKETS;

/// Tunables for [`ReinforcementEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReinforcementConfig {
    /// Learning rate for value updates.
    pub learning_rate: f64,
    /// Initial exploration probability.
    pub epsilon: f64,
    /// Visits after which exploration has halved.
    pub epsilon_decay_visits: f64,
    /// Penalty for a failed (under-provisioned) execution.
    pub failure_penalty: f64,
    /// RNG seed for exploration.
    pub seed: u64,
}

impl Default for ReinforcementConfig {
    fn default() -> Self {
        ReinforcementConfig {
            learning_rate: 0.1,
            epsilon: 0.2,
            epsilon_decay_visits: 2_000.0,
            failure_penalty: 2.0,
            seed: 0x5EED,
        }
    }
}

/// The RL (contextual-bandit) estimator.
pub struct ReinforcementEstimator {
    cfg: ReinforcementConfig,
    /// Q[state][action].
    q: Vec<[f64; ACTIONS.len()]>,
    /// Visit counts per state-action pair, for decaying exploration.
    visits: Vec<[u64; ACTIONS.len()]>,
    /// Action taken for each in-flight job, consumed by feedback.
    pending: HashMap<JobId, (usize, usize), FnvBuildHasher>,
    total_decisions: u64,
    rng: StdRng,
}

fn request_bucket(job: &Job) -> usize {
    // log2 of the requested megabytes, clamped to the table width.
    let mb = (job.requested_mem_kb / 1024).max(1);
    (63 - mb.leading_zeros() as usize).min(REQUEST_BUCKETS - 1)
}

fn free_bucket(ctx: &EstimateContext) -> usize {
    ((ctx.free_fraction.clamp(0.0, 1.0) * FREE_BUCKETS as f64) as usize).min(FREE_BUCKETS - 1)
}

fn queue_bucket(ctx: &EstimateContext) -> usize {
    match ctx.queue_len {
        0 => 0,
        1..=10 => 1,
        _ => 2,
    }
}

fn state_index(job: &Job, ctx: &EstimateContext) -> usize {
    (request_bucket(job) * FREE_BUCKETS + free_bucket(ctx)) * QUEUE_BUCKETS + queue_bucket(ctx)
}

impl ReinforcementEstimator {
    /// Create a fresh agent.
    pub fn new(cfg: ReinforcementConfig) -> Self {
        ReinforcementEstimator {
            cfg,
            q: vec![[0.0; ACTIONS.len()]; STATES],
            visits: vec![[0; ACTIONS.len()]; STATES],
            pending: HashMap::default(),
            total_decisions: 0,
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }

    /// Current exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.cfg.epsilon * self.cfg.epsilon_decay_visits
            / (self.cfg.epsilon_decay_visits + self.total_decisions as f64)
    }

    /// Q-value of a state-action pair (test/inspection hook).
    pub fn q_value(&self, job: &Job, ctx: &EstimateContext, action: usize) -> f64 {
        self.q[state_index(job, ctx)][action]
    }

    /// The greedy action index for a state.
    pub fn greedy_action(&self, job: &Job, ctx: &EstimateContext) -> usize {
        let row = &self.q[state_index(job, ctx)];
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl ResourceEstimator for ReinforcementEstimator {
    fn name(&self) -> &'static str {
        "reinforcement-learning"
    }

    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
        let state = state_index(job, ctx);
        self.total_decisions += 1;
        let action = if self.rng.random::<f64>() < self.epsilon() {
            self.rng.random_range(0..ACTIONS.len())
        } else {
            let row = &self.q[state];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        };
        self.pending.insert(job.id, (state, action));
        let mem_kb = ((job.requested_mem_kb as f64 * ACTIONS[action]).round() as u64)
            .clamp(64.min(job.requested_mem_kb), job.requested_mem_kb);
        Demand {
            mem_kb,
            disk_kb: job.requested_disk_kb,
            packages: job.requested_packages,
        }
    }

    fn feedback(&mut self, job: &Job, _granted: &Demand, fb: &Feedback, _ctx: &EstimateContext) {
        let Some((state, action)) = self.pending.remove(&job.id) else {
            return;
        };
        let reward = if fb.is_success() {
            1.0 - ACTIONS[action]
        } else {
            -self.cfg.failure_penalty
        };
        self.visits[state][action] += 1;
        let q = &mut self.q[state][action];
        *q += self.cfg.learning_rate * (reward - *q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    fn job(id: u64, req_mb: u64, used_mb: u64) -> Job {
        JobBuilder::new(id)
            .requested_mem_kb(req_mb * 1024)
            .used_mem_kb(used_mb * 1024)
            .build()
    }

    #[test]
    fn state_discretization() {
        let ctx_idle = EstimateContext {
            queue_len: 0,
            free_fraction: 1.0,
        };
        let ctx_busy = EstimateContext {
            queue_len: 50,
            free_fraction: 0.1,
        };
        let small = job(1, 1, 1);
        let big = job(2, 32, 32);
        assert_ne!(state_index(&small, &ctx_idle), state_index(&big, &ctx_idle));
        assert_ne!(state_index(&big, &ctx_idle), state_index(&big, &ctx_busy));
        for j in [&small, &big] {
            for ctx in [&ctx_idle, &ctx_busy] {
                assert!(state_index(j, ctx) < STATES);
            }
        }
    }

    #[test]
    fn epsilon_decays() {
        let mut e = ReinforcementEstimator::new(ReinforcementConfig::default());
        let initial = e.epsilon();
        let ctx = EstimateContext::default();
        for i in 0..5_000 {
            let _ = e.estimate(&job(i, 16, 8), &ctx);
        }
        assert!(e.epsilon() < initial / 2.0);
    }

    #[test]
    fn learns_global_half_request_policy() {
        // The paper's motivating case: every job uses ~40% of its request,
        // so the 0.5 action is the best safe reduction.
        let mut e = ReinforcementEstimator::new(ReinforcementConfig::default());
        let ctx = EstimateContext::default();
        for i in 0..20_000u64 {
            let j = job(i, 16, 6); // uses 6/16 = 37.5%
            let d = e.estimate(&j, &ctx);
            let success = d.mem_kb >= j.used_mem_kb;
            let fb = if success {
                Feedback::success()
            } else {
                Feedback::failure()
            };
            e.feedback(&j, &d, &fb, &ctx);
        }
        let probe = job(999_999, 16, 6);
        let greedy = e.greedy_action(&probe, &ctx);
        assert_eq!(
            ACTIONS[greedy], 0.5,
            "expected the half-request policy, got factor {}",
            ACTIONS[greedy]
        );
    }

    #[test]
    fn failure_penalty_deters_aggression() {
        // Jobs that use 90% of the request: every reduction fails; the agent
        // must settle on factor 1.0.
        let mut e = ReinforcementEstimator::new(ReinforcementConfig::default());
        let ctx = EstimateContext::default();
        for i in 0..20_000u64 {
            let j = job(i, 16, 15);
            let d = e.estimate(&j, &ctx);
            let fb = if d.mem_kb >= j.used_mem_kb {
                Feedback::success()
            } else {
                Feedback::failure()
            };
            e.feedback(&j, &d, &fb, &ctx);
        }
        let greedy = e.greedy_action(&job(999_999, 16, 15), &ctx);
        assert_eq!(ACTIONS[greedy], 1.0);
    }

    #[test]
    fn estimates_never_exceed_request() {
        let mut e = ReinforcementEstimator::new(ReinforcementConfig::default());
        let ctx = EstimateContext::default();
        for i in 0..500 {
            let j = job(i, 8, 4);
            let d = e.estimate(&j, &ctx);
            assert!(d.mem_kb <= j.requested_mem_kb);
            assert!(d.mem_kb > 0);
        }
    }

    #[test]
    fn feedback_without_pending_decision_is_ignored() {
        let mut e = ReinforcementEstimator::new(ReinforcementConfig::default());
        let ctx = EstimateContext::default();
        let j = job(1, 16, 8);
        // Must not panic or corrupt state.
        e.feedback(&j, &Demand::memory(1), &Feedback::failure(), &ctx);
        assert_eq!(e.q_value(&j, &ctx, 0), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut e = ReinforcementEstimator::new(ReinforcementConfig {
                seed,
                ..ReinforcementConfig::default()
            });
            let ctx = EstimateContext::default();
            (0..200u64)
                .map(|i| e.estimate(&job(i, 16, 8), &ctx).mem_kb)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
