//! Last-instance identification: explicit feedback + similarity groups.
//!
//! Table 1's explicit-feedback/similarity quadrant. "If explicit feedback is
//! available, the resource estimation can be performed by simply using the
//! actual resources used by the previous job submission as the estimated
//! resources for the next job submission in the same similarity group"
//! (§2.3). Two production hardenings are configurable:
//!
//! - `window`: estimate the *maximum* usage over the last `window`
//!   observations instead of the single last one, damping within-group
//!   variance (window = 1 is the paper-literal rule);
//! - `margin`: multiply the estimate by a safety factor ≥ 1.
//!
//! Estimates are always clamped to the job's request, and a failed execution
//! (memory exhausted despite explicit feedback) resets the group to the full
//! request — explicit feedback makes that attribution unambiguous.

use std::collections::VecDeque;

use resmatch_cluster::Demand;
use resmatch_workload::Job;
use serde::{Deserialize, Serialize};

use crate::similarity::{GroupTable, SimilarityKey, SimilarityPolicy};
use crate::snapshot::{SnapshotError, SnapshotState};
use crate::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};

/// Tunables for [`LastInstance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LastInstanceConfig {
    /// How many recent observations the estimate maximizes over (>= 1).
    pub window: usize,
    /// Safety multiplier applied to the observed usage (>= 1).
    pub margin: f64,
    /// Similarity keying.
    pub policy: SimilarityPolicy,
}

impl Default for LastInstanceConfig {
    fn default() -> Self {
        LastInstanceConfig {
            window: 1,
            margin: 1.0,
            policy: SimilarityPolicy::UserAppRequest,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct GroupState {
    recent_used_kb: VecDeque<u64>,
    /// Set when an execution failed; the next estimate reverts to the
    /// request until a fresh successful observation arrives.
    poisoned: bool,
}

/// A persisted group: key plus the observation window and poison bit, the
/// durable form of [`LastInstance`]'s per-group state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedLastGroup {
    /// Similarity key the state belongs to.
    pub key: SimilarityKey,
    /// Recent successful peak usages, oldest first (at most `window`).
    pub recent_used_kb: Vec<u64>,
    /// Whether the group is poisoned (reverting to the request) pending a
    /// clean run.
    pub poisoned: bool,
}

/// The last-instance estimator.
pub struct LastInstance {
    cfg: LastInstanceConfig,
    groups: GroupTable<GroupState>,
}

impl LastInstance {
    /// Create with the given configuration.
    ///
    /// # Panics
    /// Panics when `window == 0` or `margin < 1`.
    pub fn new(cfg: LastInstanceConfig) -> Self {
        assert!(cfg.window >= 1, "window must be at least 1");
        assert!(cfg.margin >= 1.0, "margin must be at least 1");
        let policy = cfg.policy;
        LastInstance {
            cfg,
            groups: GroupTable::new(policy),
        }
    }

    /// Number of groups observed.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Export every group's observation window, sorted by key for
    /// deterministic output.
    pub fn export_state(&self) -> Vec<PersistedLastGroup> {
        let mut out: Vec<PersistedLastGroup> = self
            .groups
            .iter()
            .map(|(key, g)| PersistedLastGroup {
                key: *key,
                recent_used_kb: g.recent_used_kb.iter().copied().collect(),
                poisoned: g.poisoned,
            })
            .collect();
        out.sort_by_key(|e| e.key);
        out
    }

    /// Restore previously exported state (replacing any existing entry for
    /// the same key). Windows longer than the configured `window` keep
    /// their most recent entries.
    pub fn import_state(&mut self, entries: &[PersistedLastGroup]) {
        for e in entries {
            let mut recent: VecDeque<u64> = e.recent_used_kb.iter().copied().collect();
            while recent.len() > self.cfg.window {
                recent.pop_front();
            }
            self.groups.insert_key(
                e.key,
                GroupState {
                    recent_used_kb: recent,
                    poisoned: e.poisoned,
                },
            );
        }
    }
}

impl ResourceEstimator for LastInstance {
    fn name(&self) -> &'static str {
        "last-instance"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        let group = self
            .groups
            .get_or_insert_with(job, |_| GroupState::default());
        let request = job.requested_mem_kb;
        let mem_kb = if group.poisoned || group.recent_used_kb.is_empty() {
            request
        } else {
            let peak = *group
                .recent_used_kb
                .iter()
                .max()
                .expect("invariant: recent_used_kb was checked non-empty above");
            ((peak as f64 * self.cfg.margin).ceil() as u64).min(request)
        };
        Demand {
            mem_kb,
            disk_kb: job.requested_disk_kb,
            packages: job.requested_packages,
        }
    }

    fn feedback(&mut self, job: &Job, _granted: &Demand, fb: &Feedback, _ctx: &EstimateContext) {
        let window = self.cfg.window;
        let Some(group) = self.groups.get_mut(job) else {
            return;
        };
        match fb {
            Feedback::Explicit { success, used } => {
                if *success {
                    group.poisoned = false;
                    group.recent_used_kb.push_back(used.mem_kb);
                    while group.recent_used_kb.len() > window {
                        group.recent_used_kb.pop_front();
                    }
                } else {
                    // Under-allocation despite explicit feedback: the
                    // recorded peak is a truncated measurement. Revert to
                    // the request until a clean run is observed.
                    group.poisoned = true;
                    group.recent_used_kb.clear();
                }
            }
            Feedback::Implicit { success } => {
                // This estimator is designed for explicit feedback; an
                // implicit failure still poisons the group conservatively.
                if !*success {
                    group.poisoned = true;
                    group.recent_used_kb.clear();
                }
            }
        }
    }

    fn estimate_scope(&self, job: &Job) -> EstimateScope {
        // The usage window and poison bit live per group; feedback only
        // mutates the fed-back job's own group.
        EstimateScope::Group(self.groups.policy().key(job).stable_hash())
    }

    fn snapshot_state(&self) -> Option<SnapshotState> {
        Some(SnapshotState::LastInstanceV1 {
            groups: self.export_state(),
        })
    }

    fn restore_state(&mut self, state: SnapshotState) -> Result<(), SnapshotError> {
        match state {
            SnapshotState::LastInstanceV1 { groups } => {
                self.import_state(&groups);
                Ok(())
            }
            other => Err(SnapshotError::Mismatch {
                expected: "last-instance-v1",
                found: other.kind(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    fn job(used: u64) -> Job {
        JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(32_768)
            .used_mem_kb(used)
            .build()
    }

    fn explicit_ok(used: u64) -> Feedback {
        Feedback::explicit(true, Demand::memory(used))
    }

    #[test]
    fn first_submission_uses_request() {
        let mut e = LastInstance::new(LastInstanceConfig::default());
        let d = e.estimate(&job(5_000), &EstimateContext::default());
        assert_eq!(d.mem_kb, 32_768);
    }

    #[test]
    fn second_submission_uses_last_observation() {
        let mut e = LastInstance::new(LastInstanceConfig::default());
        let ctx = EstimateContext::default();
        let j = job(5_000);
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(5_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 5_000);
    }

    #[test]
    fn window_takes_max_of_recent() {
        let mut e = LastInstance::new(LastInstanceConfig {
            window: 3,
            ..LastInstanceConfig::default()
        });
        let ctx = EstimateContext::default();
        let j = job(0);
        for used in [4_000, 9_000, 6_000] {
            let d = e.estimate(&j, &ctx);
            e.feedback(&j, &d, &explicit_ok(used), &ctx);
        }
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 9_000);
        // A fourth observation evicts 4_000; max of {9_000, 6_000, 2_000}.
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(2_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 9_000);
        // One more evicts 9_000, leaving {6_000, 2_000, 2_000}.
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(2_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 6_000);
        // And another evicts 6_000.
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(2_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 2_000);
    }

    #[test]
    fn margin_inflates_but_respects_request() {
        let mut e = LastInstance::new(LastInstanceConfig {
            margin: 1.5,
            ..LastInstanceConfig::default()
        });
        let ctx = EstimateContext::default();
        let j = job(0);
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(10_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 15_000);
        // Margin can never push beyond the request.
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(30_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 32_768);
    }

    #[test]
    fn failure_poisons_until_clean_run() {
        let mut e = LastInstance::new(LastInstanceConfig::default());
        let ctx = EstimateContext::default();
        let j = job(0);
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(5_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 5_000);
        // A failed run (truncated measurement) reverts to the request.
        let d = e.estimate(&j, &ctx);
        e.feedback(
            &j,
            &d,
            &Feedback::explicit(false, Demand::memory(5_000)),
            &ctx,
        );
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 32_768);
        // A clean run re-arms estimation.
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(6_000), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 6_000);
    }

    #[test]
    fn implicit_failure_also_poisons() {
        let mut e = LastInstance::new(LastInstanceConfig::default());
        let ctx = EstimateContext::default();
        let j = job(0);
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &explicit_ok(5_000), &ctx);
        let d = e.estimate(&j, &ctx);
        e.feedback(&j, &d, &Feedback::failure(), &ctx);
        assert_eq!(e.estimate(&j, &ctx).mem_kb, 32_768);
    }

    #[test]
    fn groups_are_independent() {
        let mut e = LastInstance::new(LastInstanceConfig::default());
        let ctx = EstimateContext::default();
        let a = JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(32_768)
            .build();
        let b = JobBuilder::new(2)
            .user(2)
            .app(1)
            .requested_mem_kb(32_768)
            .build();
        let d = e.estimate(&a, &ctx);
        e.feedback(&a, &d, &explicit_ok(1_000), &ctx);
        assert_eq!(e.estimate(&a, &ctx).mem_kb, 1_000);
        assert_eq!(e.estimate(&b, &ctx).mem_kb, 32_768);
        assert_eq!(e.group_count(), 2);
    }

    #[test]
    fn state_round_trips_across_restart() {
        let mut before = LastInstance::new(LastInstanceConfig {
            window: 3,
            ..LastInstanceConfig::default()
        });
        let ctx = EstimateContext::default();
        let j = job(0);
        for used in [4_000, 9_000, 6_000] {
            let d = before.estimate(&j, &ctx);
            before.feedback(&j, &d, &explicit_ok(used), &ctx);
        }
        let state = before.export_state();
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].recent_used_kb, vec![4_000, 9_000, 6_000]);

        let mut after = LastInstance::new(LastInstanceConfig {
            window: 3,
            ..LastInstanceConfig::default()
        });
        after.import_state(&state);
        assert_eq!(
            after.estimate(&j, &ctx).mem_kb,
            before.estimate(&j, &ctx).mem_kb
        );
        assert_eq!(after.export_state(), state);
    }

    #[test]
    fn import_truncates_oversized_windows_to_recent() {
        let mut donor = LastInstance::new(LastInstanceConfig {
            window: 3,
            ..LastInstanceConfig::default()
        });
        let ctx = EstimateContext::default();
        let j = job(0);
        for used in [9_000, 4_000, 3_000] {
            let d = donor.estimate(&j, &ctx);
            donor.feedback(&j, &d, &explicit_ok(used), &ctx);
        }
        // Restore into a narrower window: only the most recent survive,
        // so the stale 9_000 peak is dropped.
        let mut narrow = LastInstance::new(LastInstanceConfig {
            window: 2,
            ..LastInstanceConfig::default()
        });
        narrow.import_state(&donor.export_state());
        assert_eq!(narrow.estimate(&j, &ctx).mem_kb, 4_000);
    }

    #[test]
    fn snapshot_state_round_trips_via_trait() {
        let mut before = LastInstance::new(LastInstanceConfig::default());
        let ctx = EstimateContext::default();
        let j = job(0);
        let d = before.estimate(&j, &ctx);
        before.feedback(&j, &d, &explicit_ok(5_000), &ctx);
        let state = before.snapshot_state().expect("last-instance snapshots");

        let mut after = LastInstance::new(LastInstanceConfig::default());
        after.restore_state(state).expect("matching kind restores");
        assert_eq!(after.estimate(&j, &ctx).mem_kb, 5_000);

        let wrong = crate::snapshot::SnapshotState::SuccessiveV1 { groups: Vec::new() };
        assert!(matches!(
            after.restore_state(wrong),
            Err(SnapshotError::Mismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn rejects_zero_window() {
        let _ = LastInstance::new(LastInstanceConfig {
            window: 0,
            ..LastInstanceConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "margin must be at least 1")]
    fn rejects_sub_unit_margin() {
        let _ = LastInstance::new(LastInstanceConfig {
            margin: 0.9,
            ..LastInstanceConfig::default()
        });
    }
}
