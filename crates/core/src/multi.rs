//! Multi-resource estimation via coordinate descent — the §2.3 extension.
//!
//! Algorithm 1 handles a single resource: "if one would attempt to use this
//! algorithm for simultaneous estimation of several resources, modifying
//! several of them at each step, it would be difficult to know which of
//! these resources causes the algorithm to terminate. The algorithm can be
//! generalized for multiple resources using methods of multidimensional
//! optimization." This estimator is that generalization for the paper's two
//! qualitatively different resource classes:
//!
//! - **memory** (a scalar) is estimated by the inner
//!   [`SuccessiveApproximation`];
//! - **software-package prerequisites** (a set; the paper's "ignore some
//!   software packages that are defined as prerequisites") are estimated by
//!   trial removal, one package at a time.
//!
//! Coordinate discipline: package trials begin only after the group's memory
//! estimate has warmed up (a few successes or its first failure), and while
//! a package trial is in flight the execution's feedback is attributed to
//! the *package* coordinate, not the memory one — so a failure is never
//! blamed on the wrong resource.

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_workload::Job;

use crate::similarity::GroupTable;
use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
use crate::traits::{EstimateContext, Feedback, ResourceEstimator};

/// Tunables for [`MultiResourceEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiResourceConfig {
    /// Inner memory-estimation parameters.
    pub memory: SuccessiveConfig,
    /// Memory successes required before package trials start.
    pub package_warmup: u64,
}

impl Default for MultiResourceConfig {
    fn default() -> Self {
        MultiResourceConfig {
            memory: SuccessiveConfig::default(),
            package_warmup: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct PkgState {
    /// Packages currently believed necessary (starts at the request).
    estimate_mask: u32,
    /// Packages confirmed necessary by a failed removal.
    needed: u32,
    /// The single package bit under trial, if any.
    trying: Option<u32>,
}

/// The multi-resource estimator.
pub struct MultiResourceEstimator {
    cfg: MultiResourceConfig,
    memory: SuccessiveApproximation,
    packages: GroupTable<PkgState>,
}

impl MultiResourceEstimator {
    /// Create for a cluster described by `ladder`.
    pub fn new(cfg: MultiResourceConfig, ladder: CapacityLadder) -> Self {
        let policy = cfg.memory.policy;
        MultiResourceEstimator {
            cfg,
            memory: SuccessiveApproximation::new(cfg.memory, ladder),
            packages: GroupTable::new(policy),
        }
    }

    /// The group's current package estimate, if it exists.
    pub fn package_mask(&self, job: &Job) -> Option<u32> {
        self.packages.get(job).map(|p| p.estimate_mask)
    }

    /// Access the inner memory estimator (inspection).
    pub fn memory_estimator(&self) -> &SuccessiveApproximation {
        &self.memory
    }

    fn memory_warm(&self, job: &Job) -> bool {
        self.memory
            .group_snapshot(job)
            .map(|s| s.successes >= self.cfg.package_warmup || s.failures > 0)
            .unwrap_or(false)
    }
}

impl ResourceEstimator for MultiResourceEstimator {
    fn name(&self) -> &'static str {
        "multi-resource"
    }

    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
        let mem = self.memory.estimate(job, ctx);
        let warm = self.memory_warm(job);
        let group = self.packages.get_or_insert_with(job, |j| PkgState {
            estimate_mask: j.requested_packages,
            needed: 0,
            trying: None,
        });
        // Start a removal trial only when memory is settled and no trial is
        // pending: the highest not-yet-confirmed package goes first.
        if warm && group.trying.is_none() {
            let candidates = group.estimate_mask & !group.needed;
            if candidates != 0 {
                let bit = 1u32 << (31 - candidates.leading_zeros());
                group.trying = Some(bit);
            }
        }
        let packages = match group.trying {
            Some(bit) => group.estimate_mask & !bit,
            None => group.estimate_mask,
        };
        Demand {
            mem_kb: mem.mem_kb,
            disk_kb: job.requested_disk_kb,
            packages,
        }
    }

    fn feedback(&mut self, job: &Job, granted: &Demand, fb: &Feedback, ctx: &EstimateContext) {
        let is_trial = self
            .packages
            .get(job)
            .and_then(|g| {
                g.trying
                    .map(|bit| granted.packages == g.estimate_mask & !bit)
            })
            .unwrap_or(false);
        if is_trial {
            // Coordinate attribution: this execution tested a package
            // removal, so its outcome belongs to the package coordinate.
            let group = self
                .packages
                .get_mut(job)
                .expect("invariant: is_trial is only true when the group exists");
            let bit = group
                .trying
                .take()
                .expect("invariant: is_trial is only true when a trial bit is set");
            if fb.is_success() {
                group.estimate_mask &= !bit;
            } else {
                group.needed |= bit;
            }
            return;
        }
        // Explicit feedback short-circuits trial-and-error for packages:
        // keep only packages the job actually exercised (plus any already
        // confirmed needed — monitoring can miss lazily loaded ones).
        if let Feedback::Explicit {
            success: true,
            used,
        } = fb
        {
            if let Some(group) = self.packages.get_mut(job) {
                group.estimate_mask &= used.packages | group.needed;
            }
        }
        self.memory.feedback(job, granted, fb, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn job(req_mb: u64, used_mb: u64, req_pkg: u32, used_pkg: u32) -> Job {
        JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(req_mb * MB)
            .used_mem_kb(used_mb * MB)
            .requested_packages(req_pkg)
            .used_packages(used_pkg)
            .build()
    }

    fn estimator() -> MultiResourceEstimator {
        MultiResourceEstimator::new(
            MultiResourceConfig::default(),
            CapacityLadder::new(vec![32 * MB, 16 * MB, 8 * MB, 4 * MB]),
        )
    }

    /// One cycle on a notional cluster whose nodes all have 32 MB and every
    /// package installed: memory always suffices (the ladder rounds any
    /// estimate up to a covering rung), so success hinges on the granted
    /// package mask covering actual use.
    fn cycle(est: &mut MultiResourceEstimator, j: &Job) -> (Demand, bool) {
        let ctx = EstimateContext::default();
        let d = est.estimate(j, &ctx);
        let pkg_ok = (j.used_packages & !d.packages) == 0;
        let node_mem_kb = 32 * MB;
        let success = pkg_ok && j.used_mem_kb <= node_mem_kb;
        let fb = if success {
            Feedback::success()
        } else {
            Feedback::failure()
        };
        est.feedback(j, &d, &fb, &ctx);
        (d, success)
    }

    #[test]
    fn delegates_memory_to_successive() {
        let mut est = estimator();
        let j = job(32, 32, 0, 0); // memory fully used; no packages
        let ctx = EstimateContext::default();
        let d1 = est.estimate(&j, &ctx);
        assert_eq!(d1.mem_kb, 32 * MB);
        est.feedback(&j, &d1, &Feedback::success(), &ctx);
        let d2 = est.estimate(&j, &ctx);
        assert!(d2.mem_kb < d1.mem_kb, "successive descent must engage");
    }

    #[test]
    fn packages_untouched_until_memory_warm() {
        let mut est = estimator();
        let j = job(32, 4, 0b111, 0b001);
        let ctx = EstimateContext::default();
        let d = est.estimate(&j, &ctx);
        assert_eq!(d.packages, 0b111, "cold group must not drop packages");
        est.feedback(&j, &d, &Feedback::success(), &ctx);
        let d = est.estimate(&j, &ctx);
        assert_eq!(d.packages, 0b111, "one success is not warm yet");
        est.feedback(&j, &d, &Feedback::success(), &ctx);
    }

    #[test]
    fn trial_removal_finds_needed_set() {
        let mut est = estimator();
        let j = job(32, 4, 0b111, 0b001);
        for _ in 0..20 {
            cycle(&mut est, &j);
        }
        // Bits 2 and 1 are droppable; bit 0 is exercised and must survive.
        assert_eq!(est.package_mask(&j), Some(0b001));
        let d = est.estimate(&j, &EstimateContext::default());
        assert_eq!(d.packages & 0b001, 0b001);
    }

    #[test]
    fn package_failure_not_blamed_on_memory() {
        let mut est = estimator();
        // Memory settles immediately (usage = request rung), every package
        // is needed, so the package trials all fail.
        let j = job(32, 4, 0b1, 0b1);
        let ctx = EstimateContext::default();
        // Warm up memory with three clean cycles.
        for _ in 0..3 {
            let d = est.estimate(&j, &ctx);
            est.feedback(&j, &d, &Feedback::success(), &ctx);
        }
        let mem_before = est.memory_estimator().group_snapshot(&j).unwrap();
        // Next estimate carries the package trial; fail it.
        let d = est.estimate(&j, &ctx);
        assert_eq!(d.packages, 0, "trial must drop the only package");
        est.feedback(&j, &d, &Feedback::failure(), &ctx);
        let mem_after = est.memory_estimator().group_snapshot(&j).unwrap();
        assert_eq!(
            mem_before.failures, mem_after.failures,
            "memory coordinate must not absorb a package failure"
        );
        // The package is now pinned; no further trials touch it.
        let d = est.estimate(&j, &ctx);
        assert_eq!(d.packages, 0b1);
    }

    #[test]
    fn explicit_feedback_short_circuits_packages() {
        let mut est = estimator();
        let j = job(32, 4, 0b1111, 0b0011);
        let ctx = EstimateContext::default();
        let d = est.estimate(&j, &ctx);
        est.feedback(
            &j,
            &d,
            &Feedback::explicit(true, Demand::new(4 * MB, 0, 0b0011)),
            &ctx,
        );
        assert_eq!(est.package_mask(&j), Some(0b0011));
    }

    #[test]
    fn jobs_without_packages_never_trial() {
        let mut est = estimator();
        let j = job(32, 4, 0, 0);
        for _ in 0..10 {
            let (d, _) = cycle(&mut est, &j);
            assert_eq!(d.packages, 0);
        }
    }
}
