//! Per-group estimator selection — an ensemble over the Table 1 matrix.
//!
//! The paper's Table 1 presents its four algorithms as alternatives chosen
//! *a priori* by deployment circumstances. In practice different similarity
//! groups favor different estimators: tight groups love aggressive
//! successive approximation, heterogeneous ones need the robust bracket.
//! [`EstimatorSelector`] learns the choice *per group* as a bandit: every
//! candidate estimator observes all feedback (they are cheap, pure-state
//! learners), but each group's submissions are served by the candidate with
//! the best exponentially weighted reward — `1 − granted/request` on
//! success, a fixed penalty on failure — with a round-robin warm-up so
//! every candidate gets scored before exploitation starts.

use std::collections::HashMap;

use resmatch_cluster::Demand;
use resmatch_workload::{Job, JobId};

use crate::similarity::{FnvBuildHasher, GroupTable, SimilarityPolicy};
use crate::traits::{EstimateContext, Feedback, ResourceEstimator};

/// Tunables for [`EstimatorSelector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorConfig {
    /// Scored plays each candidate must accumulate per group before
    /// exploitation starts. Counted on *feedback*, not on estimates: a live
    /// scheduler may re-estimate a queued job many times before it runs,
    /// and those re-estimates must not burn the exploration budget.
    pub warmup_rounds: usize,
    /// EWMA smoothing for candidate scores.
    pub score_alpha: f64,
    /// Penalty charged to a candidate whose estimate failed.
    pub failure_penalty: f64,
    /// Similarity keying for the per-group scores.
    pub policy: SimilarityPolicy,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            warmup_rounds: 2,
            score_alpha: 0.3,
            failure_penalty: 2.0,
            policy: SimilarityPolicy::UserAppRequest,
        }
    }
}

#[derive(Debug, Clone)]
struct GroupScores {
    /// EWMA score per candidate (index-aligned).
    scores: Vec<f64>,
    /// Scored plays per candidate.
    plays: Vec<u64>,
}

/// The ensemble estimator.
pub struct EstimatorSelector {
    cfg: SelectorConfig,
    candidates: Vec<Box<dyn ResourceEstimator>>,
    groups: GroupTable<GroupScores>,
    /// Which candidate served each in-flight job.
    pending: HashMap<JobId, usize, FnvBuildHasher>,
}

impl EstimatorSelector {
    /// Create over a non-empty candidate list.
    ///
    /// # Panics
    /// Panics on an empty candidate list or out-of-range configuration.
    pub fn new(cfg: SelectorConfig, candidates: Vec<Box<dyn ResourceEstimator>>) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(
            cfg.score_alpha > 0.0 && cfg.score_alpha <= 1.0,
            "score alpha must be in (0, 1]"
        );
        let policy = cfg.policy;
        EstimatorSelector {
            cfg,
            candidates,
            groups: GroupTable::new(policy),
            pending: HashMap::default(),
        }
    }

    /// Candidate names, index-aligned with scores.
    pub fn candidate_names(&self) -> Vec<&'static str> {
        self.candidates.iter().map(|c| c.name()).collect()
    }

    /// The candidate index a group currently prefers, if the group exists.
    pub fn preferred_candidate(&self, job: &Job) -> Option<usize> {
        self.groups.get(job).map(|g| {
            let mut best = 0;
            for (i, &s) in g.scores.iter().enumerate() {
                if s > g.scores[best] {
                    best = i;
                }
            }
            best
        })
    }
}

impl ResourceEstimator for EstimatorSelector {
    fn name(&self) -> &'static str {
        "estimator-selector"
    }

    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
        let n = self.candidates.len();
        let warmup = self.cfg.warmup_rounds as u64;
        let group = self.groups.get_or_insert_with(job, |_| GroupScores {
            scores: vec![0.0; n],
            plays: vec![0; n],
        });
        // Explore: any candidate short of its warm-up plays goes first
        // (least-played wins, ties by index). Exploit: best EWMA score.
        let least_played = (0..n)
            .min_by_key(|&i| group.plays[i])
            .expect("invariant: a selector always has at least one candidate");
        let choice = if group.plays[least_played] < warmup {
            least_played
        } else {
            let mut best = 0;
            for (i, &s) in group.scores.iter().enumerate() {
                if s > group.scores[best] {
                    best = i;
                }
            }
            best
        };
        self.pending.insert(job.id, choice);
        self.candidates[choice].estimate(job, ctx)
    }

    fn feedback(&mut self, job: &Job, granted: &Demand, fb: &Feedback, ctx: &EstimateContext) {
        // Every candidate learns from every outcome; granted capacity and
        // the result are facts about the world, not about the chooser.
        for candidate in &mut self.candidates {
            candidate.feedback(job, granted, fb, ctx);
        }
        // Only the candidate that actually served the job is scored on it.
        let Some(choice) = self.pending.remove(&job.id) else {
            return;
        };
        let reward = if fb.is_success() {
            if job.requested_mem_kb == 0 {
                0.0
            } else {
                1.0 - granted.mem_kb as f64 / job.requested_mem_kb as f64
            }
        } else {
            -self.cfg.failure_penalty
        };
        if let Some(group) = self.groups.get_mut(job) {
            group.plays[choice] += 1;
            let s = &mut group.scores[choice];
            *s += self.cfg.score_alpha * (reward - *s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::PassThrough;
    use crate::robust::{RobustBisection, RobustConfig};
    use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
    use resmatch_cluster::CapacityLadder;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB])
    }

    fn selector() -> EstimatorSelector {
        EstimatorSelector::new(
            SelectorConfig::default(),
            vec![
                Box::new(PassThrough),
                Box::new(SuccessiveApproximation::new(
                    SuccessiveConfig::default(),
                    ladder(),
                )),
                Box::new(RobustBisection::new(RobustConfig::default())),
            ],
        )
    }

    fn job(id: u64, used_mb: u64) -> resmatch_workload::Job {
        JobBuilder::new(id)
            .user(1)
            .app(1)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(used_mb * MB)
            .build()
    }

    /// Simulator-faithful cycle.
    fn cycle(sel: &mut EstimatorSelector, j: &resmatch_workload::Job) -> (u64, bool) {
        let ctx = EstimateContext::default();
        let d = sel.estimate(j, &ctx);
        let node = ladder().round_up(d.mem_kb).unwrap_or(d.mem_kb);
        let ok = j.used_mem_kb <= node;
        sel.feedback(
            j,
            &d,
            &if ok {
                Feedback::success()
            } else {
                Feedback::failure()
            },
            &ctx,
        );
        (d.mem_kb, ok)
    }

    #[test]
    fn converges_away_from_pass_through_when_reduction_pays() {
        let mut sel = selector();
        for i in 0..60 {
            cycle(&mut sel, &job(i, 5));
        }
        let preferred = sel.preferred_candidate(&job(999, 5)).unwrap();
        let names = sel.candidate_names();
        assert_ne!(
            names[preferred], "pass-through",
            "a reducible group must prefer a reducing estimator"
        );
        // And the served estimates reflect that: the steady-state demand is
        // far below the request.
        let (demand, ok) = cycle(&mut sel, &job(1_000, 5));
        assert!(ok);
        assert!(demand <= 16 * MB, "steady-state demand {demand}");
    }

    #[test]
    fn estimates_never_exceed_request() {
        let mut sel = selector();
        for i in 0..40 {
            let j = job(i, (i % 31) + 1);
            let ctx = EstimateContext::default();
            let d = sel.estimate(&j, &ctx);
            assert!(d.mem_kb <= j.requested_mem_kb);
            sel.feedback(&j, &d, &Feedback::success(), &ctx);
        }
    }

    #[test]
    fn warmup_round_robins_every_candidate() {
        let mut sel = selector();
        let ctx = EstimateContext::default();
        // First 3 submissions (warmup round 1): each candidate serves once.
        // Candidate 0 is pass-through (32 MB), candidate 1 successive
        // (32 MB first time), candidate 2 robust (32 MB first time) — so
        // watch the pending map instead of demands.
        for i in 0..3 {
            let j = job(i, 5);
            let _ = sel.estimate(&j, &ctx);
            assert_eq!(sel.pending[&j.id], i as usize % 3);
            sel.feedback(&j, &Demand::memory(32 * MB), &Feedback::success(), &ctx);
        }
    }

    #[test]
    fn groups_score_independently() {
        let mut sel = selector();
        // Group A is reducible; group B uses everything.
        for i in 0..60 {
            cycle(&mut sel, &job(i, 4));
            let hungry = JobBuilder::new(10_000 + i)
                .user(2)
                .app(2)
                .requested_mem_kb(32 * MB)
                .used_mem_kb(32 * MB)
                .build();
            cycle(&mut sel, &hungry);
        }
        let hungry_probe = JobBuilder::new(1)
            .user(2)
            .app(2)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(32 * MB)
            .build();
        let a = sel.preferred_candidate(&job(1, 4)).unwrap();
        let b = sel.preferred_candidate(&hungry_probe).unwrap();
        // The hungry group's reducing candidates all score <= 0 (failures
        // or zero saving), so its preference must differ from the
        // reducible group's or sit at a non-negative scorer.
        assert!(a != b || sel.candidate_names()[b] == "pass-through");
    }

    #[test]
    fn feedback_without_pending_is_ignored() {
        let mut sel = selector();
        let ctx = EstimateContext::default();
        sel.feedback(&job(1, 5), &Demand::memory(1), &Feedback::failure(), &ctx);
        assert!(sel.preferred_candidate(&job(1, 5)).is_none());
    }

    #[test]
    #[should_panic(expected = "need at least one candidate")]
    fn rejects_empty_candidates() {
        let _ = EstimatorSelector::new(SelectorConfig::default(), vec![]);
    }
}
