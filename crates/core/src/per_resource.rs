//! Per-resource estimation: every requested dimension shrinks independently.
//!
//! The paper's §2.3 observes that once jobs request several resource
//! capacities, "the estimation algorithm can be applied to each resource
//! separately" — the similarity insight is not memory-specific. This module
//! is that composition for the matchmaking allocation mode: the *memory*
//! dimension runs the existing Algorithm 1 family unchanged
//! ([`SuccessiveApproximation`]), while the *disk* dimension runs a parallel
//! Algorithm 1 channel keyed by the **same** similarity policy. Packages are
//! prerequisites, not capacities — they pass through verbatim (shrinking a
//! license requirement would change which software the job can run, not how
//! much of it).
//!
//! The disk channel differs from the memory channel in exactly one way: it
//! has no capacity ladder. Cluster memory comes in a handful of
//! machine-type rungs, so memory estimates round up to the next rung; disk
//! is provisioned per pool in arbitrary sizes, so the disk estimate is used
//! directly (ceiled to whole KB). Everything else — initialization at the
//! request, divide-by-α on success, restore-and-decay on failure, the
//! monotone out-of-order guards — mirrors [`crate::successive`] line for
//! line.
//!
//! Jobs that request no disk (`requested_disk_kb == 0`, the convention for
//! traces without disk records) create no disk-channel state and always get
//! a zero (unconstrained) disk demand, so on such traces this estimator is
//! *decision-identical* to plain successive approximation.

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_workload::Job;

use crate::similarity::GroupTable;
use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
use crate::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};

/// Tunables for [`PerResourceEstimator`]. The memory channel carries a full
/// [`SuccessiveConfig`] (its policy keys *both* channels); the disk channel
/// has its own (α, β) so experiments can probe the dimensions at different
/// aggressiveness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerResourceConfig {
    /// Memory-channel configuration; `memory.policy` keys both channels.
    pub memory: SuccessiveConfig,
    /// Disk-channel learning rate `α > 1`.
    pub disk_alpha: f64,
    /// Disk-channel decay-on-failure `0 <= β < 1`.
    pub disk_beta: f64,
}

impl Default for PerResourceConfig {
    fn default() -> Self {
        PerResourceConfig {
            memory: SuccessiveConfig::default(),
            disk_alpha: 2.0,
            disk_beta: 0.0,
        }
    }
}

/// Disk-channel learning state: Algorithm 1's two parameters plus the
/// bookkeeping the monotone guards need (mirrors the memory channel's
/// private state).
#[derive(Debug, Clone)]
struct DiskState {
    /// Current estimate `Eᵢ`, KB.
    estimate: f64,
    /// Learning rate `αᵢ`.
    alpha: f64,
    /// Last estimate known to work; failures restore to it.
    prev: f64,
    /// The group's initial disk request `R` — estimates never exceed it.
    request: f64,
}

/// The §2.3 per-resource estimator: memory via [`SuccessiveApproximation`],
/// disk via a parallel ladder-free Algorithm 1 channel, packages verbatim.
pub struct PerResourceEstimator {
    cfg: PerResourceConfig,
    memory: SuccessiveApproximation,
    disk: GroupTable<DiskState>,
}

impl PerResourceEstimator {
    /// Create for a cluster whose *memory* rungs are `ladder` (disk has no
    /// ladder; see the module docs).
    ///
    /// # Panics
    /// Panics unless both channels have `alpha > 1` and `0 <= beta < 1`.
    pub fn new(cfg: PerResourceConfig, ladder: CapacityLadder) -> Self {
        assert!(cfg.disk_alpha > 1.0, "disk alpha must exceed 1");
        assert!(
            (0.0..1.0).contains(&cfg.disk_beta),
            "disk beta must be in [0, 1)"
        );
        PerResourceEstimator {
            cfg,
            memory: SuccessiveApproximation::new(cfg.memory, ladder),
            disk: GroupTable::new(cfg.memory.policy),
        }
    }

    /// Number of disk-channel similarity groups created so far (only jobs
    /// that actually request disk create one).
    pub fn disk_group_count(&self) -> usize {
        self.disk.len()
    }

    /// The memory channel, for its reporting surface
    /// ([`SuccessiveApproximation::lowered_fraction`] etc.).
    pub fn memory_channel(&self) -> &SuccessiveApproximation {
        &self.memory
    }

    /// Current disk estimate (KB) for `job`'s group, if that group exists.
    pub fn disk_estimate_kb(&self, job: &Job) -> Option<f64> {
        self.disk.get(job).map(|g| g.estimate)
    }
}

impl ResourceEstimator for PerResourceEstimator {
    fn name(&self) -> &'static str {
        "per-resource"
    }

    fn estimate(&mut self, job: &Job, ctx: &EstimateContext) -> Demand {
        let mut demand = self.memory.estimate(job, ctx);
        if job.requested_disk_kb == 0 {
            demand.disk_kb = 0;
            return demand;
        }
        let alpha = self.cfg.disk_alpha;
        let group = self.disk.get_or_insert_with(job, |j| DiskState {
            estimate: j.requested_disk_kb as f64,
            alpha,
            prev: j.requested_disk_kb as f64,
            request: j.requested_disk_kb as f64,
        });
        let request = job.requested_disk_kb as f64;
        demand.disk_kb = (group.estimate.ceil().max(0.0) as u64)
            .min(request as u64)
            .max(1);
        demand
    }

    fn feedback(
        &mut self,
        job: &Job,
        granted: &Demand,
        feedback: &Feedback,
        ctx: &EstimateContext,
    ) {
        self.memory.feedback(job, granted, feedback, ctx);
        if job.requested_disk_kb == 0 {
            return;
        }
        let Some(group) = self.disk.get_mut(job) else {
            // Feedback for a job never estimated — nothing to learn from
            // (same rule as the memory channel).
            return;
        };
        let granted_disk = granted.disk_kb as f64;
        if feedback.is_success() {
            let proposal = granted_disk / group.alpha;
            // Monotone guards against out-of-order feedback, as in the
            // memory channel: successes never raise, failures never lower.
            group.prev = group.prev.min(granted_disk).min(group.request);
            group.estimate = group.estimate.min(proposal).min(group.request);
        } else {
            group.estimate = group.estimate.max(group.prev);
            group.alpha = (group.alpha * self.cfg.disk_beta).max(1.0);
        }
    }

    fn estimate_scope(&self, job: &Job) -> EstimateScope {
        // Both channels key on the same policy and keep strictly per-group
        // state; estimate reads no scheduler context and has no
        // cross-group side effects (the memory channel's submission
        // counters feed reports, not estimates). So the combined estimator
        // upholds the same Group promise as each channel alone.
        self.memory.estimate_scope(job)
    }

    // Snapshotting deliberately stays unsupported (the trait default): the
    // matchmaking experiments run single-process without restarts, and the
    // disk channel would need its own persisted schema. The memory channel
    // alone can still be persisted by running plain `successive`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn job(req_mem_mb: u64, req_disk_mb: u64, used_disk_mb: u64) -> Job {
        JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(req_mem_mb * MB)
            .used_mem_kb(4 * MB)
            .requested_disk_kb(req_disk_mb * MB)
            .used_disk_kb(used_disk_mb * MB)
            .build()
    }

    fn estimator(disk_alpha: f64, disk_beta: f64) -> PerResourceEstimator {
        PerResourceEstimator::new(
            PerResourceConfig {
                disk_alpha,
                disk_beta,
                ..PerResourceConfig::default()
            },
            CapacityLadder::new(vec![32 * MB, 16 * MB, 8 * MB, 4 * MB]),
        )
    }

    /// Drive one estimate/feedback cycle; success iff the granted disk
    /// covers actual usage (memory is sized to always succeed).
    fn cycle(est: &mut PerResourceEstimator, j: &Job) -> (u64, bool) {
        let ctx = EstimateContext::default();
        let d = est.estimate(j, &ctx);
        let success = j.used_disk_kb <= d.disk_kb || j.requested_disk_kb == 0;
        let fb = if success {
            Feedback::success()
        } else {
            Feedback::failure()
        };
        est.feedback(j, &d, &fb, &ctx);
        (d.disk_kb, success)
    }

    #[test]
    fn disk_channel_walks_down_and_freezes_like_algorithm1() {
        // Requested 1024 MB of scratch, actually uses 150 MB, α = 2, β = 0:
        // 1024 → 512 → 256 → (128 fails) → 256 frozen — the disk-dimension
        // Figure 7.
        let mut est = estimator(2.0, 0.0);
        let j = job(32, 1024, 150);
        let granted: Vec<u64> = (0..6).map(|_| cycle(&mut est, &j).0 / MB).collect();
        assert_eq!(granted, vec![1024, 512, 256, 128, 256, 256]);
    }

    #[test]
    fn dimensions_shrink_independently() {
        // Memory bottoms out at its rung while disk keeps halving: the
        // channels must not couple.
        let mut est = estimator(2.0, 0.0);
        let j = job(32, 4096, 1);
        let ctx = EstimateContext::default();
        let mut mem = Vec::new();
        let mut disk = Vec::new();
        for _ in 0..4 {
            let d = est.estimate(&j, &ctx);
            mem.push(d.mem_kb / MB);
            disk.push(d.disk_kb / MB);
            est.feedback(&j, &d, &Feedback::success(), &ctx);
        }
        assert_eq!(mem, vec![32, 16, 8, 4], "memory follows the ladder");
        assert_eq!(disk, vec![4096, 2048, 1024, 512], "disk is ladder-free");
    }

    #[test]
    fn no_disk_request_means_no_disk_state_and_zero_demand() {
        let mut est = estimator(2.0, 0.0);
        let j = job(32, 0, 0);
        let ctx = EstimateContext::default();
        for _ in 0..3 {
            let d = est.estimate(&j, &ctx);
            assert_eq!(d.disk_kb, 0);
            est.feedback(&j, &d, &Feedback::success(), &ctx);
        }
        assert_eq!(est.disk_group_count(), 0);
        assert!(est.memory_channel().group_count() == 1);
    }

    #[test]
    fn matches_plain_successive_on_memory() {
        // On any trace, the memory demands must be exactly what plain
        // successive approximation would produce.
        let ladder = CapacityLadder::new(vec![32 * MB, 16 * MB, 8 * MB, 4 * MB]);
        let mut per = PerResourceEstimator::new(PerResourceConfig::default(), ladder.clone());
        let mut plain = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder);
        let j = job(32, 512, 100);
        let ctx = EstimateContext::default();
        for round in 0..6 {
            let dp = per.estimate(&j, &ctx);
            let ds = plain.estimate(&j, &ctx);
            assert_eq!(dp.mem_kb, ds.mem_kb, "round {round}");
            assert_eq!(dp.packages, ds.packages);
            let fb = if round % 3 == 2 {
                Feedback::failure()
            } else {
                Feedback::success()
            };
            per.feedback(&j, &dp, &fb, &ctx);
            plain.feedback(&j, &ds, &fb, &ctx);
        }
    }

    #[test]
    fn disk_estimate_never_exceeds_request_and_stays_positive() {
        let mut est = estimator(8.0, 0.5);
        let j = job(32, 100, 1);
        let ctx = EstimateContext::default();
        for _ in 0..12 {
            let d = est.estimate(&j, &ctx);
            assert!(d.disk_kb >= 1 && d.disk_kb <= j.requested_disk_kb);
            est.feedback(&j, &d, &Feedback::success(), &ctx);
        }
    }

    #[test]
    fn stale_disk_feedback_respects_monotone_guards() {
        let mut est = estimator(2.0, 0.0);
        let j = job(32, 1024, 100);
        cycle(&mut est, &j);
        cycle(&mut est, &j); // estimate now 256 MB
        let before = est.disk_estimate_kb(&j).unwrap();
        let ctx = EstimateContext::default();
        // Stale success at the full request must not raise the estimate.
        let stale = Demand {
            mem_kb: 32 * MB,
            disk_kb: 1024 * MB,
            packages: 0,
        };
        est.feedback(&j, &stale, &Feedback::success(), &ctx);
        assert!(est.disk_estimate_kb(&j).unwrap() <= before);
        // Stale failure at a tiny grant must not lower it.
        let tiny = Demand {
            mem_kb: 32 * MB,
            disk_kb: 1,
            packages: 0,
        };
        let mid = est.disk_estimate_kb(&j).unwrap();
        est.feedback(&j, &tiny, &Feedback::failure(), &ctx);
        assert!(est.disk_estimate_kb(&j).unwrap() >= mid);
    }

    #[test]
    fn scope_is_group_and_matches_the_memory_channel() {
        let est = estimator(2.0, 0.0);
        let j = job(32, 512, 100);
        match est.estimate_scope(&j) {
            EstimateScope::Group(_) => {}
            other => panic!("expected Group scope, got {other:?}"),
        }
        assert_eq!(
            est.estimate_scope(&j),
            est.memory_channel().estimate_scope(&j)
        );
    }

    #[test]
    #[should_panic(expected = "disk alpha must exceed 1")]
    fn rejects_disk_alpha_at_most_one() {
        let _ = estimator(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "disk beta must be in [0, 1)")]
    fn rejects_disk_beta_of_one() {
        let _ = estimator(2.0, 1.0);
    }
}
