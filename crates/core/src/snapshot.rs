//! Durable estimator learning state.
//!
//! The paper's estimators earn their keep over months of feedback — a
//! scheduler restart that forgets every similarity group's learned estimate
//! throws that investment away. [`SnapshotState`] is the portable form of
//! that state: a versioned enum with one variant per estimator family that
//! has per-group state worth persisting. Estimators expose it through
//! [`ResourceEstimator::snapshot_state`] and
//! [`ResourceEstimator::restore_state`]; formats (e.g. the service crate's
//! binary codec) serialize it via the derived serde impls.
//!
//! Snapshots also have to survive *resharding*: the estimator service
//! splits its groups across worker shards by `SimilarityKey::stable_hash`,
//! and a snapshot taken with one shard count must restore onto another.
//! [`SnapshotState::partition`] and [`SnapshotState::merge`] implement
//! exactly that routing, using the same stable hash the shards themselves
//! use, so `merge(partition(s, n))` is the identity on sorted state for
//! every `n`.
//!
//! [`ResourceEstimator::snapshot_state`]: crate::traits::ResourceEstimator::snapshot_state
//! [`ResourceEstimator::restore_state`]: crate::traits::ResourceEstimator::restore_state

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::last_instance::PersistedLastGroup;
use crate::similarity::SimilarityKey;
use crate::successive::PersistedGroup;

/// Portable learning state of one estimator, versioned per family.
///
/// Each variant is frozen once released: a change to a family's persisted
/// fields gets a *new* variant (`SuccessiveV2`, ...) so old snapshot files
/// keep deserializing. The enum is `#[non_exhaustive]` for the same reason
/// — match with a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SnapshotState {
    /// Algorithm 1 ([`crate::successive::SuccessiveApproximation`]) state:
    /// the per-group `(Eᵢ, αᵢ)` pairs plus restore points and counters.
    SuccessiveV1 {
        /// Every similarity group's learning state, sorted by key.
        groups: Vec<PersistedGroup>,
    },
    /// [`crate::last_instance::LastInstance`] state: per-group recent-usage
    /// windows and poison bits.
    LastInstanceV1 {
        /// Every similarity group's observation window, sorted by key.
        groups: Vec<PersistedLastGroup>,
    },
}

impl SnapshotState {
    /// Short, stable name of the variant, used in errors and file headers.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotState::SuccessiveV1 { .. } => "successive-v1",
            SnapshotState::LastInstanceV1 { .. } => "last-instance-v1",
        }
    }

    /// Number of similarity groups the snapshot carries.
    pub fn group_count(&self) -> usize {
        match self {
            SnapshotState::SuccessiveV1 { groups } => groups.len(),
            SnapshotState::LastInstanceV1 { groups } => groups.len(),
        }
    }

    /// Sort groups by similarity key, the canonical on-disk order.
    pub fn sort(&mut self) {
        match self {
            SnapshotState::SuccessiveV1 { groups } => groups.sort_by_key(|g| g.key),
            SnapshotState::LastInstanceV1 { groups } => groups.sort_by_key(|g| g.key),
        }
    }

    /// Split into `shards` parts, routing each group to part
    /// `key.stable_hash() % shards` — the same routing the estimator
    /// service uses for live queries, so part `i` is exactly shard `i`'s
    /// state. Group order within each part is preserved.
    ///
    /// # Panics
    /// Panics when `shards == 0` (an invariant of every caller: a service
    /// always has at least one shard).
    pub fn partition(self, shards: usize) -> Vec<SnapshotState> {
        assert!(
            shards > 0,
            "invariant: partition requires at least one shard"
        );
        fn route<G: Clone>(
            groups: Vec<G>,
            shards: usize,
            key: impl Fn(&G) -> SimilarityKey,
        ) -> Vec<Vec<G>> {
            let mut parts: Vec<Vec<G>> = vec![Vec::new(); shards];
            for group in groups {
                let shard = (key(&group).stable_hash() % shards as u64) as usize;
                parts[shard].push(group);
            }
            parts
        }
        match self {
            SnapshotState::SuccessiveV1 { groups } => route(groups, shards, |g| g.key)
                .into_iter()
                .map(|groups| SnapshotState::SuccessiveV1 { groups })
                .collect(),
            SnapshotState::LastInstanceV1 { groups } => route(groups, shards, |g| g.key)
                .into_iter()
                .map(|groups| SnapshotState::LastInstanceV1 { groups })
                .collect(),
        }
    }

    /// Combine per-shard parts back into one snapshot, the inverse of
    /// [`SnapshotState::partition`]. The result is sorted by key, so the
    /// merged form is independent of the shard count it was taken under.
    ///
    /// # Errors
    /// All parts must be the same variant; mixing families returns
    /// [`SnapshotError::Mismatch`], and an empty part list is rejected as
    /// [`SnapshotError::Empty`] (there is no way to pick a variant).
    pub fn merge(parts: Vec<SnapshotState>) -> Result<SnapshotState, SnapshotError> {
        let mut iter = parts.into_iter();
        let mut merged = iter.next().ok_or(SnapshotError::Empty)?;
        for part in iter {
            match (&mut merged, part) {
                (
                    SnapshotState::SuccessiveV1 { groups },
                    SnapshotState::SuccessiveV1 { groups: more },
                ) => groups.extend(more),
                (
                    SnapshotState::LastInstanceV1 { groups },
                    SnapshotState::LastInstanceV1 { groups: more },
                ) => groups.extend(more),
                (merged, part) => {
                    return Err(SnapshotError::Mismatch {
                        expected: merged.kind(),
                        found: part.kind(),
                    })
                }
            }
        }
        merged.sort();
        Ok(merged)
    }
}

/// Why a snapshot could not be taken, restored, or combined.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The estimator keeps no persistable state (or does not implement
    /// snapshotting yet).
    Unsupported {
        /// `name()` of the estimator that was asked.
        estimator: &'static str,
    },
    /// A snapshot of one estimator family was offered to another.
    Mismatch {
        /// Variant kind the estimator can restore.
        expected: &'static str,
        /// Variant kind the snapshot actually carries.
        found: &'static str,
    },
    /// [`SnapshotState::merge`] was called with no parts.
    Empty,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Unsupported { estimator } => {
                write!(f, "estimator {estimator} does not support state snapshots")
            }
            SnapshotError::Mismatch { expected, found } => write!(
                f,
                "snapshot kind mismatch: estimator restores {expected}, snapshot holds {found}"
            ),
            SnapshotError::Empty => write!(f, "cannot merge an empty list of snapshot parts"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityPolicy;
    use crate::successive::{SuccessiveApproximation, SuccessiveConfig};
    use crate::traits::{EstimateContext, Feedback, ResourceEstimator};
    use resmatch_cluster::CapacityLadder;
    use resmatch_workload::job::JobBuilder;

    fn learned_state(users: u32) -> SnapshotState {
        let mut est = SuccessiveApproximation::new(
            SuccessiveConfig::default(),
            CapacityLadder::new(vec![32 * 1024, 16 * 1024, 8 * 1024]),
        );
        let ctx = EstimateContext::default();
        for user in 0..users {
            let job = JobBuilder::new(u64::from(user))
                .user(user)
                .app(user % 7)
                .requested_mem_kb(32 * 1024)
                .used_mem_kb(4 * 1024)
                .build();
            let d = est.estimate(&job, &ctx);
            est.feedback(&job, &d, &Feedback::success(), &ctx);
        }
        est.snapshot_state()
            .expect("successive approximation supports snapshots")
    }

    #[test]
    fn partition_then_merge_is_identity() {
        let state = learned_state(257);
        for shards in [1usize, 2, 3, 8, 64] {
            let parts = state.clone().partition(shards);
            assert_eq!(parts.len(), shards);
            let total: usize = parts.iter().map(SnapshotState::group_count).sum();
            assert_eq!(total, state.group_count());
            let merged = SnapshotState::merge(parts).expect("same-kind parts merge");
            assert_eq!(merged, state, "shards = {shards}");
        }
    }

    #[test]
    fn partition_routes_by_stable_hash() {
        let state = learned_state(64);
        let shards = 8usize;
        let parts = state.partition(shards);
        for (index, part) in parts.iter().enumerate() {
            let SnapshotState::SuccessiveV1 { groups } = part else {
                panic!("unexpected variant");
            };
            for g in groups {
                assert_eq!(g.key.stable_hash() % shards as u64, index as u64);
            }
        }
    }

    #[test]
    fn merge_rejects_mixed_kinds() {
        let successive = learned_state(2);
        let last = SnapshotState::LastInstanceV1 { groups: Vec::new() };
        let err = SnapshotState::merge(vec![successive, last]).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }));
        assert!(err.to_string().contains("successive-v1"));
    }

    #[test]
    fn merge_rejects_empty() {
        assert_eq!(
            SnapshotState::merge(Vec::new()).unwrap_err(),
            SnapshotError::Empty
        );
    }

    #[test]
    fn default_trait_impl_reports_unsupported() {
        let mut est = crate::baseline::PassThrough;
        assert!(est.snapshot_state().is_none());
        let err = est.restore_state(learned_state(1)).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::Unsupported {
                estimator: "pass-through"
            }
        );
    }

    #[test]
    fn snapshot_policy_key_round_trip() {
        // Keys with partial fields (policy dropping the request) must route
        // and merge the same way.
        let mut est = SuccessiveApproximation::new(
            SuccessiveConfig {
                policy: SimilarityPolicy::UserApp,
                ..SuccessiveConfig::default()
            },
            CapacityLadder::new(vec![32 * 1024]),
        );
        let ctx = EstimateContext::default();
        for user in 0..10u32 {
            let job = JobBuilder::new(u64::from(user))
                .user(user)
                .app(1)
                .requested_mem_kb(32 * 1024)
                .used_mem_kb(1024)
                .build();
            let d = est.estimate(&job, &ctx);
            est.feedback(&job, &d, &Feedback::success(), &ctx);
        }
        let state = est.snapshot_state().expect("supported");
        let merged = SnapshotState::merge(state.clone().partition(4)).expect("merge");
        assert_eq!(merged, state);
    }
}
