//! Robust bisection refinement — the §2.3 extension.
//!
//! Algorithm 1 assumes every member of a similarity group uses the same
//! actual capacity; the paper notes that for wider groups "this problem can
//! be solved using a class of robust line search algorithms" (citing
//! Anderson & Ferris's direct search for noisy evaluations). This estimator
//! implements that extension: per group it maintains a *bracket*
//! `(lo, hi]` — `lo` the largest allocation observed to fail, `hi` the
//! smallest observed to succeed — and probes the geometric midpoint until
//! the bracket is tight, then serves `hi`.
//!
//! Heterogeneous groups are handled by bracket repair: when a member fails
//! at (or above) the accepted `hi`, the bracket is re-opened up to the
//! request, so the estimate climbs toward the group's *maximum* usage
//! instead of oscillating.

use resmatch_cluster::Demand;
use resmatch_workload::Job;

use crate::similarity::{GroupTable, SimilarityPolicy};
use crate::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};

/// Tunables for [`RobustBisection`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustConfig {
    /// Stop probing when `hi / lo` falls below this (> 1).
    pub tolerance: f64,
    /// Similarity keying.
    pub policy: SimilarityPolicy,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            tolerance: 1.25,
            policy: SimilarityPolicy::UserAppRequest,
        }
    }
}

#[derive(Debug, Clone)]
struct Bracket {
    /// Largest allocation that failed (0 until a failure is seen).
    lo: f64,
    /// Smallest allocation that succeeded (starts at the request).
    hi: f64,
    request: f64,
    /// True until the first feedback arrives; the virgin submission trusts
    /// the request.
    virgin: bool,
}

impl Bracket {
    fn converged(&self, tolerance: f64) -> bool {
        self.lo > 0.0 && self.hi / self.lo.max(1.0) <= tolerance
    }

    fn probe(&self, tolerance: f64) -> f64 {
        if self.converged(tolerance) {
            self.hi
        } else if self.lo <= 0.0 {
            // No failure yet: halve, like Algorithm 1 with α = 2.
            self.hi / 2.0
        } else {
            (self.lo * self.hi).sqrt()
        }
    }
}

/// The robust direct-search estimator.
pub struct RobustBisection {
    cfg: RobustConfig,
    groups: GroupTable<Bracket>,
}

impl RobustBisection {
    /// Create with the given configuration.
    ///
    /// # Panics
    /// Panics unless `tolerance > 1`.
    pub fn new(cfg: RobustConfig) -> Self {
        assert!(cfg.tolerance > 1.0, "tolerance must exceed 1");
        let policy = cfg.policy;
        RobustBisection {
            cfg,
            groups: GroupTable::new(policy),
        }
    }

    /// Number of groups observed.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group's current bracket `(lo, hi)`, if it exists.
    pub fn bracket(&self, job: &Job) -> Option<(f64, f64)> {
        self.groups.get(job).map(|b| (b.lo, b.hi))
    }
}

impl ResourceEstimator for RobustBisection {
    fn name(&self) -> &'static str {
        "robust-bisection"
    }

    fn estimate(&mut self, job: &Job, _ctx: &EstimateContext) -> Demand {
        let tolerance = self.cfg.tolerance;
        let group = self.groups.get_or_insert_with(job, |j| {
            let request = j.requested_mem_kb as f64;
            Bracket {
                lo: 0.0,
                hi: request,
                request,
                virgin: true,
            }
        });
        // The very first submission trusts the request; afterwards probe
        // the bracket.
        let mem = if group.virgin {
            group.request
        } else {
            group.probe(tolerance)
        };
        let mem_kb = (mem.ceil().max(64.0) as u64).min(job.requested_mem_kb);
        Demand {
            mem_kb,
            disk_kb: job.requested_disk_kb,
            packages: job.requested_packages,
        }
    }

    fn feedback(&mut self, job: &Job, granted: &Demand, fb: &Feedback, _ctx: &EstimateContext) {
        let Some(group) = self.groups.get_mut(job) else {
            return;
        };
        let g = granted.mem_kb as f64;
        group.virgin = false;
        if fb.is_success() {
            group.hi = group.hi.min(g);
        } else {
            group.lo = group.lo.max(g);
            if group.lo >= group.hi {
                // A member outgrew the accepted ceiling: re-open the bracket
                // toward the request.
                group.hi = group.request.max(group.lo);
            }
        }
    }

    fn estimate_scope(&self, job: &Job) -> EstimateScope {
        // Each bracket is private to its group; feedback narrows only the
        // fed-back job's own bracket.
        EstimateScope::Group(self.groups.policy().key(job).stable_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn job(req_mb: u64, used_mb: u64) -> Job {
        JobBuilder::new(1)
            .user(1)
            .app(1)
            .requested_mem_kb(req_mb * MB)
            .used_mem_kb(used_mb * MB)
            .build()
    }

    /// Run estimate/feedback cycles where success means granted >= used.
    fn drive(est: &mut RobustBisection, j: &Job, cycles: usize) -> u64 {
        let ctx = EstimateContext::default();
        let mut last = 0;
        for _ in 0..cycles {
            let d = est.estimate(j, &ctx);
            last = d.mem_kb;
            let fb = if d.mem_kb >= j.used_mem_kb {
                Feedback::success()
            } else {
                Feedback::failure()
            };
            est.feedback(j, &d, &fb, &ctx);
        }
        last
    }

    #[test]
    fn first_submission_trusts_request() {
        let mut e = RobustBisection::new(RobustConfig::default());
        let d = e.estimate(&job(64, 5), &EstimateContext::default());
        assert_eq!(d.mem_kb, 64 * MB);
    }

    #[test]
    fn converges_to_tight_bound() {
        let mut e = RobustBisection::new(RobustConfig::default());
        let j = job(64, 5);
        let settled = drive(&mut e, &j, 25);
        // Converged estimate covers usage within the tolerance.
        assert!(settled >= 5 * MB, "{settled}");
        assert!(
            (settled as f64) <= 5.0 * MB as f64 * 1.6,
            "settled {settled} too loose"
        );
    }

    #[test]
    fn tighter_tolerance_gets_closer() {
        let loose = {
            let mut e = RobustBisection::new(RobustConfig {
                tolerance: 2.0,
                ..RobustConfig::default()
            });
            drive(&mut e, &job(64, 5), 30)
        };
        let tight = {
            let mut e = RobustBisection::new(RobustConfig {
                tolerance: 1.05,
                ..RobustConfig::default()
            });
            drive(&mut e, &job(64, 5), 60)
        };
        assert!(tight <= loose);
        assert!(tight >= 5 * MB);
    }

    #[test]
    fn heterogeneous_group_climbs_to_max_member() {
        // Members alternate between 5 MB and 18 MB of usage — the paper's
        // §2.3 J1/J2 example, where Algorithm 1 gets stuck. The bracket must
        // end up covering the larger member.
        let mut e = RobustBisection::new(RobustConfig::default());
        let ctx = EstimateContext::default();
        let small = job(64, 5);
        let large = job(64, 18);
        for i in 0..60 {
            let j = if i % 2 == 0 { &small } else { &large };
            let d = e.estimate(j, &ctx);
            let fb = if d.mem_kb >= j.used_mem_kb {
                Feedback::success()
            } else {
                Feedback::failure()
            };
            e.feedback(j, &d, &fb, &ctx);
        }
        // After convergence both members must succeed.
        let d = e.estimate(&large, &ctx);
        assert!(d.mem_kb >= 18 * MB, "estimate {} starves J2", d.mem_kb);
        assert!(d.mem_kb < 64 * MB, "no reduction achieved at all");
    }

    #[test]
    fn failures_never_push_above_request() {
        let mut e = RobustBisection::new(RobustConfig::default());
        let j = job(16, 16); // usage equals request: every reduction fails
        let ctx = EstimateContext::default();
        for _ in 0..20 {
            let d = e.estimate(&j, &ctx);
            assert!(d.mem_kb <= 16 * MB);
            let fb = if d.mem_kb >= j.used_mem_kb {
                Feedback::success()
            } else {
                Feedback::failure()
            };
            e.feedback(&j, &d, &fb, &ctx);
        }
        // Must settle back at the request, which is the only safe value.
        let d = e.estimate(&j, &ctx);
        assert_eq!(d.mem_kb, 16 * MB);
    }

    #[test]
    fn bracket_inspection() {
        let mut e = RobustBisection::new(RobustConfig::default());
        let j = job(64, 5);
        assert!(e.bracket(&j).is_none());
        drive(&mut e, &j, 3);
        let (lo, hi) = e.bracket(&j).unwrap();
        assert!(lo < hi);
        assert!(hi <= 64.0 * MB as f64);
    }

    #[test]
    #[should_panic(expected = "tolerance must exceed 1")]
    fn rejects_unit_tolerance() {
        let _ = RobustBisection::new(RobustConfig {
            tolerance: 1.0,
            ..RobustConfig::default()
        });
    }
}
