//! Property-based tests on estimator invariants.
//!
//! The load-bearing contract: an estimator's demand never exceeds the job's
//! request on any axis, whatever feedback history it has seen — that is
//! what makes estimation purely capacity-*freeing*.

use proptest::prelude::*;
use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_core::prelude::*;
use resmatch_workload::job::JobBuilder;
use resmatch_workload::Job;

const MB: u64 = 1024;

/// A compact script of job submissions with outcomes decided by usage vs.
/// granted capacity (like the simulator does).
#[derive(Debug, Clone)]
struct Submission {
    user: u32,
    app: u32,
    req_mb: u64,
    used_frac: f64,
}

fn arb_submissions() -> impl Strategy<Value = Vec<Submission>> {
    prop::collection::vec(
        (0u32..4, 0u32..3, 1u64..33, 0.01f64..1.0).prop_map(|(user, app, req_mb, used_frac)| {
            Submission {
                user,
                app,
                req_mb,
                used_frac,
            }
        }),
        1..80,
    )
}

fn to_job(id: u64, s: &Submission) -> Job {
    let req = s.req_mb * MB;
    let used = ((req as f64 * s.used_frac) as u64).max(1);
    JobBuilder::new(id)
        .user(s.user)
        .app(s.app)
        .requested_mem_kb(req)
        .used_mem_kb(used)
        .build()
}

fn ladder() -> CapacityLadder {
    CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB, 2 * MB, MB])
}

/// Drive an estimator through the script; assert the contract at each step.
fn assert_contract(
    est: &mut dyn ResourceEstimator,
    subs: &[Submission],
) -> Result<(), TestCaseError> {
    let ctx = EstimateContext::default();
    let l = ladder();
    for (i, s) in subs.iter().enumerate() {
        let job = to_job(i as u64, s);
        let d = est.estimate(&job, &ctx);
        prop_assert!(
            d.mem_kb <= job.requested_mem_kb,
            "{}: demand {} exceeds request {}",
            est.name(),
            d.mem_kb,
            job.requested_mem_kb
        );
        prop_assert!(d.mem_kb > 0, "{}: zero demand", est.name());
        prop_assert_eq!(d.packages & !job.requested_packages, 0);
        // Outcome by the simulator's rule: the node granted is the rung
        // covering the demand.
        let node = l.round_up(d.mem_kb).unwrap_or(d.mem_kb);
        let success = job.used_mem_kb <= node;
        let fb = if success {
            Feedback::explicit(true, Demand::memory(job.used_mem_kb))
        } else {
            Feedback::explicit(false, Demand::memory(node))
        };
        est.feedback(&job, &d, &fb, &ctx);
    }
    Ok(())
}

proptest! {
    #[test]
    fn successive_never_exceeds_request(subs in arb_submissions()) {
        let mut est = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder());
        assert_contract(&mut est, &subs)?;
    }

    #[test]
    fn successive_contract_holds_for_any_alpha_beta(
        subs in arb_submissions(),
        alpha in 1.01f64..16.0,
        beta in 0.0f64..0.99,
    ) {
        let mut est = SuccessiveApproximation::new(
            SuccessiveConfig {
                alpha,
                beta,
                policy: resmatch_core::similarity::SimilarityPolicy::UserAppRequest,
            },
            ladder(),
        );
        assert_contract(&mut est, &subs)?;
    }

    #[test]
    fn last_instance_never_exceeds_request(subs in arb_submissions()) {
        let mut est = LastInstance::new(LastInstanceConfig::default());
        assert_contract(&mut est, &subs)?;
    }

    #[test]
    fn regression_never_exceeds_request(subs in arb_submissions()) {
        let mut est = RegressionEstimator::new(RegressionConfig {
            min_samples: 5,
            refit_interval: 7,
            ..RegressionConfig::default()
        });
        assert_contract(&mut est, &subs)?;
    }

    #[test]
    fn reinforcement_never_exceeds_request(subs in arb_submissions(), seed in 0u64..1000) {
        let mut est = ReinforcementEstimator::new(ReinforcementConfig {
            seed,
            ..ReinforcementConfig::default()
        });
        assert_contract(&mut est, &subs)?;
    }

    #[test]
    fn robust_never_exceeds_request(subs in arb_submissions()) {
        let mut est = RobustBisection::new(RobustConfig::default());
        assert_contract(&mut est, &subs)?;
    }

    #[test]
    fn successive_estimates_are_monotone_between_failures(
        req_mb in 2u64..33,
        used_frac in 0.01f64..1.0,
        cycles in 2usize..30,
    ) {
        // Within a streak of successes, granted capacity never increases.
        let mut est = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder());
        let ctx = EstimateContext::default();
        let l = ladder();
        let mut last_granted = u64::MAX;
        for i in 0..cycles {
            let s = Submission { user: 1, app: 1, req_mb, used_frac };
            let job = to_job(i as u64, &s);
            let d = est.estimate(&job, &ctx);
            let node = l.round_up(d.mem_kb).unwrap_or(d.mem_kb);
            let success = job.used_mem_kb <= node;
            if success {
                prop_assert!(d.mem_kb <= last_granted);
                last_granted = d.mem_kb;
            } else {
                last_granted = u64::MAX; // restore may raise the estimate
            }
            est.feedback(
                &job,
                &d,
                &if success { Feedback::success() } else { Feedback::failure() },
                &ctx,
            );
        }
    }

    #[test]
    fn oracle_and_passthrough_are_exact(subs in arb_submissions()) {
        let ctx = EstimateContext::default();
        let mut oracle = Oracle;
        let mut pt = PassThrough;
        for (i, s) in subs.iter().enumerate() {
            let job = to_job(i as u64, s);
            prop_assert_eq!(oracle.estimate(&job, &ctx).mem_kb, job.used_mem_kb);
            prop_assert_eq!(pt.estimate(&job, &ctx).mem_kb, job.requested_mem_kb);
        }
    }
}
