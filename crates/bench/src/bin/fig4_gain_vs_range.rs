//! Figure 4: possible gain vs. group similarity range.
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig4`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig4_gain_vs_range [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig4_gain_vs_range");
}
