//! Figure 4: possible gain from estimation vs. group similarity.
//!
//! For every similarity group with >= 10 jobs, the paper plots the ratio of
//! requested memory to the group's maximum used memory (the reclaimable
//! head-room) against the ratio of maximum to minimum used memory (the
//! similarity range). Most groups sit at small ranges — evidence the
//! similarity criterion works — and some combine high gain (an order of
//! magnitude) with tight similarity, the ideal estimation targets.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig4_gain_vs_range [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_workload::analysis::gain_vs_range;

fn main() {
    let args = ExperimentArgs::parse(122_055);
    let trace = paper_trace(args);

    header("Figure 4: gain vs. similarity range (groups with >= 10 jobs)");
    let points = gain_vs_range(&trace, 10);
    println!("groups plotted: {}\n", points.len());

    // A textual 2-D density: ranges on rows, gains on columns.
    let range_edges = [1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0, f64::INFINITY];
    let gain_edges = [1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 32.0, f64::INFINITY];
    println!(
        "{:<16} {}",
        "range \\ gain",
        gain_edges
            .windows(2)
            .map(|w| format!("{:>8}", format!("<{:.0}", w[1].min(99.0))))
            .collect::<String>()
    );
    for rw in range_edges.windows(2) {
        let row: String = gain_edges
            .windows(2)
            .map(|gw| {
                let n = points
                    .iter()
                    .filter(|p| {
                        p.range >= rw[0] && p.range < rw[1] && p.gain >= gw[0] && p.gain < gw[1]
                    })
                    .count();
                format!("{n:>8}")
            })
            .collect();
        let label = if rw[1].is_infinite() {
            format!(">={:.2}", rw[0])
        } else {
            format!("[{:.2},{:.2})", rw[0], rw[1])
        };
        println!("{label:<16} {row}");
    }

    header("headline statistics vs. paper");
    let tight = points.iter().filter(|p| p.range <= 1.1).count();
    let high_gain_tight = points
        .iter()
        .filter(|p| p.gain >= 10.0 && p.range <= 1.25)
        .count();
    println!(
        "groups at range <= 1.1:        {:>6.1}%  (paper: 'a large fraction')",
        tight as f64 / points.len().max(1) as f64 * 100.0
    );
    println!(
        "gain >= 10x with range <= 1.25: {high_gain_tight} groups  \
         (paper: such groups exist and are the best targets)"
    );
}
