//! Figure 7: the single-group estimate trajectory (32 -> 16 -> 8 -> 4 -> 8).
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig7`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig7_trajectory [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig7_trajectory");
}
