//! Figure 7: estimated memory for a single similarity group across cycles.
//!
//! The paper traces one group whose jobs request 32 MB and use slightly
//! more than 5 MB: the estimate halves (32 → 16 → 8), the probe at 4 MB
//! fails, the estimate restores to 8 MB and freezes — a four-fold
//! reduction.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig7_trajectory`

use resmatch_bench::{header, MB};
use resmatch_cluster::CapacityLadder;
use resmatch_core::prelude::*;
use resmatch_workload::job::JobBuilder;

fn main() {
    header("Figure 7: estimate trajectory (request 32 MB, actual ~5.2 MB)");
    let ladder = CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB]);
    let mut est = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder.clone());
    let ctx = EstimateContext::default();

    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "cycle", "granted (MB)", "outcome", "E_i (MB)"
    );
    for cycle in 1..=8 {
        let job = JobBuilder::new(cycle)
            .user(1)
            .app(1)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(5 * MB + 256)
            .build();
        let demand = est.estimate(&job, &ctx);
        let node = ladder.round_up(demand.mem_kb).unwrap_or(demand.mem_kb);
        let ok = job.used_mem_kb <= node;
        est.feedback(
            &job,
            &demand,
            &if ok {
                Feedback::success()
            } else {
                Feedback::failure()
            },
            &ctx,
        );
        let snap = est.group_snapshot(&job).expect("group exists");
        let bar = "#".repeat((demand.mem_kb / MB) as usize);
        println!(
            "{cycle:>6} {:>14} {:>12} {:>10.1}  {bar}",
            demand.mem_kb / MB,
            if ok { "completed" } else { "FAILED" },
            snap.estimate_kb / MB as f64,
        );
    }

    header("shape check vs. paper");
    println!(
        "expected trajectory 32 -> 16 -> 8 -> 4(fail) -> 8 frozen; final\n\
         estimate is a four-fold reduction from the request, as published."
    );
}
