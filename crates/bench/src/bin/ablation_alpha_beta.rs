//! Ablation: alpha / beta / similarity-policy parameter study.
//!
//! Thin wrapper over [`resmatch_repro::experiments::ablation_alpha_beta`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_alpha_beta [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("ablation_alpha_beta");
}
