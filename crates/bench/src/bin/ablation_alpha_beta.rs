//! Ablation: the estimator parameters α and β (§2.3's trade-off discussion).
//!
//! Large α reaches small machines in fewer steps but overshoots more (the
//! paper's 32→3.2 MB example); small α is conservative and can stall above
//! usable pools (the α = 1.2 example). β > 0 lets a group refine after a
//! failure instead of freezing. The paper picks α = 2, β = 0 as the best
//! trade-off; this ablation measures why.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_alpha_beta [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_core::similarity::SimilarityPolicy;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

fn main() {
    let args = ExperimentArgs::parse(15_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);

    let baseline = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scaled);
    let base_util = baseline.utilization();

    header("ablation: alpha (beta = 0)");
    println!(
        "{:>8} {:>8} {:>10} {:>9} {:>10}",
        "alpha", "util", "vs. base", "fail%", "lowered%"
    );
    for alpha in [1.2, 1.5, 2.0, 4.0, 10.0] {
        let spec = EstimatorSpec::Successive(SuccessiveConfig {
            alpha,
            beta: 0.0,
            policy: SimilarityPolicy::UserAppRequest,
        });
        let r = Simulation::new(SimConfig::default(), cluster.clone(), spec).run(&scaled);
        println!(
            "{:>8.1} {:>8.3} {:>9.0}% {:>8.3}% {:>9.1}%",
            alpha,
            r.utilization(),
            (r.utilization() / base_util - 1.0) * 100.0,
            r.failed_execution_fraction() * 100.0,
            r.lowered_job_fraction() * 100.0,
        );
    }

    header("ablation: beta (alpha = 2)");
    println!(
        "{:>8} {:>8} {:>10} {:>9} {:>10}",
        "beta", "util", "vs. base", "fail%", "lowered%"
    );
    for beta in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let spec = EstimatorSpec::Successive(SuccessiveConfig {
            alpha: 2.0,
            beta,
            policy: SimilarityPolicy::UserAppRequest,
        });
        let r = Simulation::new(SimConfig::default(), cluster.clone(), spec).run(&scaled);
        println!(
            "{:>8.2} {:>8.3} {:>9.0}% {:>8.3}% {:>9.1}%",
            beta,
            r.utilization(),
            (r.utilization() / base_util - 1.0) * 100.0,
            r.failed_execution_fraction() * 100.0,
            r.lowered_job_fraction() * 100.0,
        );
    }

    header("ablation: similarity policy (alpha = 2, beta = 0)");
    println!(
        "{:<22} {:>8} {:>10} {:>9} {:>10}",
        "policy", "util", "vs. base", "fail%", "lowered%"
    );
    for (name, policy) in [
        ("user+app+request", SimilarityPolicy::UserAppRequest),
        ("user+app", SimilarityPolicy::UserApp),
        ("user", SimilarityPolicy::User),
        ("app+request", SimilarityPolicy::AppRequest),
    ] {
        let spec = EstimatorSpec::Successive(SuccessiveConfig {
            alpha: 2.0,
            beta: 0.0,
            policy,
        });
        let r = Simulation::new(SimConfig::default(), cluster.clone(), spec).run(&scaled);
        println!(
            "{:<22} {:>8.3} {:>9.0}% {:>8.3}% {:>9.1}%",
            name,
            r.utilization(),
            (r.utilization() / base_util - 1.0) * 100.0,
            r.failed_execution_fraction() * 100.0,
            r.lowered_job_fraction() * 100.0,
        );
    }
}
