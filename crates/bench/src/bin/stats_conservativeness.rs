//! §3.2 conservativeness: failure cost vs. estimation reach.
//!
//! Thin wrapper over [`resmatch_repro::experiments::conservativeness`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin stats_conservativeness [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("stats_conservativeness");
}
