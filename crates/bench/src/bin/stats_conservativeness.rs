//! §3.2 conservativeness: failure cost vs. estimation reach.
//!
//! "For all the different cluster configurations we tried, at most only
//! 0.01% of job executions resulted in failure due to insufficient
//! resources, while 15%-40% of jobs were successfully submitted for
//! execution with lower estimated resources than the job requests."
//!
//! Run: `cargo run --release -p resmatch-bench --bin stats_conservativeness [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_sim::prelude::*;

fn main() {
    let args = ExperimentArgs::parse(20_000);
    let trace = paper_trace(args);

    header("conservativeness across cluster configurations");
    println!("trace: {} jobs; alpha=2 beta=0; load 1.0\n", trace.len());

    let pools: Vec<u64> = vec![8, 12, 16, 20, 24, 28, 32];
    let points = run_cluster_sweep(
        &trace,
        &pools,
        EstimatorSpec::paper_successive(),
        SimConfig::default(),
        1.0,
    );

    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "pool (MB)", "failed execs", "fail rate", "lowered jobs"
    );
    let mut worst_fail = 0.0f64;
    let mut lowered_range = (1.0f64, 0.0f64);
    for p in &points {
        let fail = p.estimated.failed_execution_fraction();
        let lowered = p.estimated.lowered_job_fraction();
        worst_fail = worst_fail.max(fail);
        lowered_range = (lowered_range.0.min(lowered), lowered_range.1.max(lowered));
        println!(
            "{:>10} {:>14} {:>13.4}% {:>11.1}%",
            p.second_pool_mb,
            p.estimated.failed_executions,
            fail * 100.0,
            lowered * 100.0,
        );
    }

    header("headline statistics vs. paper");
    println!(
        "worst failure rate:   {:.4}%   (paper: at most ~0.01%)",
        worst_fail * 100.0
    );
    println!(
        "lowered-job range:    {:.1}% - {:.1}%   (paper: 15%-40%)",
        lowered_range.0 * 100.0,
        lowered_range.1 * 100.0
    );
}
