//! Matchmaking scenarios: disk-constrained and license-pool clusters.
//!
//! Thin wrapper over [`resmatch_repro::experiments::matchmaking`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin matchmaking_scenarios [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("matchmaking_scenarios");
}
