//! Figure 5: utilization vs. offered load, with and without estimation.
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig5`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig5_utilization [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig5_utilization");
}
