//! Figure 5: cluster utilization with and without resource estimation.
//!
//! Cluster: 512 nodes of 32 MB plus 512 of 24 MB; FCFS; implicit feedback;
//! Algorithm 1 with α = 2, β = 0. The paper reports a 58% improvement in
//! utilization at the saturation points (where the linear growth of
//! utilization against offered load stops).
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig5_utilization [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;

fn main() {
    let args = ExperimentArgs::parse(30_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);

    header("Figure 5: utilization vs. offered load (512x32MB + 512x24MB)");
    println!(
        "trace: {} jobs, FCFS, implicit feedback, alpha=2 beta=0\n",
        trace.len()
    );

    let sweep = SweepConfig::default()
        .with_loads(vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.5]);
    let base = run_load_sweep(&trace, &cluster, EstimatorSpec::PassThrough, &sweep);
    let est = run_load_sweep(&trace, &cluster, EstimatorSpec::paper_successive(), &sweep);

    let pool_busy = |r: &resmatch_sim::SimResult, mem_mb: u64| {
        r.pool_stats
            .iter()
            .find(|p| p.mem_kb == mem_mb * 1024)
            .map(|p| p.mean_busy_fraction)
            .unwrap_or(0.0)
    };
    println!(
        "{:>6} {:>13} {:>13} {:>7} {:>12} {:>12}",
        "load", "util (base)", "util (est.)", "ratio", "24MB (base)", "24MB (est.)"
    );
    for (b, e) in base.iter().zip(&est) {
        let ub = b.result.utilization();
        let ue = e.result.utilization();
        println!(
            "{:>6.2} {:>13.3} {:>13.3} {:>7.2} {:>12.3} {:>12.3}",
            b.offered_load,
            ub,
            ue,
            if ub > 0.0 { ue / ub } else { 1.0 },
            pool_busy(&b.result, 24),
            pool_busy(&e.result, 24),
        );
    }
    println!(
        "(the 24MB columns expose the mechanism: estimation puts the small\n\
         pool to work instead of leaving it idle behind inflated requests)"
    );

    header("saturation comparison vs. paper");
    let sat_base = saturation_utilization(
        &base
            .iter()
            .map(|p| p.result.utilization())
            .collect::<Vec<_>>(),
    );
    let sat_est = saturation_utilization(
        &est.iter()
            .map(|p| p.result.utilization())
            .collect::<Vec<_>>(),
    );
    println!("saturation utilization without estimation: {sat_base:.3}");
    println!("saturation utilization with estimation:    {sat_est:.3}");
    println!(
        "improvement:                                {:+.0}%   (paper: +58%)",
        (sat_est / sat_base - 1.0) * 100.0
    );
}
