//! Generator calibration against published CM5 statistics + cross-seed KS stability.
//!
//! Thin wrapper over [`resmatch_repro::experiments::calibration`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin validate_calibration [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("validate_calibration");
}
