//! Validate the synthetic generator against the paper's reference
//! statistics, and check its stability across seeds.
//!
//! Two levels of checking:
//! 1. **Targets** — the published LANL CM5 statistics (group density,
//!    over-provisioning fraction, group-size concentration) via
//!    `workload::calibration`.
//! 2. **Stability** — two independent seeds must draw the *same*
//!    distributions (over-provisioning ratios, runtimes, group sizes),
//!    verified with two-sample Kolmogorov–Smirnov tests. A generator whose
//!    statistics wobble across seeds would make the figure binaries
//!    seed-lottery experiments.
//!
//! Run: `cargo run --release -p resmatch-bench --bin validate_calibration [--jobs N]`

use resmatch_bench::{header, ExperimentArgs};
use resmatch_stats::ks::ks_two_sample;
use resmatch_workload::analysis::group_size_distribution;
use resmatch_workload::calibration::{measure, CalibrationReport, CalibrationTargets};
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::{Job, Workload};

fn trace(jobs: usize, seed: u64) -> Workload {
    generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    )
}

fn ratios(w: &Workload) -> Vec<f64> {
    w.jobs()
        .iter()
        .filter_map(Job::overprovisioning_ratio)
        .collect()
}

fn runtimes(w: &Workload) -> Vec<f64> {
    w.jobs().iter().map(|j| j.runtime.as_secs_f64()).collect()
}

fn group_sizes(w: &Workload) -> Vec<f64> {
    group_size_distribution(w)
        .iter()
        .flat_map(|b| std::iter::repeat_n(b.size as f64, b.groups))
        .collect()
}

fn main() {
    let args = ExperimentArgs::parse(122_055);

    header("level 1: published LANL CM5 statistics");
    let w = trace(args.jobs, args.seed);
    let report = CalibrationReport::compare(&measure(&w), &CalibrationTargets::paper());
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "statistic", "paper", "measured", "rel. err"
    );
    for c in &report.checks {
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>9.1}%",
            c.name,
            c.target,
            c.measured,
            c.relative_error * 100.0
        );
    }
    println!(
        "verdict: {} (worst relative error {:.1}%, tolerance 30%)",
        if report.passes(0.30) { "PASS" } else { "DRIFT" },
        report.worst_error() * 100.0
    );

    header("level 2: cross-seed distribution stability (two-sample KS)");
    let w2 = trace(args.jobs, args.seed.wrapping_add(1));
    println!(
        "{:<26} {:>10} {:>12} {:>8}",
        "distribution", "KS D", "p-value", "verdict"
    );
    for (name, a, b) in [
        ("over-provisioning ratio", ratios(&w), ratios(&w2)),
        ("runtime", runtimes(&w), runtimes(&w2)),
        ("group size", group_sizes(&w), group_sizes(&w2)),
    ] {
        match ks_two_sample(&a, &b) {
            Some(r) => println!(
                "{:<26} {:>10.4} {:>12.4} {:>8}",
                name,
                r.statistic,
                r.p_value,
                // Ratios and runtimes are drawn per *class*, so the
                // effective sample is the class count (~jobs/12), not the
                // job count — cross-seed D of a few percent is the expected
                // class-level sampling noise, and the practical bar is a
                // small absolute distance rather than the (hyper-sensitive)
                // iid p-value.
                if r.statistic < 0.08 {
                    "stable"
                } else {
                    "WOBBLY"
                }
            ),
            None => println!("{name:<26} (empty sample)"),
        }
    }
}
