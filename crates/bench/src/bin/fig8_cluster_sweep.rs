//! Figure 8: utilization ratio across cluster heterogeneity.
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig8`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig8_cluster_sweep [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig8_cluster_sweep");
}
