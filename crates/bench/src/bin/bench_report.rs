//! Machine-readable simulator throughput and memory report.
//!
//! Runs the same end-to-end scenarios as the criterion `simulation` bench
//! group, but with a plain `std::time::Instant` harness and a JSON artifact
//! (`BENCH_sim.json`) that CI can archive and diff across commits. Events
//! per second uses [`resmatch_sim::SimResult::events_processed`] as the
//! denominator-independent work measure: it is a deterministic property of
//! the scenario, so throughput differences are wall-clock differences.
//!
//! Four scenario tiers:
//!
//! - the classic 1k/5k matrix, rescaled to saturating load (queues stay
//!   populated, so in-queue refresh / candidate counting / backfill scans
//!   dominate);
//! - the full 122,055-job calibrated CM5 trace at its *natural* offered
//!   load (~0.45) — the repro pipeline's default scale — across
//!   fcfs/sjf/easy × pass_through/successive;
//! - the matchmaking tier: the same saturating workload enriched with
//!   synthetic disk/package attributes, allocated through compiled
//!   ClassAds (first-fit per scheduler, plus one ranked best-fit row);
//! - with `--full`, a 10-million-job synthetic stress fed through the
//!   streaming entry point with record retention off: peak heap stays flat
//!   no matter the trace length.
//!
//! Memory is tracked by a counting global allocator (bench-binary only —
//! the library crates stay `forbid(unsafe_code)`): each scenario reports
//! the allocation count and incremental peak heap of its final repetition.
//!
//! Run: `cargo run --release -p resmatch-bench --bin bench_report \
//!       [--jobs N] [--seed S] [--out PATH] [--full]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use resmatch_classad::{Matchmaker, PoolAd};
use resmatch_cluster::builder::{cm5_cluster, paper_cluster};
use resmatch_cluster::{Capacity, CapacityLadder, Cluster, ClusterBuilder, Demand};
use resmatch_core::prelude::Feedback;
use resmatch_service::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::attrs::{synthesize_attributes, AttrConfig};
use resmatch_workload::load::scale_to_load;
use resmatch_workload::synthetic::{generate, service_stream, stress_stream, Cm5Config};
use resmatch_workload::{Job, Workload};

/// Saturating offered load for the small matrix: queues stay populated, so
/// the hot paths this report guards actually dominate.
const TARGET_LOAD: f64 = 1.0;
const TOTAL_NODES: u32 = 1024;
/// The paper's trace length — the default repro scale.
const TRACE_JOBS: usize = 122_055;
/// Streaming stress length under `--full`.
const STRESS_JOBS: u64 = 10_000_000;
/// Online-service tier defaults: a million estimate/observe operation pairs
/// over a million similarity groups, hash-sharded eight ways.
const SERVICE_OPS: u64 = 1_000_000;
const SERVICE_GROUPS: u64 = 1_000_000;
const SERVICE_SHARDS: usize = 8;
const SERVICE_BATCH: usize = 1024;

/// Counting allocator: allocation events, live bytes, and peak live bytes.
/// `current`/`peak` track totals; scenarios measure deltas around a run.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        on_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn trace(jobs: usize, seed: u64) -> Workload {
    let w = natural_trace(jobs, seed);
    scale_to_load(&w, TOTAL_NODES, TARGET_LOAD)
}

/// The calibrated trace at its natural offered load (no rescaling) — what
/// `resmatch-repro` simulates by default at `jobs = 122_055`.
fn natural_trace(jobs: usize, seed: u64) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    );
    w.retain_max_nodes(512);
    w
}

struct Measurement {
    scenario: String,
    /// Queue discipline the scenario ran under (`fcfs`, `sjf`, `easy`) —
    /// kept as its own JSON field so the perf trajectory of each scheduler
    /// path can be tracked independently of scenario naming.
    scheduler: &'static str,
    jobs: usize,
    events_processed: u64,
    completed_jobs: usize,
    wall_s: f64,
    events_per_sec: f64,
    /// Allocation events during the final repetition (warm arena where the
    /// scenario reuses one).
    alloc_count: u64,
    /// Incremental peak heap of the final repetition: peak live bytes
    /// minus live bytes at its start, so pre-built inputs (the trace) are
    /// excluded and the engine's own footprint is what's measured.
    peak_heap_bytes: u64,
    /// Engine-level counters from the measured run. Tracked by the engine
    /// itself (no observer is attached — the timed runs stay on the
    /// zero-observer hot path).
    counters: RunCounters,
    /// Present only for the online-service tier: the service-specific
    /// throughput split (queries vs. batched feedback).
    service: Option<ServiceRow>,
}

/// Service-tier extras: rendered as a nested `"service"` JSON object so the
/// generic comparator keys (`events_per_sec` etc.) stay uniform across rows.
struct ServiceRow {
    shards: usize,
    feedback_batch: usize,
    /// Similarity groups present in the estimator state after the run.
    groups: usize,
    queries_per_sec: f64,
    feedback_per_sec: f64,
    /// Feedback batches applied during one measured pass.
    batches: u64,
}

/// Best-of-N wall clock: the minimum is the least noise-contaminated
/// estimate of the true cost on a shared machine. Allocation/peak-heap
/// deltas come from the final repetition.
fn measure<F>(
    scenario: &str,
    scheduler: &'static str,
    jobs: usize,
    reps: usize,
    mut run: F,
) -> Measurement
where
    F: FnMut() -> resmatch_sim::SimResult,
{
    let mut best_s = f64::INFINITY;
    let mut last = None;
    let mut alloc_count = 0;
    let mut peak_heap_bytes = 0;
    for rep in 0..reps {
        let final_rep = rep + 1 == reps;
        // Drop the previous result *before* baselining the final rep so
        // its records don't count against the measured peak.
        if final_rep {
            drop(last.take());
        }
        let (allocs_before, current_before) = if final_rep {
            let current = CURRENT_BYTES.load(Ordering::Relaxed);
            PEAK_BYTES.store(current, Ordering::Relaxed);
            (ALLOC_COUNT.load(Ordering::Relaxed), current)
        } else {
            (0, 0)
        };
        let t = Instant::now();
        let r = run();
        best_s = best_s.min(t.elapsed().as_secs_f64());
        if final_rep {
            alloc_count = ALLOC_COUNT.load(Ordering::Relaxed) - allocs_before;
            peak_heap_bytes = PEAK_BYTES
                .load(Ordering::Relaxed)
                .saturating_sub(current_before);
        }
        last = Some(r);
    }
    let r = last.expect("reps >= 1");
    println!(
        "{:<24} {:>8} {:>12} {:>10.3} {:>14.0} {:>10} {:>14}",
        scenario,
        jobs,
        r.events_processed,
        best_s,
        r.events_processed as f64 / best_s,
        alloc_count,
        peak_heap_bytes,
    );
    Measurement {
        scenario: scenario.to_string(),
        scheduler,
        jobs,
        events_processed: r.events_processed,
        completed_jobs: r.completed_jobs,
        wall_s: best_s,
        events_per_sec: r.events_processed as f64 / best_s,
        alloc_count,
        peak_heap_bytes,
        counters: r.counters,
        service: None,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"sim\",\n  \"unit\": \"events/sec\",\n  \"results\": [\n",
    );
    for (i, m) in measurements.iter().enumerate() {
        let c = &m.counters;
        let service = match &m.service {
            Some(s) => format!(
                ", \"service\": {{\"shards\": {}, \"feedback_batch\": {}, \"groups\": {}, \
                 \"queries_per_sec\": {:.1}, \"feedback_per_sec\": {:.1}, \"batches\": {}}}",
                s.shards,
                s.feedback_batch,
                s.groups,
                s.queries_per_sec,
                s.feedback_per_sec,
                s.batches,
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"jobs\": {}, \
             \"events_processed\": {}, \
             \"completed_jobs\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \
             \"alloc_count\": {}, \"peak_heap_bytes\": {}, \
             \"counters\": {{\"arrivals\": {}, \"admissions\": {}, \"started\": {}, \
             \"completed\": {}, \"failed\": {}, \"requeued\": {}, \
             \"estimator_bypassed\": {}, \"churn_events\": {}, \
             \"match_attempts\": {}, \"match_refusals\": {}}}{}}}{}\n",
            json_escape(&m.scenario),
            m.scheduler,
            m.jobs,
            m.events_processed,
            m.completed_jobs,
            m.wall_s,
            m.events_per_sec,
            m.alloc_count,
            m.peak_heap_bytes,
            c.arrivals,
            c.admissions,
            c.started,
            c.completed,
            c.failed,
            c.requeued,
            c.estimator_bypassed,
            c.churn_events,
            c.match_attempts,
            c.match_refusals,
            service,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The six-combination policy × estimator matrix over one workload, with a
/// per-scenario arena so warm repetitions show the steady-state allocation
/// profile.
fn matrix(measurements: &mut Vec<Measurement>, prefix: &str, w: &Workload, reps: usize) {
    let combos: [(&'static str, SchedulingPolicy); 3] = [
        ("fcfs", SchedulingPolicy::Fcfs),
        ("sjf", SchedulingPolicy::Sjf),
        ("easy", SchedulingPolicy::EasyBackfill),
    ];
    for (name, policy) in combos {
        for (est_name, est) in [
            ("pass_through", EstimatorSpec::PassThrough),
            ("successive", EstimatorSpec::paper_successive()),
        ] {
            let cfg = SimConfig::default().with_scheduling(policy);
            let mut arena = SimArena::default();
            measurements.push(measure(
                &format!("{prefix}{name}_{est_name}"),
                name,
                w.len(),
                reps,
                || Simulation::new(cfg, paper_cluster(24), est).run_with_arena(w, &mut arena),
            ));
        }
    }
}

/// Matchmaking tier: the paper cluster re-advertised with capability ads —
/// the 32 MB half carries a finite 2 GB scratch partition and the licensed
/// package set, the 24 MB half is unconstrained — and a workload enriched
/// with synthetic disk requests and package masks. Measures the compiled
/// ClassAd path end to end: one scenario per scheduler through the
/// first-fit matcher, plus a ranked (best-fit by memory) FCFS row to cover
/// the candidate-sort path.
fn matchmaking_tier(measurements: &mut Vec<Measurement>, jobs: usize, seed: u64, reps: usize) {
    let mut w = trace(jobs, seed);
    synthesize_attributes(&mut w, &AttrConfig::default(), seed);
    let cluster_ads = || -> (Cluster, Vec<PoolAd>) {
        let big = Capacity::new(32 * 1024, 2 * 1024 * 1024, 0xF);
        let small = Capacity::memory(24 * 1024);
        let cluster = ClusterBuilder::new()
            .pool_with(512, big)
            .pool_with(512, small)
            .build();
        let ads = vec![PoolAd::new(big).with_arch("cm5"), PoolAd::new(small)];
        (cluster, ads)
    };
    let combos: [(&'static str, SchedulingPolicy); 3] = [
        ("fcfs", SchedulingPolicy::Fcfs),
        ("sjf", SchedulingPolicy::Sjf),
        ("easy", SchedulingPolicy::EasyBackfill),
    ];
    for (name, policy) in combos {
        let cfg = SimConfig::default().with_scheduling(policy);
        let mut arena = SimArena::default();
        measurements.push(measure(
            &format!("matchmaking_{name}_successive"),
            name,
            w.len(),
            reps,
            || {
                let (cluster, ads) = cluster_ads();
                Simulation::new(cfg, cluster, EstimatorSpec::paper_successive())
                    .with_matchmaking(Box::new(Matchmaker::new(&ads)))
                    .run_with_arena(&w, &mut arena)
            },
        ));
    }
    let cfg = SimConfig::default();
    let mut arena = SimArena::default();
    measurements.push(measure(
        "matchmaking_fcfs_ranked",
        "fcfs",
        w.len(),
        reps,
        || {
            let (cluster, ads) = cluster_ads();
            let mm = Matchmaker::new(&ads)
                .with_rank("other.Memory")
                .expect("static rank expression");
            Simulation::new(cfg, cluster, EstimatorSpec::paper_successive())
                .with_matchmaking(Box::new(mm))
                .run_with_arena(&w, &mut arena)
        },
    ));
}

/// The simulator's outcome rule, applied service-side: success when usage
/// fits the covering rung of what was granted.
fn service_outcome(ladder: &CapacityLadder, job: &Job, granted: Demand) -> Feedback {
    let node = ladder.round_up(granted.mem_kb).unwrap_or(granted.mem_kb);
    Feedback::explicit(job.used_mem_kb <= node, Demand::memory(job.used_mem_kb))
}

/// Online-service tier: `resmatch-service` over a million-group synthetic
/// request stream in the deployment shape — jobs pre-routed by the shard
/// hash, one thread per shard, no cross-shard locking on the query path,
/// feedback applied as batched writes.
///
/// A warm pass first populates the group space so the measured passes
/// exercise steady-state lookups rather than first-touch insertion; the
/// stream itself is materialized up front so generation cost cannot
/// contaminate the query-path wall clock.
fn service_queries(measurements: &mut Vec<Measurement>, seed: u64, ops: u64, groups: u64) {
    let reps = 3;
    let spec = EstimatorSpec::paper_successive();
    let ladder = cm5_cluster().memory_ladder();
    let cfg = ServiceConfig::new(spec, ladder.clone())
        .shards(SERVICE_SHARDS)
        .feedback_batch(SERVICE_BATCH);
    let mut svc = EstimatorService::new(&cfg).expect("valid service config");

    let mut slices: Vec<Vec<Job>> = vec![Vec::new(); SERVICE_SHARDS];
    for job in service_stream(ops, groups, seed) {
        slices[svc.route(&job)].push(job);
    }

    for slice in &slices {
        for job in slice {
            let d = svc.estimate(job);
            let fb = service_outcome(&ladder, job, d);
            svc.observe(job, d, fb);
        }
    }
    svc.flush();
    let warm = svc.stats();

    let (router, mut shards) = svc.into_parts();
    let mut best_s = f64::INFINITY;
    let mut alloc_count = 0u64;
    let mut peak_heap_bytes = 0u64;
    for rep in 0..reps {
        let final_rep = rep + 1 == reps;
        let (allocs_before, current_before) = if final_rep {
            let current = CURRENT_BYTES.load(Ordering::Relaxed);
            PEAK_BYTES.store(current, Ordering::Relaxed);
            (ALLOC_COUNT.load(Ordering::Relaxed), current)
        } else {
            (0, 0)
        };
        let taken = std::mem::take(&mut shards);
        let t = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, slice) in taken.into_iter().zip(&slices) {
                let ladder = &ladder;
                handles.push(scope.spawn(move || {
                    let mut shard = shard;
                    for job in slice {
                        let d = shard.estimate(job);
                        let fb = service_outcome(ladder, job, d);
                        shard.observe(job, d, fb);
                    }
                    shard.flush();
                    shard
                }));
            }
            for handle in handles {
                shards.push(handle.join().expect("shard thread"));
            }
        });
        best_s = best_s.min(t.elapsed().as_secs_f64());
        if final_rep {
            alloc_count = ALLOC_COUNT.load(Ordering::Relaxed) - allocs_before;
            peak_heap_bytes = PEAK_BYTES
                .load(Ordering::Relaxed)
                .saturating_sub(current_before);
        }
    }

    let mut svc = EstimatorService::from_parts(spec, router, shards).expect("shards reassemble");
    let total = svc.stats();
    let reps_u64 = reps as u64;
    let applied_per_pass = (total.applied - warm.applied) / reps_u64;
    let batches_per_pass = (total.batches - warm.batches) / reps_u64;
    let built = svc
        .snapshot()
        .map(|doc| doc.state.group_count())
        .unwrap_or(0);
    let queries_per_sec = ops as f64 / best_s;
    let feedback_per_sec = applied_per_pass as f64 / best_s;
    println!(
        "{:<24} {:>8} {:>12} {:>10.3} {:>14.0} {:>10} {:>14}",
        "service_queries",
        ops,
        2 * ops,
        best_s,
        2.0 * ops as f64 / best_s,
        alloc_count,
        peak_heap_bytes,
    );
    println!(
        "  service: {queries_per_sec:.0} queries/sec, {feedback_per_sec:.0} feedback/sec \
         ({batches_per_pass} batches/pass), {built} groups, {SERVICE_SHARDS} shards"
    );
    measurements.push(Measurement {
        scenario: "service_queries".to_string(),
        scheduler: "service",
        jobs: ops as usize,
        events_processed: 2 * ops,
        completed_jobs: ops as usize,
        wall_s: best_s,
        events_per_sec: 2.0 * ops as f64 / best_s,
        alloc_count,
        peak_heap_bytes,
        counters: RunCounters::default(),
        service: Some(ServiceRow {
            shards: SERVICE_SHARDS,
            feedback_batch: SERVICE_BATCH,
            groups: built,
            queries_per_sec,
            feedback_per_sec,
            batches: batches_per_pass,
        }),
    });
}

fn main() {
    // Parsed by hand rather than via `ExperimentArgs::parse`, which
    // rejects flags it does not know — this binary adds `--out`/`--full`.
    let mut jobs = 5_000usize;
    let mut seed = 42u64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut full = false;
    let mut stress_jobs = STRESS_JOBS;
    let mut service_ops = SERVICE_OPS;
    let mut service_groups = SERVICE_GROUPS;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next();
        match flag.as_str() {
            "--jobs" => {
                jobs = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs an integer");
            }
            "--seed" => {
                seed = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => {
                out_path = value().expect("--out needs a path");
            }
            "--full" => full = true,
            "--stress-jobs" => {
                stress_jobs = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--stress-jobs needs an integer");
            }
            "--service-ops" => {
                service_ops = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--service-ops needs an integer");
            }
            "--service-groups" => {
                service_groups = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--service-groups needs an integer");
            }
            other => panic!(
                "unknown flag {other}; supported: --jobs N, --seed S, --out PATH, \
                 --full, --stress-jobs N, --service-ops N, --service-groups N"
            ),
        }
    }
    let sizes = [1_000usize, jobs.max(1_000)];
    let reps = 5;

    println!(
        "{:<24} {:>8} {:>12} {:>10} {:>14} {:>10} {:>14}",
        "scenario", "jobs", "events", "wall (s)", "events/sec", "allocs", "peak heap"
    );
    let mut measurements = Vec::new();
    for &jobs in &sizes {
        let w = trace(jobs, seed);
        let fcfs = SimConfig::default();
        measurements.push(measure("fcfs_pass_through", "fcfs", jobs, reps, || {
            Simulation::new(fcfs, paper_cluster(24), EstimatorSpec::PassThrough).run(&w)
        }));
        measurements.push(measure("fcfs_successive", "fcfs", jobs, reps, || {
            Simulation::new(fcfs, paper_cluster(24), EstimatorSpec::paper_successive()).run(&w)
        }));
        let sjf = SimConfig::default().with_scheduling(SchedulingPolicy::Sjf);
        measurements.push(measure("sjf_successive", "sjf", jobs, reps, || {
            Simulation::new(sjf, paper_cluster(24), EstimatorSpec::paper_successive()).run(&w)
        }));
        let easy = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
        measurements.push(measure("easy_pass_through", "easy", jobs, reps, || {
            Simulation::new(easy, paper_cluster(24), EstimatorSpec::PassThrough).run(&w)
        }));
        measurements.push(measure("easy_successive", "easy", jobs, reps, || {
            Simulation::new(easy, paper_cluster(24), EstimatorSpec::paper_successive()).run(&w)
        }));
    }

    // Trace scale: the full calibrated workload at its natural load.
    let w = natural_trace(TRACE_JOBS, seed);
    matrix(&mut measurements, "trace_", &w, reps);
    drop(w);

    // Matchmaking tier: the allocation path routed through compiled
    // ClassAds, at the small-matrix scale and saturating load.
    matchmaking_tier(&mut measurements, jobs.max(1_000), seed, reps);

    // Online-service tier: the long-running estimator service.
    service_queries(&mut measurements, seed, service_ops, service_groups);

    if full {
        // Streaming stress: ten million jobs, never materialized, records
        // off — peak heap stays at queue-depth-plus-concurrency scale. Runs
        // on the homogeneous 1024-node machine: on the split paper cluster
        // pass-through confines the (over-provisioned) requests to the
        // 32 MB half, the effective load exceeds 1, and the queue — not
        // the engine — grows without bound.
        let cfg = SimConfig::default().with_retain_records(false);
        let mut arena = SimArena::default();
        measurements.push(measure(
            "stress_fcfs_stream",
            "fcfs",
            stress_jobs as usize,
            1,
            || {
                Simulation::new(cfg, cm5_cluster(), EstimatorSpec::PassThrough)
                    .run_stream_with_arena(stress_stream(stress_jobs, seed), &mut arena)
            },
        ));
    }

    let json = render_json(&measurements);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
