//! Machine-readable simulator throughput report.
//!
//! Runs the same end-to-end scenarios as the criterion `simulation` bench
//! group, but with a plain `std::time::Instant` harness and a JSON artifact
//! (`BENCH_sim.json`) that CI can archive and diff across commits. Events
//! per second uses [`resmatch_sim::SimResult::events_processed`] as the
//! denominator-independent work measure: it is a deterministic property of
//! the scenario, so throughput differences are wall-clock differences.
//!
//! Run: `cargo run --release -p resmatch-bench --bin bench_report [--jobs N,N,...] [--out PATH]`

use std::time::Instant;

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Workload;

/// Saturating offered load: queues stay populated, so the hot paths this
/// report guards (in-queue refresh, candidate counting, backfill scans)
/// actually dominate.
const TARGET_LOAD: f64 = 1.0;
const TOTAL_NODES: u32 = 1024;

fn trace(jobs: usize, seed: u64) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    );
    w.retain_max_nodes(512);
    scale_to_load(&w, TOTAL_NODES, TARGET_LOAD)
}

struct Measurement {
    scenario: String,
    /// Queue discipline the scenario ran under (`fcfs`, `sjf`, `easy`) —
    /// kept as its own JSON field so the perf trajectory of each scheduler
    /// path can be tracked independently of scenario naming.
    scheduler: &'static str,
    jobs: usize,
    events_processed: u64,
    completed_jobs: usize,
    wall_s: f64,
    events_per_sec: f64,
    /// Engine-level counters from the measured run. Tracked by the engine
    /// itself (no observer is attached — the timed runs stay on the
    /// zero-observer hot path).
    counters: RunCounters,
}

/// Best-of-N wall clock: the minimum is the least noise-contaminated
/// estimate of the true cost on a shared machine.
fn measure<F>(
    scenario: &str,
    scheduler: &'static str,
    jobs: usize,
    reps: usize,
    run: F,
) -> Measurement
where
    F: Fn() -> resmatch_sim::SimResult,
{
    let mut best_s = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run();
        best_s = best_s.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    let r = last.expect("reps >= 1");
    Measurement {
        scenario: scenario.to_string(),
        scheduler,
        jobs,
        events_processed: r.events_processed,
        completed_jobs: r.completed_jobs,
        wall_s: best_s,
        events_per_sec: r.events_processed as f64 / best_s,
        counters: r.counters,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"sim\",\n  \"unit\": \"events/sec\",\n  \"results\": [\n",
    );
    for (i, m) in measurements.iter().enumerate() {
        let c = &m.counters;
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"jobs\": {}, \
             \"events_processed\": {}, \
             \"completed_jobs\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \
             \"counters\": {{\"arrivals\": {}, \"admissions\": {}, \"started\": {}, \
             \"completed\": {}, \"failed\": {}, \"requeued\": {}, \
             \"estimator_bypassed\": {}, \"churn_events\": {}}}}}{}\n",
            json_escape(&m.scenario),
            m.scheduler,
            m.jobs,
            m.events_processed,
            m.completed_jobs,
            m.wall_s,
            m.events_per_sec,
            c.arrivals,
            c.admissions,
            c.started,
            c.completed,
            c.failed,
            c.requeued,
            c.estimator_bypassed,
            c.churn_events,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Parsed by hand rather than via `ExperimentArgs::parse`, which
    // rejects flags it does not know — this binary adds `--out`.
    let mut jobs = 5_000usize;
    let mut seed = 42u64;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next();
        match flag.as_str() {
            "--jobs" => {
                jobs = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs an integer");
            }
            "--seed" => {
                seed = value()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--out" => {
                out_path = value().expect("--out needs a path");
            }
            other => panic!("unknown flag {other}; supported: --jobs N, --seed S, --out PATH"),
        }
    }
    let sizes = [1_000usize, jobs.max(1_000)];
    let reps = 3;

    let mut measurements = Vec::new();
    for &jobs in &sizes {
        let w = trace(jobs, seed);
        measurements.push(measure("fcfs_pass_through", "fcfs", jobs, reps, || {
            Simulation::new(
                SimConfig::default(),
                paper_cluster(24),
                EstimatorSpec::PassThrough,
            )
            .run(&w)
        }));
        measurements.push(measure("fcfs_successive", "fcfs", jobs, reps, || {
            Simulation::new(
                SimConfig::default(),
                paper_cluster(24),
                EstimatorSpec::paper_successive(),
            )
            .run(&w)
        }));
        let sjf = SimConfig::default().with_scheduling(SchedulingPolicy::Sjf);
        measurements.push(measure("sjf_successive", "sjf", jobs, reps, || {
            Simulation::new(sjf, paper_cluster(24), EstimatorSpec::paper_successive()).run(&w)
        }));
        let easy = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
        measurements.push(measure("easy_pass_through", "easy", jobs, reps, || {
            Simulation::new(easy, paper_cluster(24), EstimatorSpec::PassThrough).run(&w)
        }));
        measurements.push(measure("easy_successive", "easy", jobs, reps, || {
            Simulation::new(easy, paper_cluster(24), EstimatorSpec::paper_successive()).run(&w)
        }));
    }

    println!(
        "{:<20} {:>7} {:>12} {:>10} {:>14}",
        "scenario", "jobs", "events", "wall (s)", "events/sec"
    );
    for m in &measurements {
        println!(
            "{:<20} {:>7} {:>12} {:>10.3} {:>14.0}",
            m.scenario, m.jobs, m.events_processed, m.wall_s, m.events_per_sec
        );
    }

    let json = render_json(&measurements);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
