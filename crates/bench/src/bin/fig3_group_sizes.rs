//! Figure 3: distribution of jobs according to similarity-group size.
//!
//! The paper identifies similar jobs by (user ID, application number,
//! requested memory), yielding 9,885 disjoint groups over 122,055 jobs;
//! groups of >= 10 jobs are 19.4% of the sets but hold 83% of the jobs.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig3_group_sizes [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_workload::analysis::{group_size_distribution, trace_stats};

fn main() {
    let args = ExperimentArgs::parse(122_055);
    let trace = paper_trace(args);
    let stats = trace_stats(&trace);

    header("Figure 3: jobs by similarity-group size");
    println!(
        "trace: {} jobs, {} groups (paper: 122,055 jobs, 9,885 groups)\n",
        stats.jobs, stats.groups
    );

    let dist = group_size_distribution(&trace);
    // Log-spaced size buckets for readability, mirroring the figure's
    // log-scaled axis.
    let edges = [1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1_000];
    println!(
        "{:<16} {:>8} {:>14}",
        "group size", "groups", "job fraction"
    );
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let groups: usize = dist
            .iter()
            .filter(|b| b.size >= lo && b.size < hi)
            .map(|b| b.groups)
            .sum();
        let jobs: f64 = dist
            .iter()
            .filter(|b| b.size >= lo && b.size < hi)
            .map(|b| b.job_fraction)
            .sum();
        let bar = "#".repeat((jobs * 150.0).round() as usize);
        println!(
            "[{lo:>4}, {hi:>4})    {groups:>8} {:>13.2}%  {bar}",
            jobs * 100.0
        );
    }
    let giant: f64 = dist
        .iter()
        .filter(|b| b.size >= 1_000)
        .map(|b| b.job_fraction)
        .sum();
    println!(
        "{:<16} {:>8} {:>13.2}%",
        ">= 1000",
        dist.iter()
            .filter(|b| b.size >= 1_000)
            .map(|b| b.groups)
            .sum::<usize>(),
        giant * 100.0
    );

    header("headline statistics vs. paper");
    let big_sets = dist
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.groups)
        .sum::<usize>();
    let big_jobs: f64 = dist
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.job_fraction)
        .sum();
    println!(
        "groups with >= 10 jobs:  {:>6.1}% of groups  (paper: 19.4%)",
        big_sets as f64 / stats.groups.max(1) as f64 * 100.0
    );
    println!(
        "jobs in such groups:     {:>6.1}% of jobs    (paper: 83%)",
        big_jobs * 100.0
    );
    println!(
        "mean group size:         {:>6.1}            (paper: 12.3)",
        stats.mean_group_size
    );
}
