//! Figure 3: distribution of similarity-group sizes.
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig3`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig3_group_sizes [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig3_group_sizes");
}
