//! Robustness: does the headline result survive a different workload model?
//!
//! The figure binaries run on the CM5-calibrated generator. This experiment
//! replays the Figure 5 comparison on an *independent* parametric workload
//! family (Lublin-Feitelson-style arrivals/runtimes with an over-
//! provisioning layer) across several seeds. If estimation's gain were an
//! artifact of the CM5 calibration, it would vanish here.
//!
//! Run: `cargo run --release -p resmatch-bench --bin robustness_workloads [--jobs N]`

use resmatch_bench::header;
use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::parametric::{generate_parametric, upholds_assumptions, ParametricConfig};

fn main() {
    let args = resmatch_bench::ExperimentArgs::parse(12_000);

    header("robustness: Figure 5 comparison on the parametric workload family");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "seed", "util (base)", "util (est.)", "ratio", "fail%", "lowered%"
    );
    let cluster = paper_cluster(24);
    let mut ratios = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let trace = generate_parametric(
            &ParametricConfig {
                jobs: args.jobs,
                ..ParametricConfig::default()
            },
            seed,
        );
        assert!(upholds_assumptions(&trace));
        let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
        let base = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::PassThrough,
        )
        .run(&scaled);
        let est = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::paper_successive(),
        )
        .run(&scaled);
        let ratio = est.utilization() / base.utilization().max(1e-9);
        ratios.push(ratio);
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>8.2} {:>9.3}% {:>9.1}%",
            seed,
            base.utilization(),
            est.utilization(),
            ratio,
            est.failed_execution_fraction() * 100.0,
            est.lowered_job_fraction() * 100.0,
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nmean improvement {:.0}%, worst seed {:+.0}% — the gain is a property\n\
         of over-provisioning on heterogeneous clusters, not of one trace.",
        (mean - 1.0) * 100.0,
        (min - 1.0) * 100.0
    );
}
