//! Robustness: Figure 5 replayed on an independent workload family.
//!
//! Thin wrapper over [`resmatch_repro::experiments::robustness`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin robustness_workloads [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("robustness_workloads");
}
