//! Figure 6: the effect of resource estimation on slowdown.
//!
//! Same cluster and settings as Figure 5. The paper plots the ratio of
//! slowdown *without* estimation to slowdown *with* estimation across
//! loads: it never drops below 1 (estimation never hurts), and it peaks
//! dramatically around 60% load, where the queue is short enough that
//! freeing blocked jobs still collapses their wait times.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig6_slowdown [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;

fn main() {
    let args = ExperimentArgs::parse(30_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);

    header("Figure 6: slowdown(no est.) / slowdown(est.) vs. offered load");
    println!(
        "trace: {} jobs, FCFS, implicit feedback, alpha=2 beta=0\n",
        trace.len()
    );

    let sweep =
        SweepConfig::default().with_loads(vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2]);
    let base = run_load_sweep(&trace, &cluster, EstimatorSpec::PassThrough, &sweep);
    let est = run_load_sweep(&trace, &cluster, EstimatorSpec::paper_successive(), &sweep);

    println!(
        "{:>8} {:>18} {:>18} {:>10} {:>12}",
        "load", "slowdown (no est.)", "slowdown (est.)", "ratio", "queue (base)"
    );
    let mut peak = (0.0f64, 0.0f64);
    for (b, e) in base.iter().zip(&est) {
        let sb = b.result.mean_slowdown();
        let se = e.result.mean_slowdown();
        let ratio = if se > 0.0 { sb / se } else { 1.0 };
        if ratio > peak.1 {
            peak = (b.offered_load, ratio);
        }
        let bar = "#".repeat((ratio.min(60.0)) as usize);
        println!(
            "{:>8.2} {:>18.2} {:>18.2} {:>10.2} {:>12.1}  {bar}",
            b.offered_load, sb, se, ratio, b.result.mean_queue_length
        );
    }

    header("shape check vs. paper");
    println!(
        "peak ratio {:.2} at load {:.2}  (paper: dramatic peak at ~0.6)",
        peak.1, peak.0
    );
    let never_worse = base
        .iter()
        .zip(&est)
        .all(|(b, e)| e.result.mean_slowdown() <= b.result.mean_slowdown() * 1.05);
    println!(
        "estimation never increases slowdown: {}  (paper: 'never causes slowdown to increase')",
        if never_worse { "yes" } else { "VIOLATED" }
    );
    println!(
        "The queue column confirms the paper's mechanism: the peak sits where\n\
         the baseline queue is forming but 'still not extremely long'."
    );
}
