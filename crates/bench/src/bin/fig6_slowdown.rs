//! Figure 6: slowdown ratio vs. offered load.
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig6`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig6_slowdown [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig6_slowdown");
}
