//! The paper's §4 research roadmap, implemented and measured.
//!
//! Three future-work items the paper names — online identification of
//! similarity groups, formal initialization of the learning parameters, and
//! robust line search for heterogeneous groups — run here against the
//! published Algorithm 1 on the same trace and cluster.
//!
//! Run: `cargo run --release -p resmatch-bench --bin futurework_estimators [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

fn main() {
    let args = ExperimentArgs::parse(15_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);

    header("§4 future work: extensions vs. published Algorithm 1");
    println!("cluster 512x32MB + 512x24MB, FCFS, saturating load\n");

    let rows: Vec<(&str, EstimatorSpec, bool)> = vec![
        (
            "baseline (no estimation)",
            EstimatorSpec::PassThrough,
            false,
        ),
        (
            "Algorithm 1 (published)",
            EstimatorSpec::paper_successive(),
            false,
        ),
        (
            "robust bisection (2.3)",
            EstimatorSpec::Robust(RobustConfig::default()),
            false,
        ),
        (
            "online similarity (4)",
            EstimatorSpec::Adaptive(AdaptiveConfig::default()),
            false,
        ),
        (
            "warm-start prior (4)",
            EstimatorSpec::WarmStart(WarmStartConfig::default()),
            true, // the prior trains from explicit feedback
        ),
        (
            "quantile window (ext.)",
            EstimatorSpec::Quantile(QuantileConfig::default()),
            true,
        ),
        ("oracle (upper bound)", EstimatorSpec::Oracle, false),
    ];

    println!(
        "{:<26} {:>8} {:>10} {:>9} {:>10} {:>10}",
        "estimator", "util", "slowdown", "fail%", "lowered%", "wait(s)"
    );
    for (label, spec, explicit) in rows {
        let cfg = SimConfig::default().with_feedback(if explicit {
            FeedbackMode::Explicit
        } else {
            FeedbackMode::Implicit
        });
        let r = Simulation::new(cfg, cluster.clone(), spec).run(&scaled);
        println!(
            "{:<26} {:>8.3} {:>10.2} {:>8.3}% {:>9.1}% {:>10.0}",
            label,
            r.utilization(),
            r.mean_slowdown(),
            r.failed_execution_fraction() * 100.0,
            r.lowered_job_fraction() * 100.0,
            r.mean_wait_s(),
        );
    }
}
