//! §4 future-work estimators vs. published Algorithm 1.
//!
//! Thin wrapper over [`resmatch_repro::experiments::futurework`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin futurework_estimators [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("futurework_estimators");
}
