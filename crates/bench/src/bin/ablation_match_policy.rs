//! Ablation: first/best/worst-fit matching x estimation.
//!
//! Thin wrapper over [`resmatch_repro::experiments::ablation_match_policy`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_match_policy [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("ablation_match_policy");
}
