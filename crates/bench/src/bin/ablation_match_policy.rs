//! Ablation: resource-matching policy.
//!
//! The paper's §1.1 scenario is a matching-order story: J1 gets placed on
//! the big machine M1 "because the user requests a memory size larger than
//! that of M2", and J2 blocks behind it. Best-fit placement (smallest
//! sufficient capacity first) avoids squatting; worst-fit maximizes it.
//! This ablation quantifies the policy choice with and without estimation.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_match_policy [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_cluster::MatchPolicy;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

fn main() {
    let args = ExperimentArgs::parse(15_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);

    header("ablation: match policy x estimation (512x32MB + 512x24MB)");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "policy", "util (base)", "util (est.)", "ratio", "est fail%"
    );
    for (name, policy) in [
        ("best-fit", MatchPolicy::BestFit),
        ("first-fit", MatchPolicy::FirstFit),
        ("worst-fit", MatchPolicy::WorstFit),
    ] {
        let cfg = SimConfig::default().with_match_policy(policy);
        let base = Simulation::new(cfg, cluster.clone(), EstimatorSpec::PassThrough).run(&scaled);
        let est =
            Simulation::new(cfg, cluster.clone(), EstimatorSpec::paper_successive()).run(&scaled);
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>10.2} {:>9.3}%",
            name,
            base.utilization(),
            est.utilization(),
            est.utilization() / base.utilization().max(1e-9),
            est.failed_execution_fraction() * 100.0,
        );
    }
    println!(
        "\nWorst-fit parks small estimates on 32 MB nodes, recreating the\n\
         squatting the paper's scenario describes; best-fit preserves the\n\
         large-memory pool for the jobs that genuinely need it."
    );
}
