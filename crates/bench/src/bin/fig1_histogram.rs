//! Figure 1: histogram of the ratio between requested and used memory.
//!
//! The paper reports, for the LANL CM5 trace: ~32.8% of jobs with a
//! mismatch of 2x or more, ratios spanning two orders of magnitude, and a
//! log-linear regression over the histogram with R² = 0.69.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig1_histogram [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_workload::analysis::{
    histogram_log_fit, overprovisioned_fraction, overprovisioning_histogram,
};

fn main() {
    let args = ExperimentArgs::parse(122_055);
    let trace = paper_trace(args);

    header("Figure 1: requested/used memory ratio histogram");
    println!("trace: {} jobs (seed {})\n", trace.len(), args.seed);

    let hist = overprovisioning_histogram(&trace, 8);
    println!("{:<16} {:>10} {:>12}", "ratio bin", "jobs", "% of jobs");
    for i in 0..hist.num_bins() {
        let bar_len = (hist.fraction(i) * 120.0).round() as usize;
        println!(
            "[{:>5.0}, {:>5.0})   {:>10} {:>11.2}%  {}",
            hist.bin_lower(i),
            hist.bin_lower(i + 1),
            hist.count(i),
            hist.fraction(i) * 100.0,
            "#".repeat(bar_len.min(60)),
        );
    }
    println!("{:<16} {:>10}", ">= 256", hist.overflow());

    header("headline statistics vs. paper");
    let frac2 = overprovisioned_fraction(&trace, 2.0);
    println!(
        "jobs with ratio >= 2x:   {:>6.1}%   (paper: 32.8%)",
        frac2 * 100.0
    );
    match histogram_log_fit(&hist) {
        Some(fit) => println!(
            "log-linear fit R^2:      {:>6.2}    (paper: 0.69)\n\
             fit slope:               {:>6.3} log10(fraction)/bin",
            fit.r_squared, fit.slope
        ),
        None => println!("log-linear fit: not enough populated bins"),
    }
}
