//! Figure 1: histogram of the ratio between requested and used memory.
//!
//! Thin wrapper over [`resmatch_repro::experiments::fig1`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin fig1_histogram [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("fig1_histogram");
}
