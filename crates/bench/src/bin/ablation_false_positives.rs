//! Ablation: false-positive failures under implicit feedback (§2.1).
//!
//! "An additional drawback of resource estimation using implicit feedback
//! is that it is more prone to false positive cases ... job failures due to
//! faulty programming or faulty machines might confuse the estimator to
//! assume that the job failed due to too low estimated resources. In the
//! case of explicit feedback, however, such confusions can be avoided."
//!
//! This ablation injects unrelated failures at increasing rates and
//! compares the implicit-feedback estimator (successive approximation)
//! against an explicit-feedback one (last-instance).
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_false_positives [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

fn main() {
    let args = ExperimentArgs::parse(15_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.0);

    header("ablation: injected false-positive failures");
    println!(
        "{:>8} {:>22} {:>22}",
        "fp rate", "util (implicit, Alg.1)", "util (explicit, last)"
    );
    for fp in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let implicit_cfg = SimConfig::default().with_false_positive_rate(fp);
        let explicit_cfg = SimConfig::default()
            .with_false_positive_rate(fp)
            .with_feedback(FeedbackMode::Explicit);
        let implicit = Simulation::new(
            implicit_cfg,
            cluster.clone(),
            EstimatorSpec::paper_successive(),
        )
        .run(&scaled);
        let explicit = Simulation::new(
            explicit_cfg,
            cluster.clone(),
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        )
        .run(&scaled);
        println!(
            "{:>8.3} {:>15.3} ({:>4.1}%) {:>15.3} ({:>4.1}%)",
            fp,
            implicit.utilization(),
            implicit.lowered_job_fraction() * 100.0,
            explicit.utilization(),
            explicit.lowered_job_fraction() * 100.0,
        );
    }
    println!(
        "\n(parenthesized: fraction of jobs still running with lowered\n\
         estimates — implicit feedback loses reach as spurious failures\n\
         freeze groups, the paper's predicted failure mode)"
    );
}
