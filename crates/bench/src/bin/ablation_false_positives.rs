//! Ablation: injected false positives, implicit vs. explicit feedback (§2.1).
//!
//! Thin wrapper over [`resmatch_repro::experiments::ablation_false_positives`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_false_positives [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("ablation_false_positives");
}
