//! Ablation: dynamic cluster membership.
//!
//! The paper motivates estimation with grid settings where "machines can
//! dynamically join and leave the systems at any time" (§1.1). This
//! ablation cycles half the 24 MB pool offline and online during the run
//! and measures whether estimation's benefit survives churn — it should:
//! the estimator keys on similarity groups, not on specific machines.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_churn [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs, MB};
use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::Time;

/// Cycle `nodes` nodes of the 24 MB pool out and back every `period` over
/// the trace duration.
fn churn_schedule(span_s: u64, period_s: u64, nodes: i64) -> Vec<ChurnEvent> {
    let mut events = Vec::new();
    let mut t = period_s;
    let mut online = true;
    while t < span_s {
        events.push(ChurnEvent {
            time: Time::from_secs(t),
            mem_kb: 24 * MB,
            delta: if online { -nodes } else { nodes },
        });
        online = !online;
        t += period_s;
    }
    events
}

fn main() {
    let args = ExperimentArgs::parse(12_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.0);
    let span_s = scaled.span().as_secs();

    header("ablation: node churn (half the 24 MB pool cycles in/out)");
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "churn period", "util (base)", "util (est.)", "ratio"
    );
    let periods: Vec<(&str, Option<u64>)> = vec![
        ("none", None),
        ("span / 4", Some(span_s / 4)),
        ("span / 16", Some(span_s / 16)),
        ("span / 64", Some(span_s / 64)),
    ];
    for (label, period) in periods {
        let schedule = period
            .map(|p| churn_schedule(span_s, p.max(1), 256))
            .unwrap_or_default();
        let base = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::PassThrough,
        )
        .with_churn(schedule.clone())
        .run(&scaled);
        let est = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::paper_successive(),
        )
        .with_churn(schedule)
        .run(&scaled);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>10.2}",
            label,
            base.utilization(),
            est.utilization(),
            est.utilization() / base.utilization().max(1e-9),
        );
    }
    println!(
        "\nEstimation's advantage persists under churn because similarity\n\
         groups are machine-agnostic; only the capacity ladder matters, and\n\
         it is unchanged by nodes leaving temporarily."
    );
}
