//! Ablation: dynamic cluster membership (grid churn, §1.1).
//!
//! Thin wrapper over [`resmatch_repro::experiments::ablation_churn`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_churn [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("ablation_churn");
}
