//! Ablation: scheduling policy x estimation (the §4 hypothesis).
//!
//! Thin wrapper over [`resmatch_repro::experiments::ablation_scheduler`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_scheduler [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("ablation_scheduler");
}
