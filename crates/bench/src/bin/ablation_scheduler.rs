//! Ablation: scheduling policy (the paper's future-work hypothesis).
//!
//! "We expect that the results of cluster utilization with more aggressive
//! scheduling policies like backfilling will be correlated with those for
//! FCFS. However, these experiments are left for future work." This
//! ablation runs them: FCFS, EASY backfilling, and SJF, each with and
//! without estimation.
//!
//! Run: `cargo run --release -p resmatch-bench --bin ablation_scheduler [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

fn main() {
    let args = ExperimentArgs::parse(15_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);

    header("ablation: scheduling policy x estimation");
    println!("cluster 512x32MB + 512x24MB, saturating load, alpha=2 beta=0\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14}",
        "policy", "util (base)", "util (est.)", "ratio", "slowdown ratio"
    );

    for (name, policy) in [
        ("FCFS", SchedulingPolicy::Fcfs),
        ("EASY backfill", SchedulingPolicy::EasyBackfill),
        ("SJF", SchedulingPolicy::Sjf),
    ] {
        let cfg = SimConfig::default().with_scheduling(policy);
        let base = Simulation::new(cfg, cluster.clone(), EstimatorSpec::PassThrough).run(&scaled);
        let est =
            Simulation::new(cfg, cluster.clone(), EstimatorSpec::paper_successive()).run(&scaled);
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.2} {:>14.2}",
            name,
            base.utilization(),
            est.utilization(),
            est.utilization() / base.utilization().max(1e-9),
            base.mean_slowdown() / est.mean_slowdown().max(1e-9),
        );
    }

    println!(
        "\nThe paper's hypothesis holds when the estimation gain persists\n\
         (ratio > 1) under backfilling, though backfilling already removes\n\
         some head-of-line blocking on its own, shrinking the headroom."
    );
}
