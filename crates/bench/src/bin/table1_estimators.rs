//! Table 1: the estimator design space, evaluated head to head.
//!
//! The paper's Table 1 organizes estimation algorithms by feedback type
//! (implicit vs. explicit) and whether similar jobs can be identified:
//! successive approximation, last-instance identification, reinforcement
//! learning, and regression modeling. The paper implements only the first
//! row; this binary runs all four quadrants — plus the pass-through
//! baseline and the oracle bound — on the same trace and cluster.
//!
//! Run: `cargo run --release -p resmatch-bench --bin table1_estimators [--jobs N] [--seed S]`

use resmatch_bench::{header, paper_trace, ExperimentArgs};
use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

fn main() {
    let args = ExperimentArgs::parse(20_000);
    let trace = paper_trace(args);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);

    header("Table 1: estimation algorithms by feedback type and similarity");
    println!("cluster 512x32MB + 512x24MB, FCFS, saturating load\n");

    let rows: Vec<(&str, EstimatorSpec)> = vec![
        ("baseline (no estimation)", EstimatorSpec::PassThrough),
        (
            "implicit + similarity    ",
            EstimatorSpec::paper_successive(),
        ),
        (
            "explicit + similarity    ",
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        ),
        (
            "implicit, no similarity  ",
            EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
        ),
        (
            "explicit, no similarity  ",
            EstimatorSpec::Regression(RegressionConfig::default()),
        ),
        ("oracle (upper bound)     ", EstimatorSpec::Oracle),
    ];

    println!(
        "{:<28} {:<26} {:>7} {:>9} {:>8} {:>9}",
        "quadrant", "algorithm", "util", "slowdown", "fail%", "lowered%"
    );
    let mut baseline = None;
    for (quadrant, spec) in rows {
        let mut cfg = SimConfig::default();
        if spec.wants_explicit_feedback() {
            cfg.feedback = FeedbackMode::Explicit;
        }
        let r = Simulation::new(cfg, cluster.clone(), spec).run(&scaled);
        let util = r.utilization();
        if spec == EstimatorSpec::PassThrough {
            baseline = Some(util);
        }
        let delta = baseline
            .map(|b| format!("{:+.0}%", (util / b - 1.0) * 100.0))
            .unwrap_or_default();
        println!(
            "{:<28} {:<26} {:>7.3} {:>9.2} {:>7.3}% {:>8.1}%   {delta}",
            quadrant,
            r.estimator,
            util,
            r.mean_slowdown(),
            r.failed_execution_fraction() * 100.0,
            r.lowered_job_fraction() * 100.0,
        );
    }

    println!(
        "\nReading guide: explicit feedback avoids blind probing (fail% ~ 0)\n\
         and similarity-based methods adapt per group, so the explicit +\n\
         similarity quadrant approaches the oracle bound."
    );
}
