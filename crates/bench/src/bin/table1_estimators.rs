//! Table 1: the estimator design-space matrix, evaluated head to head.
//!
//! Thin wrapper over [`resmatch_repro::experiments::table1`]; the experiment logic, its scales, and
//! the paper claims gated on it live in the `resmatch-repro` manifest.
//!
//! Run: `cargo run --release -p resmatch-bench --bin table1_estimators [--jobs N] [--seed S]`

fn main() {
    resmatch_bench::run_manifest_experiment("table1_estimators");
}
