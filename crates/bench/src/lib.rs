//! Shared harness for the experiment binaries.
//!
//! Every figure/table binary follows the same recipe: generate the
//! calibrated CM5-like trace, apply the paper's preprocessing (drop
//! full-machine jobs), and print a self-describing table to stdout. This
//! crate centralizes trace preparation and the small amount of CLI parsing
//! so the binaries stay focused on their experiment.
//!
//! Binaries accept `--jobs N` (trace size; default scales to a few minutes
//! of wall time in release mode) and `--seed S`.

#![forbid(unsafe_code)]

use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Workload;

/// One megabyte in KB.
pub const MB: u64 = 1024;

/// Command-line options shared by experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Trace size in jobs.
    pub jobs: usize,
    /// Generator seed.
    pub seed: u64,
}

impl ExperimentArgs {
    /// Parse `--jobs N` / `--seed S` from `std::env::args`, with the given
    /// default trace size.
    pub fn parse(default_jobs: usize) -> Self {
        let mut args = ExperimentArgs {
            jobs: default_jobs,
            seed: 42,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--jobs" => {
                    args.jobs = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs an integer");
                }
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => panic!("unknown flag {other}; supported: --jobs N, --seed S"),
            }
        }
        args
    }
}

/// The paper's experimental trace: calibrated CM5-like workload with the
/// full-machine (1024-node) jobs removed, as in §3.1.
pub fn paper_trace(args: ExperimentArgs) -> Workload {
    let mut trace = generate(
        &Cm5Config {
            jobs: args.jobs,
            ..Cm5Config::default()
        },
        args.seed,
    );
    trace.retain_max_nodes(512);
    trace
}

/// The full-scale paper trace (122,055 jobs before preprocessing).
pub fn full_paper_trace(seed: u64) -> Workload {
    paper_trace(ExperimentArgs {
        jobs: 122_055,
        seed,
    })
}

/// Render a ruled section header.
pub fn header(title: &str) {
    println!(
        "\n== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_respects_node_cap() {
        let t = paper_trace(ExperimentArgs {
            jobs: 2_000,
            seed: 1,
        });
        assert!(t.max_nodes() <= 512);
        assert!(t.len() <= 2_000);
        assert!(t.len() > 1_900, "only full-machine jobs may be dropped");
    }

    #[test]
    fn args_default() {
        // No CLI flags in the test harness; parse must return defaults.
        // (Testing the parser's happy path directly on a fresh struct.)
        let args = ExperimentArgs { jobs: 10, seed: 42 };
        assert_eq!(args.jobs, 10);
        assert_eq!(args.seed, 42);
    }
}
