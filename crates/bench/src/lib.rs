//! Shared harness for the experiment binaries.
//!
//! Since the claims-as-code extraction, every experiment lives as a
//! library function in `resmatch-repro` (see `crates/repro`), registered
//! in its manifest with scales, seeds, and the coded expectations that
//! gate it. The binaries in `src/bin` are thin wrappers kept for the
//! historic one-command workflow: parse `--jobs N` / `--seed S`, run the
//! manifest entry, print its report. `cargo run -p resmatch-repro --
//! run|check|render` is the full pipeline.

#![forbid(unsafe_code)]

use resmatch_repro::manifest;
use resmatch_repro::runner::RunSpec;
use resmatch_workload::Workload;

/// One megabyte in KB.
pub const MB: u64 = resmatch_repro::trace::MB;

/// Command-line options shared by experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Trace size in jobs.
    pub jobs: usize,
    /// Generator seed.
    pub seed: u64,
}

impl ExperimentArgs {
    /// Parse `--jobs N` / `--seed S` from `std::env::args`, with the given
    /// default trace size.
    pub fn parse(default_jobs: usize) -> Self {
        let mut args = ExperimentArgs {
            jobs: default_jobs,
            seed: 42,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--jobs" => match iter.next().and_then(|v| v.parse().ok()) {
                    Some(jobs) => args.jobs = jobs,
                    None => usage_error("--jobs needs an integer"),
                },
                "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                    Some(seed) => args.seed = seed,
                    None => usage_error("--seed needs an integer"),
                },
                other => usage_error(&format!("unknown flag {other}")),
            }
        }
        args
    }
}

/// Report a command-line usage error and exit with status 2 — a bad flag
/// is an operator mistake, not a harness bug, so it must not panic.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}; supported: --jobs N, --seed S");
    std::process::exit(2);
}

/// The paper's experimental trace: calibrated CM5-like workload with the
/// full-machine (1024-node) jobs removed, as in §3.1.
pub fn paper_trace(args: ExperimentArgs) -> Workload {
    resmatch_repro::trace::paper_trace(args.jobs, args.seed)
}

/// The full-scale paper trace (122,055 jobs before preprocessing).
pub fn full_paper_trace(seed: u64) -> Workload {
    resmatch_repro::trace::full_paper_trace(seed)
}

/// Render a ruled section header.
pub fn header(title: &str) {
    println!(
        "\n== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

/// Run one manifest experiment as a standalone binary: parse `--jobs` /
/// `--seed` (defaulting to the manifest's full scale) and print the
/// report. Every `src/bin` experiment wrapper is one call to this.
pub fn run_manifest_experiment(id: &str) {
    let def = manifest::find(id)
        .expect("invariant: every experiment binary names an entry in the repro manifest");
    let args = ExperimentArgs::parse(def.default_jobs);
    let spec = RunSpec {
        jobs: args.jobs,
        seed: args.seed,
    };
    print!("{}", (def.run)(&spec).text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_respects_node_cap() {
        let t = paper_trace(ExperimentArgs {
            jobs: 2_000,
            seed: 1,
        });
        assert!(t.max_nodes() <= 512);
        assert!(t.len() <= 2_000);
        assert!(t.len() > 1_900, "only full-machine jobs may be dropped");
    }

    #[test]
    fn args_default() {
        // No CLI flags in the test harness; parse must return defaults.
        // (Testing the parser's happy path directly on a fresh struct.)
        let args = ExperimentArgs { jobs: 10, seed: 42 };
        assert_eq!(args.jobs, 10);
        assert_eq!(args.seed, 42);
    }
}
