//! Criterion benches: ClassAd parse/evaluate/match throughput.
//!
//! A production matchmaker evaluates requirements against every candidate
//! machine per scheduling pass, so match throughput bounds cluster size.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use resmatch_classad::bridge::{job_ad, machine_ad};
use resmatch_classad::{matches, parse, ClassAd};
use resmatch_cluster::{Capacity, Demand};

fn bench_classad(c: &mut Criterion) {
    let mut group = c.benchmark_group("classad");

    let requirement = "other.Memory >= my.RequestedMemory && other.Disk >= my.RequestedDisk && \
         (other.Arch == \"x86_64\" || other.Arch == \"sparc\")";
    group.bench_function("parse_requirements", |b| {
        b.iter(|| black_box(parse(black_box(requirement)).unwrap()))
    });

    let mut job = ClassAd::new();
    job.insert_int("RequestedMemory", 16 * 1024)
        .insert_int("RequestedDisk", 0)
        .insert_expr("Requirements", requirement)
        .unwrap();
    let mut machine = ClassAd::new();
    machine
        .insert_int("Memory", 24 * 1024)
        .insert_int("Disk", 1 << 30)
        .insert_str("Arch", "x86_64")
        .insert_expr("Requirements", "other.RequestedMemory <= my.Memory")
        .unwrap();
    group.bench_function("symmetric_match", |b| {
        b.iter(|| black_box(matches(black_box(&job), black_box(&machine)).unwrap()))
    });

    // Matchmaking sweep: one job ad against a 1024-machine pool's distinct
    // capacities (the pooled matcher's worst case, fully declarative).
    let machines: Vec<ClassAd> = (1..=32)
        .map(|mb| machine_ad(&Capacity::memory(mb * 1024)))
        .collect();
    let demand_ad = job_ad(&Demand::memory(16 * 1024));
    group.bench_function("match_32_capacity_classes", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for m in &machines {
                if matches(black_box(&demand_ad), m).unwrap() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_classad);
criterion_main!(benches);
