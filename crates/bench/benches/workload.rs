//! Criterion benches: workload substrate throughput.
//!
//! Trace generation, SWF round-trips, and analysis passes all run at
//! trace scale (122k jobs), so their constants matter for the experiment
//! harness's turnaround time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use resmatch_workload::analysis::{group_jobs, overprovisioning_histogram};
use resmatch_workload::load::scale_to_load;
use resmatch_workload::swf;
use resmatch_workload::synthetic::{generate, Cm5Config};

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);

    group.bench_function("generate_20k", |b| {
        b.iter(|| {
            black_box(generate(
                &Cm5Config {
                    jobs: 20_000,
                    ..Cm5Config::default()
                },
                black_box(42),
            ))
        })
    });

    let trace = generate(
        &Cm5Config {
            jobs: 20_000,
            ..Cm5Config::default()
        },
        42,
    );

    group.bench_function("swf_write_20k", |b| {
        b.iter(|| black_box(swf::write_str(&trace, &["bench"])))
    });

    let text = swf::write_str(&trace, &["bench"]);
    group.bench_function("swf_parse_20k", |b| {
        b.iter(|| black_box(swf::parse_str(&text).unwrap()))
    });

    group.bench_function("group_jobs_20k", |b| {
        b.iter(|| black_box(group_jobs(&trace).len()))
    });

    group.bench_function("overprovisioning_histogram_20k", |b| {
        b.iter(|| black_box(overprovisioning_histogram(&trace, 8)))
    });

    group.bench_function("scale_to_load_20k", |b| {
        b.iter(|| black_box(scale_to_load(&trace, 1024, 1.0)))
    });

    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
