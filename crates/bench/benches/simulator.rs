//! Criterion benches: end-to-end simulator throughput.
//!
//! Measures whole simulations (events per second is the budget that bounds
//! how large a trace the figure binaries can sweep) for the baseline and
//! the Algorithm 1 estimator, under FCFS and EASY backfilling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Workload;

fn trace(jobs: usize) -> Workload {
    let mut w = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        42,
    );
    w.retain_max_nodes(512);
    scale_to_load(&w, 1024, 1.0)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for jobs in [1_000usize, 5_000] {
        let w = trace(jobs);
        group.bench_with_input(BenchmarkId::new("fcfs_pass_through", jobs), &w, |b, w| {
            b.iter(|| {
                black_box(
                    Simulation::new(
                        SimConfig::default(),
                        paper_cluster(24),
                        EstimatorSpec::PassThrough,
                    )
                    .run(w),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fcfs_successive", jobs), &w, |b, w| {
            b.iter(|| {
                black_box(
                    Simulation::new(
                        SimConfig::default(),
                        paper_cluster(24),
                        EstimatorSpec::paper_successive(),
                    )
                    .run(w),
                )
            })
        });
        let easy = SimConfig::default().with_scheduling(SchedulingPolicy::EasyBackfill);
        group.bench_with_input(BenchmarkId::new("easy_successive", jobs), &w, |b, w| {
            b.iter(|| {
                black_box(
                    Simulation::new(easy, paper_cluster(24), EstimatorSpec::paper_successive())
                        .run(w),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
