//! Criterion benches: estimator decision throughput.
//!
//! The estimator sits on the scheduler's submission path, so its
//! per-decision cost matters. These benches measure estimate+feedback
//! cycles for each estimator over a realistic job stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use resmatch_cluster::CapacityLadder;
use resmatch_core::prelude::*;
use resmatch_workload::job::JobBuilder;
use resmatch_workload::Job;

const MB: u64 = 1024;

fn job_stream(n: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            JobBuilder::new(i)
                .user((i % 50) as u32)
                .app((i % 20) as u32)
                .requested_mem_kb((8 + (i % 4) * 8) * MB)
                .used_mem_kb((2 + (i % 6)) * MB)
                .build()
        })
        .collect()
}

fn ladder() -> CapacityLadder {
    CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB])
}

fn drive(est: &mut dyn ResourceEstimator, jobs: &[Job]) -> u64 {
    let ctx = EstimateContext::default();
    let mut acc = 0u64;
    for job in jobs {
        let d = est.estimate(job, &ctx);
        acc = acc.wrapping_add(d.mem_kb);
        let ok = job.used_mem_kb <= d.mem_kb.max(4 * MB);
        est.feedback(
            job,
            &d,
            &if ok {
                Feedback::success()
            } else {
                Feedback::failure()
            },
            &ctx,
        );
    }
    acc
}

fn bench_estimators(c: &mut Criterion) {
    let jobs = job_stream(10_000);
    let mut group = c.benchmark_group("estimator_10k_decisions");
    // Every estimator is constructed through the declarative spec — the
    // single construction path the rest of the workspace uses.
    let cases = [
        ("successive_approximation", "successive"),
        ("last_instance", "last-instance"),
        ("reinforcement", "reinforcement"),
        ("regression", "regression"),
        ("robust_bisection", "robust"),
        ("pass_through", "pass-through"),
    ];
    for (label, spec_name) in cases {
        let spec: EstimatorSpec = spec_name.parse().expect("canonical estimator name");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut est = spec.build(&ladder());
                black_box(drive(est.as_mut(), &jobs))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
