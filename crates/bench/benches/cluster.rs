//! Criterion benches: allocator hot path.
//!
//! `try_allocate`/`release` run on every scheduling pass; the paper-scale
//! simulation performs millions of them, so the pooled free-list design is
//! benchmarked here against allocation sizes and policies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use resmatch_cluster::{ClusterBuilder, Demand, MatchPolicy};

const MB: u64 = 1024;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    for &nodes in &[32u32, 256] {
        for policy in [
            MatchPolicy::BestFit,
            MatchPolicy::FirstFit,
            MatchPolicy::WorstFit,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("alloc_release_{policy:?}"), nodes),
                &nodes,
                |b, &nodes| {
                    let mut cluster = ClusterBuilder::new()
                        .pool(512, 32 * MB)
                        .pool(512, 24 * MB)
                        .build();
                    let demand = Demand::memory(20 * MB);
                    b.iter(|| {
                        let a = cluster
                            .try_allocate(nodes, black_box(&demand), policy, 1)
                            .expect("fits");
                        cluster.release(a);
                    })
                },
            );
        }
    }

    group.bench_function("failed_probe", |b| {
        let mut cluster = ClusterBuilder::new()
            .pool(512, 32 * MB)
            .pool(512, 24 * MB)
            .build();
        // Saturate the 32 MB pool so high-memory probes fail fast.
        let _held = cluster
            .try_allocate(512, &Demand::memory(32 * MB), MatchPolicy::BestFit, 7)
            .expect("fits");
        let demand = Demand::memory(28 * MB);
        b.iter(|| {
            assert!(cluster
                .try_allocate(4, black_box(&demand), MatchPolicy::BestFit, 8)
                .is_none());
        })
    });

    group.bench_function("ladder_round_up", |b| {
        let cluster = ClusterBuilder::new()
            .pool(512, 32 * MB)
            .pool(256, 24 * MB)
            .pool(128, 16 * MB)
            .pool(128, 8 * MB)
            .build();
        let ladder = cluster.memory_ladder();
        b.iter(|| {
            let mut acc = 0u64;
            for kb in (1..200).map(|i| i * 173) {
                acc = acc.wrapping_add(ladder.round_up(black_box(kb)).unwrap_or(kb));
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
