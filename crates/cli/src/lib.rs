//! Command-line interface internals for the `resmatch` binary.
//!
//! The binary wraps the workspace's library surface for shell use:
//!
//! ```text
//! resmatch generate --jobs 122055 --seed 42 --out trace.swf
//! resmatch analyze trace.swf
//! resmatch simulate trace.swf --cluster 512x32M,512x24M --estimator successive --load 1.2
//! resmatch sweep trace.swf --cluster 512x32M,512x24M --estimator successive \
//!          --loads 0.2,0.4,0.6,0.8,1.0,1.2 --csv sweep.csv
//! ```
//!
//! Argument handling is a small hand-rolled parser ([`args`]) so the
//! workspace's dependency set stays at the approved crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod parse;

/// CLI-level error: a message for the user plus the exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
}

impl CliError {
    /// Build from anything stringy.
    pub fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Shorthand result type.
pub type CliResult<T> = Result<T, CliError>;
