//! Subcommand implementations. Each takes parsed [`crate::args::Args`] and
//! returns the text to print, so commands stay unit-testable without
//! spawning processes.

use resmatch_classad::{Matchmaker, PoolAd};
use resmatch_cluster::{Cluster, Demand};
use resmatch_core::prelude::Feedback;
use resmatch_service::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::analysis::{
    group_size_distribution, histogram_log_fit, overprovisioning_histogram, trace_stats,
};
use resmatch_workload::attrs::{synthesize_attributes, AttrConfig};
use resmatch_workload::calibration::{measure, CalibrationReport, CalibrationTargets};
use resmatch_workload::load::scale_to_load;
use resmatch_workload::swf;
use resmatch_workload::synthetic::{generate, service_stream, Cm5Config};
use resmatch_workload::Workload;

use crate::args::{ArgSpec, Args};
use crate::parse::{parse_cluster, parse_cluster_ads, parse_estimator, parse_loads};
use crate::{CliError, CliResult};

/// Load a trace: positional SWF path, or `--synthetic N` jobs.
fn load_trace(args: &Args, seed: u64) -> CliResult<Workload> {
    if let Some(path) = args.positional(0) {
        let parsed = swf::parse_file(std::path::Path::new(path))
            .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?
            .map_err(|e| CliError::new(format!("cannot parse {path}: {e}")))?;
        Ok(parsed.workload)
    } else {
        let jobs: usize = args.get_parsed("synthetic", 0usize)?;
        if jobs == 0 {
            return Err(CliError::new(
                "give an SWF path or --synthetic <jobs> to generate one",
            ));
        }
        let mut w = generate(
            &Cm5Config {
                jobs,
                ..Cm5Config::default()
            },
            seed,
        );
        w.retain_max_nodes(512);
        Ok(w)
    }
}

/// Default cluster layout: the paper's two-pool CM-5 partitioning.
const DEFAULT_CLUSTER: &str = "512x32M,512x24M";

fn cluster_from(args: &Args) -> CliResult<Cluster> {
    parse_cluster(args.get("cluster").unwrap_or(DEFAULT_CLUSTER))
}

/// Cluster plus index-aligned capability ads, for matchmaking mode.
fn cluster_ads_from(args: &Args) -> CliResult<(Cluster, Vec<PoolAd>)> {
    parse_cluster_ads(args.get("cluster").unwrap_or(DEFAULT_CLUSTER))
}

/// Build the `--matchmaking` layer: pool ads from the cluster spec, plus
/// the operator's `--constrain` / `--rank` expressions, compiled up front
/// so a typo fails the command instead of the first allocation.
fn matchmaker_from(args: &Args, ads: &[PoolAd]) -> CliResult<Matchmaker> {
    let mut mm = Matchmaker::new(ads);
    if let Some(text) = args.get("constrain") {
        mm = mm
            .with_constraint(text)
            .map_err(|e| CliError::new(format!("bad --constrain expression: {e}")))?;
    }
    if let Some(text) = args.get("rank") {
        mm = mm
            .with_rank(text)
            .map_err(|e| CliError::new(format!("bad --rank expression: {e}")))?;
    }
    Ok(mm)
}

fn sim_config(args: &Args) -> CliResult<SimConfig> {
    let policy = match args.get("policy").unwrap_or("fcfs") {
        "fcfs" => SchedulingPolicy::Fcfs,
        "sjf" => SchedulingPolicy::Sjf,
        "easy" => SchedulingPolicy::EasyBackfill,
        other => {
            return Err(CliError::new(format!(
                "unknown policy {other:?}; expected fcfs, sjf, or easy"
            )))
        }
    };
    Ok(SimConfig::default()
        .with_scheduling(policy)
        .with_feedback(if args.has_switch("explicit") {
            FeedbackMode::Explicit
        } else {
            FeedbackMode::Implicit
        })
        .with_seed(args.get_parsed("sim-seed", 0xC0FFEEu64)?))
}

/// `resmatch generate --jobs N [--seed S] [--diurnal A] --out trace.swf`
pub fn cmd_generate(tokens: Vec<String>) -> CliResult<String> {
    let args = ArgSpec::new()
        .value("jobs")
        .value("seed")
        .value("diurnal")
        .value("out")
        .parse(tokens)?;
    let jobs: usize = args.get_parsed("jobs", 122_055)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let diurnal: f64 = args.get_parsed("diurnal", 0.0)?;
    let trace = generate(
        &Cm5Config {
            jobs,
            diurnal_amplitude: diurnal,
            ..Cm5Config::default()
        },
        seed,
    );
    let text = swf::write_str(
        &swf::quantize(&trace),
        &[
            "Computer: synthetic Thinking Machines CM-5 (resmatch)",
            "MaxNodes: 1024",
        ],
    );
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {jobs} jobs to {path}"))
        }
        None => Ok(text),
    }
}

/// `resmatch analyze [trace.swf | --synthetic N] [--seed S]`
pub fn cmd_analyze(tokens: Vec<String>) -> CliResult<String> {
    use std::fmt::Write as _;
    let args = ArgSpec::new()
        .value("synthetic")
        .value("seed")
        .parse(tokens)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let trace = load_trace(&args, seed)?;
    let stats = trace_stats(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "jobs:                  {}", stats.jobs);
    let _ = writeln!(
        out,
        "similarity groups:     {} (mean size {:.1})",
        stats.groups, stats.mean_group_size
    );
    let _ = writeln!(
        out,
        "P(request >= 2x used): {:.1}%",
        stats.overprovisioned_2x * 100.0
    );
    let _ = writeln!(out, "max ratio:             {:.0}x", stats.max_ratio);
    let hist = overprovisioning_histogram(&trace, 8);
    if let Some(fit) = histogram_log_fit(&hist) {
        let _ = writeln!(out, "histogram log-fit R^2: {:.2}", fit.r_squared);
    }
    let big: f64 = group_size_distribution(&trace)
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.job_fraction)
        .sum();
    let _ = writeln!(out, "jobs in groups >= 10:  {:.1}%", big * 100.0);
    let report = CalibrationReport::compare(&measure(&trace), &CalibrationTargets::paper());
    let _ = writeln!(
        out,
        "calibration vs. paper: worst relative error {:.1}% ({})",
        report.worst_error() * 100.0,
        if report.passes(0.30) { "PASS" } else { "DRIFT" }
    );
    Ok(out)
}

/// `resmatch simulate [trace | --synthetic N] --cluster L --estimator E
///  [--load X] [--policy P] [--alpha A] [--beta B] [--explicit]
///  [--matchmaking] [--constrain EXPR] [--rank EXPR] [--attrs]`
pub fn cmd_simulate(tokens: Vec<String>) -> CliResult<String> {
    use std::fmt::Write as _;
    let args = ArgSpec::new()
        .value("synthetic")
        .value("seed")
        .value("cluster")
        .value("estimator")
        .value("load")
        .value("policy")
        .value("alpha")
        .value("beta")
        .value("sim-seed")
        .switch("explicit")
        .switch("matchmaking")
        .value("constrain")
        .value("rank")
        .switch("attrs")
        .parse(tokens)?;
    let matchmaking = args.has_switch("matchmaking");
    for flag in ["constrain", "rank"] {
        if args.get(flag).is_some() && !matchmaking {
            return Err(CliError::new(format!("--{flag} requires --matchmaking")));
        }
    }
    let seed: u64 = args.get_parsed("seed", 42)?;
    let trace = load_trace(&args, seed)?;
    let (cluster, ads) = cluster_ads_from(&args)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let beta: f64 = args.get_parsed("beta", 0.0)?;
    let spec = parse_estimator(args.get("estimator").unwrap_or("successive"), alpha, beta)?;
    let cfg = sim_config(&args)?;
    let load: f64 = args.get_parsed("load", 0.0)?;
    let mut trace = if load > 0.0 {
        scale_to_load(&trace, cluster.total_nodes(), load)
    } else {
        trace
    };
    if args.has_switch("attrs") {
        synthesize_attributes(&mut trace, &AttrConfig::default(), seed);
    }
    let mut builder = Simulation::builder()
        .config(cfg)
        .cluster(cluster)
        .estimator(spec);
    if matchmaking {
        builder = builder.matchmaking(Box::new(matchmaker_from(&args, &ads)?));
    }
    let sim = builder.build().map_err(|e| CliError::new(format!("{e}")))?;
    let r = sim.run(&trace);
    let mut out = String::new();
    if matchmaking {
        let _ = writeln!(
            out,
            "matchmaking:          on (constraint: {}; rank: {})",
            args.get("constrain").unwrap_or("none"),
            args.get("rank").unwrap_or("pool order"),
        );
    }
    let _ = writeln!(out, "estimator:            {}", r.estimator);
    let _ = writeln!(out, "completed jobs:       {}", r.completed_jobs);
    let _ = writeln!(out, "dropped jobs:         {}", r.dropped_jobs);
    let _ = writeln!(out, "utilization:          {:.4}", r.utilization());
    let _ = writeln!(out, "busy utilization:     {:.4}", r.busy_utilization());
    let _ = writeln!(out, "mean slowdown:        {:.2}", r.mean_slowdown());
    let _ = writeln!(out, "mean wait:            {:.0} s", r.mean_wait_s());
    let _ = writeln!(
        out,
        "failed executions:    {} ({:.4}%)",
        r.failed_executions,
        r.failed_execution_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "lowered jobs:         {:.1}%",
        r.lowered_job_fraction() * 100.0
    );
    Ok(out)
}

/// `resmatch sweep [trace | --synthetic N] --loads 0.2,0.4 ... [--csv out]`
pub fn cmd_sweep(tokens: Vec<String>) -> CliResult<String> {
    let args = ArgSpec::new()
        .value("synthetic")
        .value("seed")
        .value("cluster")
        .value("estimator")
        .value("loads")
        .value("policy")
        .value("alpha")
        .value("beta")
        .value("sim-seed")
        .value("csv")
        .switch("explicit")
        .switch("progress")
        .parse(tokens)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let trace = load_trace(&args, seed)?;
    let cluster = cluster_from(&args)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let beta: f64 = args.get_parsed("beta", 0.0)?;
    let spec = parse_estimator(args.get("estimator").unwrap_or("successive"), alpha, beta)?;
    let loads = parse_loads(args.get("loads").unwrap_or("0.2,0.4,0.6,0.8,1.0,1.2"))?;
    let sweep = SweepConfig::default()
        .with_sim(sim_config(&args)?)
        .with_loads(loads);
    let progress = ProgressObserver::new("sweep", 1_000_000);
    let observer: Option<&dyn SweepObserver> = if args.has_switch("progress") {
        Some(&progress)
    } else {
        None
    };
    let points = run_load_sweep_observed(&trace, &cluster, spec, &sweep, observer);
    let csv = load_sweep_csv(&points);
    match args.get("csv") {
        Some(path) => {
            std::fs::write(path, &csv)
                .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
            Ok(format!("wrote {} sweep points to {path}", points.len()))
        }
        None => Ok(csv),
    }
}

/// `resmatch serve --ops N --groups G [--shards S] [--batch B]
///  [--estimator NAME] [--seed S] [--cluster L] [--snapshot-out FILE]`
///
/// Runs the online estimator service over a synthetic service-shaped
/// request stream and reports sustained throughput.
pub fn cmd_serve(tokens: Vec<String>) -> CliResult<String> {
    use std::fmt::Write as _;
    let args = ArgSpec::new()
        .value("ops")
        .value("groups")
        .value("shards")
        .value("batch")
        .value("estimator")
        .value("alpha")
        .value("beta")
        .value("seed")
        .value("cluster")
        .value("snapshot-out")
        .parse(tokens)?;
    let ops: u64 = args.get_parsed("ops", 100_000u64)?;
    let groups: u64 = args.get_parsed("groups", 10_000u64)?;
    if groups == 0 {
        return Err(CliError::new("--groups must be at least 1"));
    }
    let shards: usize = args.get_parsed("shards", 8usize)?;
    let batch: usize = args.get_parsed("batch", 1024usize)?;
    let seed: u64 = args.get_parsed("seed", 42u64)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let beta: f64 = args.get_parsed("beta", 0.0)?;
    let spec = parse_estimator(args.get("estimator").unwrap_or("successive"), alpha, beta)?;
    let ladder = cluster_from(&args)?.memory_ladder();
    let cfg = ServiceConfig::new(spec, ladder.clone())
        .shards(shards)
        .feedback_batch(batch);
    let mut svc = EstimatorService::new(&cfg).map_err(|e| CliError::new(format!("{e}")))?;

    let start = std::time::Instant::now();
    for job in service_stream(ops, groups, seed) {
        let granted = svc.estimate(&job);
        let node = ladder.round_up(granted.mem_kb).unwrap_or(granted.mem_kb);
        let fb = Feedback::explicit(job.used_mem_kb <= node, Demand::memory(job.used_mem_kb));
        svc.observe(&job, granted, fb);
    }
    svc.flush();
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let stats = svc.stats();
    let mut out = String::new();
    let _ = writeln!(out, "estimator:         {}", spec.name());
    let _ = writeln!(out, "shards:            {shards} (feedback batch {batch})");
    let _ = writeln!(
        out,
        "operations:        {} queries, {} observations",
        stats.queries, stats.observations
    );
    let _ = writeln!(
        out,
        "queries/sec:       {:.0}",
        stats.queries as f64 / elapsed
    );
    let _ = writeln!(
        out,
        "feedback/sec:      {:.0} (in {} batches)",
        stats.applied as f64 / elapsed,
        stats.batches
    );
    match svc.snapshot() {
        Ok(doc) => {
            let _ = writeln!(out, "similarity groups: {}", doc.state.group_count());
            if let Some(path) = args.get("snapshot-out") {
                doc.write_to(std::path::Path::new(path))
                    .map_err(|e| CliError::new(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(out, "snapshot:          wrote {path}");
            }
        }
        Err(_) if args.get("snapshot-out").is_some() => {
            return Err(CliError::new(format!(
                "--snapshot-out: estimator {} does not support snapshots",
                spec.name()
            )));
        }
        Err(_) => {}
    }
    Ok(out)
}

/// `resmatch snapshot info <file.rsnp>` — inspect a service snapshot file.
pub fn cmd_snapshot(tokens: Vec<String>) -> CliResult<String> {
    use std::fmt::Write as _;
    let args = ArgSpec::new().parse(tokens)?;
    match args.positional(0) {
        Some("info") => {
            let path = args
                .positional(1)
                .ok_or_else(|| CliError::new("usage: resmatch snapshot info <file.rsnp>"))?;
            let doc = SnapshotDocument::read_from(std::path::Path::new(path))
                .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
            let mut out = String::new();
            let _ = writeln!(out, "file:           {path}");
            let _ = writeln!(out, "estimator:      {}", doc.estimator);
            let _ = writeln!(out, "state kind:     {}", doc.state.kind());
            let _ = writeln!(out, "groups:         {}", doc.state.group_count());
            let _ = writeln!(out, "shards at save: {}", doc.shards_at_save);
            Ok(out)
        }
        Some(other) => Err(CliError::new(format!(
            "unknown snapshot action {other:?}; try `resmatch snapshot info <file>`"
        ))),
        None => Err(CliError::new("usage: resmatch snapshot info <file.rsnp>")),
    }
}

/// Usage text.
pub fn usage() -> String {
    "resmatch — resource matching with estimation of actual job requirements\n\
     \n\
     USAGE:\n\
     resmatch generate --jobs N [--seed S] [--diurnal A] [--out trace.swf]\n\
     resmatch analyze  [trace.swf | --synthetic N] [--seed S]\n\
     resmatch simulate [trace.swf | --synthetic N] [--cluster 512x32M,512x24M]\n\
     \x20                [--estimator NAME] [--load X] [--policy fcfs|sjf|easy]\n\
     \x20                [--alpha A] [--beta B] [--explicit]\n\
     \x20                [--matchmaking] [--constrain EXPR] [--rank EXPR] [--attrs]\n\
     resmatch sweep    [trace.swf | --synthetic N] [--loads 0.2,0.4,...]\n\
     \x20                [--cluster ...] [--estimator NAME] [--csv out.csv]\n\
     \x20                [--progress]\n\
     resmatch serve    --ops N --groups G [--shards S] [--batch B]\n\
     \x20                [--estimator NAME] [--seed S] [--cluster ...]\n\
     \x20                [--snapshot-out state.rsnp]\n\
     resmatch snapshot info <file.rsnp>\n\
     \n\
     Estimators: pass-through, oracle, successive, last-instance, regression,\n\
     \x20           reinforcement, robust, multi-resource, per-resource,\n\
     \x20           quantile, adaptive, warm-start\n\
     \n\
     Cluster pools accept capability attributes for --matchmaking, e.g.\n\
     \x20 --cluster 512x32M:disk=2G:pkgs=3:arch=sparc,512x24M\n\
     (disk=SIZE scratch disk, pkgs=MASK installed packages, arch=NAME tag).\n\
     --attrs synthesizes per-class disk requests and package masks on the\n\
     trace; --constrain/--rank take ClassAd expressions where my is the job\n\
     ad and other the machine ad, e.g. --rank \"other.Memory\".\n"
        .to_string()
}

/// Dispatch a full command line (without the program name).
pub fn dispatch(mut argv: Vec<String>) -> CliResult<String> {
    if argv.is_empty() {
        return Ok(usage());
    }
    let cmd = argv.remove(0);
    match cmd.as_str() {
        "generate" => cmd_generate(argv),
        "analyze" => cmd_analyze(argv),
        "simulate" => cmd_simulate(argv),
        "sweep" => cmd_sweep(argv),
        "serve" => cmd_serve(argv),
        "snapshot" => cmd_snapshot(argv),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::new(format!(
            "unknown subcommand {other:?}; try `resmatch help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn generate_to_stdout_is_parseable_swf() {
        let out = cmd_generate(toks("--jobs 50 --seed 7")).unwrap();
        let parsed = swf::parse_str(&out).unwrap();
        assert_eq!(parsed.workload.len(), 50);
        assert_eq!(parsed.header.max_nodes, Some(1024));
    }

    #[test]
    fn analyze_synthetic_reports_stats() {
        let out = cmd_analyze(toks("--synthetic 2000 --seed 1")).unwrap();
        assert!(out.contains("jobs:"));
        assert!(out.contains("similarity groups:"));
        assert!(out.contains("calibration vs. paper:"));
    }

    #[test]
    fn analyze_without_input_errors() {
        let err = cmd_analyze(Vec::new()).unwrap_err();
        assert!(err.message.contains("--synthetic"));
    }

    #[test]
    fn simulate_end_to_end() {
        let out = cmd_simulate(toks(
            "--synthetic 400 --estimator successive --load 1.0 --cluster 512x32M,512x24M",
        ))
        .unwrap();
        assert!(out.contains("utilization:"), "{out}");
        assert!(out.contains("completed jobs:       400"), "{out}");
    }

    #[test]
    fn simulate_matchall_matchmaking_is_output_identical() {
        // An unconstrained matchmaker over untagged pools must reproduce
        // the legacy path exactly — same metrics, byte for byte, modulo
        // the mode banner line.
        let base = "--synthetic 300 --load 1.0 --cluster 64x32M,64x24M";
        let legacy = cmd_simulate(toks(base)).unwrap();
        let matched = cmd_simulate(toks(&format!("{base} --matchmaking"))).unwrap();
        let (banner, rest) = matched.split_once('\n').unwrap();
        assert!(banner.starts_with("matchmaking:"), "{matched}");
        assert_eq!(legacy, rest);
    }

    #[test]
    fn simulate_disk_constrained_scenario_runs() {
        // One pool with finite scratch disk, one unconstrained; enriched
        // jobs whose requests exceed 2G can only land on the second pool.
        let out = cmd_simulate(toks(
            "--synthetic 300 --load 1.0 --matchmaking --attrs \
             --cluster 64x32M:disk=2G,64x24M",
        ))
        .unwrap();
        assert!(out.contains("matchmaking:          on"), "{out}");
        assert!(out.contains("completed jobs:"), "{out}");
    }

    #[test]
    fn simulate_license_pool_scenario_runs() {
        // Licensed software lives on one pool (pkgs mask); a rank
        // expression prefers roomier nodes among eligible pools.
        let out = cmd_simulate(toks(
            "--synthetic 300 --load 1.0 --matchmaking --attrs \
             --cluster 64x32M:pkgs=15:arch=sparc,64x24M:pkgs=0 \
             --rank other.Memory",
        ))
        .unwrap();
        assert!(out.contains("rank: other.Memory"), "{out}");
        assert!(out.contains("completed jobs:"), "{out}");
    }

    #[test]
    fn simulate_constraint_restricts_to_tagged_pool() {
        // Constrain every job to the sparc-tagged pool: the untagged pool
        // makes other.Arch undefined, which rejects.
        let out = cmd_simulate(toks(
            "--synthetic 200 --load 1.0 --matchmaking \
             --cluster 32x32M:arch=sparc,32x24M \
             --constrain other.Arch==\"sparc\"",
        ))
        .unwrap();
        assert!(out.contains("constraint: other.Arch==\"sparc\""), "{out}");
        assert!(out.contains("completed jobs:"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_matchmaking_flags() {
        assert!(
            cmd_simulate(toks("--synthetic 10 --matchmaking --constrain 1+"))
                .unwrap_err()
                .message
                .contains("bad --constrain")
        );
        assert!(cmd_simulate(toks("--synthetic 10 --matchmaking --rank )("))
            .unwrap_err()
            .message
            .contains("bad --rank"));
        assert!(cmd_simulate(toks("--synthetic 10 --constrain true"))
            .unwrap_err()
            .message
            .contains("requires --matchmaking"));
        assert!(cmd_simulate(toks("--synthetic 10 --rank other.Memory"))
            .unwrap_err()
            .message
            .contains("requires --matchmaking"));
    }

    #[test]
    fn simulate_rejects_bad_estimator_and_policy() {
        assert!(cmd_simulate(toks("--synthetic 10 --estimator bogus"))
            .unwrap_err()
            .message
            .contains("unknown estimator"));
        assert!(cmd_simulate(toks("--synthetic 10 --policy bogus"))
            .unwrap_err()
            .message
            .contains("unknown policy"));
    }

    #[test]
    fn sweep_produces_csv() {
        let out = cmd_sweep(toks(
            "--synthetic 300 --loads 0.5,1.0 --cluster 64x32M,64x24M",
        ))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("offered_load,"));
    }

    #[test]
    fn dispatch_routes_and_help() {
        assert!(dispatch(toks("help")).unwrap().contains("USAGE"));
        assert!(dispatch(Vec::new()).unwrap().contains("USAGE"));
        assert!(dispatch(toks("frobnicate"))
            .unwrap_err()
            .message
            .contains("unknown subcommand"));
    }

    #[test]
    fn serve_reports_throughput_and_groups() {
        let out = cmd_serve(toks(
            "--ops 3000 --groups 200 --shards 4 --batch 64 --seed 9",
        ))
        .unwrap();
        assert!(
            out.contains("estimator:         successive-approximation"),
            "{out}"
        );
        assert!(out.contains("queries/sec:"), "{out}");
        assert!(out.contains("3000 queries, 3000 observations"), "{out}");
        assert!(out.contains("similarity groups:"), "{out}");
    }

    #[test]
    fn serve_snapshot_out_then_snapshot_info_round_trip() {
        let dir = std::env::temp_dir().join("resmatch_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.rsnp");
        let msg = cmd_serve(toks(&format!(
            "--ops 2000 --groups 150 --snapshot-out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("snapshot:          wrote"), "{msg}");
        let info = cmd_snapshot(toks(&format!("info {}", path.display()))).unwrap();
        assert!(
            info.contains("estimator:      successive-approximation"),
            "{info}"
        );
        assert!(info.contains("state kind:     successive-v1"), "{info}");
        assert!(info.contains("shards at save: 8"), "{info}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_rejects_snapshot_out_for_stateless_estimators() {
        let err = cmd_serve(toks(
            "--ops 100 --groups 10 --estimator pass-through --snapshot-out /tmp/resmatch_noop.rsnp",
        ))
        .unwrap_err();
        assert!(
            err.message.contains("does not support snapshots"),
            "{err:?}"
        );
    }

    #[test]
    fn serve_rejects_zero_groups() {
        let err = cmd_serve(toks("--ops 100 --groups 0")).unwrap_err();
        assert!(err.message.contains("--groups"), "{err:?}");
    }

    #[test]
    fn snapshot_info_errors() {
        assert!(cmd_snapshot(Vec::new())
            .unwrap_err()
            .message
            .contains("usage"));
        assert!(cmd_snapshot(toks("info"))
            .unwrap_err()
            .message
            .contains("usage"));
        assert!(cmd_snapshot(toks("info /nonexistent/x.rsnp"))
            .unwrap_err()
            .message
            .contains("cannot read"));
        assert!(cmd_snapshot(toks("frobnicate"))
            .unwrap_err()
            .message
            .contains("unknown snapshot action"));
    }

    #[test]
    fn generate_writes_file_round_trip() {
        let dir = std::env::temp_dir().join("resmatch_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.swf");
        let msg = cmd_generate(toks(&format!("--jobs 30 --out {}", path.display()))).unwrap();
        assert!(msg.contains("wrote 30 jobs"));
        let parsed = swf::parse_file(&path).unwrap().unwrap();
        assert_eq!(parsed.workload.len(), 30);
        std::fs::remove_file(&path).ok();
    }
}
