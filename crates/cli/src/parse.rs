//! Domain-value parsing: cluster layouts, estimator names, load lists.

use resmatch_cluster::{Cluster, ClusterBuilder};
use resmatch_sim::EstimatorSpec;

use crate::{CliError, CliResult};

/// Parse a memory size: a plain number is KB; `M`/`m` suffix means MB,
/// `G`/`g` GB.
pub fn parse_mem_kb(raw: &str) -> CliResult<u64> {
    let raw = raw.trim();
    let (digits, factor) = match raw.chars().last() {
        Some('M') | Some('m') => (&raw[..raw.len() - 1], 1024),
        Some('G') | Some('g') => (&raw[..raw.len() - 1], 1024 * 1024),
        _ => (raw, 1),
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| CliError::new(format!("bad memory size {raw:?}")))?;
    Ok(value * factor)
}

/// Parse a cluster layout: comma-separated `COUNTxMEM` pools, e.g.
/// `512x32M,512x24M`.
pub fn parse_cluster(raw: &str) -> CliResult<Cluster> {
    let mut builder = ClusterBuilder::new();
    let mut any = false;
    for pool in raw.split(',') {
        let (count, mem) = pool
            .split_once(['x', 'X'])
            .ok_or_else(|| CliError::new(format!("pool {pool:?} must look like 512x32M")))?;
        let count: u32 = count
            .trim()
            .parse()
            .map_err(|_| CliError::new(format!("bad node count in {pool:?}")))?;
        if count == 0 {
            return Err(CliError::new(format!("pool {pool:?} has zero nodes")));
        }
        builder = builder.pool(count, parse_mem_kb(mem)?);
        any = true;
    }
    if !any {
        return Err(CliError::new("cluster layout is empty"));
    }
    Ok(builder.build())
}

/// Estimator names accepted by `--estimator` — the canonical
/// [`EstimatorSpec`] grammar names.
pub const ESTIMATOR_NAMES: &[&str] = EstimatorSpec::NAMES;

/// Parse an `--estimator` value through [`EstimatorSpec`]'s `FromStr`
/// grammar (`name[:alpha[,beta]]`), honoring `--alpha`/`--beta` overrides
/// for the successive family when the name itself carries no suffix.
pub fn parse_estimator(name: &str, alpha: f64, beta: f64) -> CliResult<EstimatorSpec> {
    let spec: EstimatorSpec = name.parse().map_err(|e| CliError::new(format!("{e}")))?;
    Ok(if name.contains(':') {
        spec
    } else {
        spec.with_alpha_beta(alpha, beta)
    })
}

/// Parse a comma-separated load list, e.g. `0.2,0.4,0.8`.
pub fn parse_loads(raw: &str) -> CliResult<Vec<f64>> {
    let loads: Result<Vec<f64>, _> = raw.split(',').map(|s| s.trim().parse::<f64>()).collect();
    let loads = loads.map_err(|_| CliError::new(format!("bad load list {raw:?}")))?;
    if loads.is_empty() || loads.iter().any(|&l| l <= 0.0 || !l.is_finite()) {
        return Err(CliError::new("loads must be positive numbers"));
    }
    Ok(loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_suffixes() {
        assert_eq!(parse_mem_kb("1024").unwrap(), 1024);
        assert_eq!(parse_mem_kb("32M").unwrap(), 32 * 1024);
        assert_eq!(parse_mem_kb("32m").unwrap(), 32 * 1024);
        assert_eq!(parse_mem_kb("2G").unwrap(), 2 * 1024 * 1024);
        assert!(parse_mem_kb("abc").is_err());
        assert!(parse_mem_kb("12.5M").is_err());
    }

    #[test]
    fn cluster_layouts() {
        let c = parse_cluster("512x32M,512x24M").unwrap();
        assert_eq!(c.total_nodes(), 1024);
        assert_eq!(c.memory_ladder().rungs(), &[24 * 1024, 32 * 1024]);
        let single = parse_cluster("16x8M").unwrap();
        assert_eq!(single.total_nodes(), 16);
    }

    #[test]
    fn cluster_layout_errors() {
        assert!(parse_cluster("512").is_err());
        assert!(parse_cluster("0x32M").is_err());
        assert!(parse_cluster("ax32M").is_err());
        assert!(parse_cluster("512xbogus").is_err());
    }

    #[test]
    fn estimator_names_all_parse() {
        for name in ESTIMATOR_NAMES {
            assert!(
                parse_estimator(name, 2.0, 0.0).is_ok(),
                "estimator {name} failed to parse"
            );
        }
        assert!(parse_estimator("bogus", 2.0, 0.0).is_err());
    }

    #[test]
    fn estimator_honors_alpha_beta() {
        match parse_estimator("successive", 4.0, 0.5).unwrap() {
            EstimatorSpec::Successive(cfg) => {
                assert_eq!(cfg.alpha, 4.0);
                assert_eq!(cfg.beta, 0.5);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn estimator_suffix_wins_over_flags() {
        match parse_estimator("successive:8,1", 2.0, 0.0).unwrap() {
            EstimatorSpec::Successive(cfg) => {
                assert_eq!(cfg.alpha, 8.0);
                assert_eq!(cfg.beta, 1.0);
            }
            other => panic!("unexpected spec {other:?}"),
        }
        assert!(parse_estimator("oracle:2", 2.0, 0.0).is_err());
    }

    #[test]
    fn load_lists() {
        assert_eq!(parse_loads("0.2,0.4").unwrap(), vec![0.2, 0.4]);
        assert_eq!(parse_loads(" 1.0 ").unwrap(), vec![1.0]);
        assert!(parse_loads("0.2,-1").is_err());
        assert!(parse_loads("abc").is_err());
        assert!(parse_loads("0").is_err());
    }
}
