//! Domain-value parsing: cluster layouts, estimator names, load lists.

use resmatch_classad::PoolAd;
use resmatch_cluster::{Capacity, Cluster, ClusterBuilder};
use resmatch_sim::EstimatorSpec;

use crate::{CliError, CliResult};

/// Parse a memory size: a plain number is KB; `M`/`m` suffix means MB,
/// `G`/`g` GB.
pub fn parse_mem_kb(raw: &str) -> CliResult<u64> {
    let raw = raw.trim();
    let (digits, factor) = match raw.chars().last() {
        Some('M') | Some('m') => (&raw[..raw.len() - 1], 1024),
        Some('G') | Some('g') => (&raw[..raw.len() - 1], 1024 * 1024),
        _ => (raw, 1),
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| CliError::new(format!("bad memory size {raw:?}")))?;
    Ok(value * factor)
}

/// Parse a cluster layout: comma-separated `COUNTxMEM` pools, e.g.
/// `512x32M,512x24M`. Sugar over [`parse_cluster_ads`] for callers that
/// only need the capacity model.
pub fn parse_cluster(raw: &str) -> CliResult<Cluster> {
    Ok(parse_cluster_ads(raw)?.0)
}

/// Parse a cluster layout together with per-pool capability ads.
///
/// Each pool is `COUNTxMEM` optionally followed by `:`-separated
/// attributes, e.g. `512x32M:disk=2G:pkgs=3:arch=sparc`:
///
/// - `disk=SIZE` — per-node scratch disk (same `M`/`G` suffixes as
///   memory; default unbounded),
/// - `pkgs=MASK` — bitmask of installed licensed packages (decimal, or
///   hex with an `0x` prefix; default all packages),
/// - `arch=NAME` — architecture tag advertised as the `Arch` ClassAd
///   attribute (default untagged).
///
/// The returned [`PoolAd`] list is index-aligned with the cluster's
/// pools, ready for [`resmatch_classad::Matchmaker::new`].
pub fn parse_cluster_ads(raw: &str) -> CliResult<(Cluster, Vec<PoolAd>)> {
    let mut builder = ClusterBuilder::new();
    let mut ads = Vec::new();
    for pool in raw.split(',') {
        let mut parts = pool.split(':');
        let head = parts.next().unwrap_or("");
        let (count, mem) = head
            .split_once(['x', 'X'])
            .ok_or_else(|| CliError::new(format!("pool {pool:?} must look like 512x32M")))?;
        let count: u32 = count
            .trim()
            .parse()
            .map_err(|_| CliError::new(format!("bad node count in {pool:?}")))?;
        if count == 0 {
            return Err(CliError::new(format!("pool {pool:?} has zero nodes")));
        }
        let mem_kb = parse_mem_kb(mem)?;
        // Unspecified attributes advertise no constraint, matching
        // `Capacity::memory`: unbounded disk, every package installed.
        let mut disk_kb = u64::MAX;
        let mut packages = u32::MAX;
        let mut arch: Option<&str> = None;
        for attr in parts {
            let (key, value) = attr.split_once('=').ok_or_else(|| {
                CliError::new(format!("pool attribute {attr:?} must be key=value"))
            })?;
            match key.trim() {
                "disk" => disk_kb = parse_mem_kb(value)?,
                "pkgs" => {
                    let value = value.trim();
                    packages = match value
                        .strip_prefix("0x")
                        .or_else(|| value.strip_prefix("0X"))
                    {
                        Some(hex) => u32::from_str_radix(hex, 16),
                        None => value.parse(),
                    }
                    .map_err(|_| CliError::new(format!("bad package mask in {pool:?}")))?;
                }
                "arch" => arch = Some(value.trim()),
                other => {
                    return Err(CliError::new(format!(
                        "unknown pool attribute {other:?}; expected disk=, pkgs=, or arch="
                    )))
                }
            }
        }
        let capacity = Capacity::new(mem_kb, disk_kb, packages);
        let mut ad = PoolAd::new(capacity);
        if let Some(arch) = arch {
            ad = ad.with_arch(arch);
        }
        builder = builder.pool_with(count, capacity);
        ads.push(ad);
    }
    if ads.is_empty() {
        return Err(CliError::new("cluster layout is empty"));
    }
    Ok((builder.build(), ads))
}

/// Estimator names accepted by `--estimator` — the canonical
/// [`EstimatorSpec`] grammar names.
pub const ESTIMATOR_NAMES: &[&str] = EstimatorSpec::NAMES;

/// Parse an `--estimator` value through [`EstimatorSpec`]'s `FromStr`
/// grammar (`name[:alpha[,beta]]`), honoring `--alpha`/`--beta` overrides
/// for the successive family when the name itself carries no suffix.
pub fn parse_estimator(name: &str, alpha: f64, beta: f64) -> CliResult<EstimatorSpec> {
    let spec: EstimatorSpec = name.parse().map_err(|e| CliError::new(format!("{e}")))?;
    Ok(if name.contains(':') {
        spec
    } else {
        spec.with_alpha_beta(alpha, beta)
    })
}

/// Parse a comma-separated load list, e.g. `0.2,0.4,0.8`.
pub fn parse_loads(raw: &str) -> CliResult<Vec<f64>> {
    let loads: Result<Vec<f64>, _> = raw.split(',').map(|s| s.trim().parse::<f64>()).collect();
    let loads = loads.map_err(|_| CliError::new(format!("bad load list {raw:?}")))?;
    if loads.is_empty() || loads.iter().any(|&l| l <= 0.0 || !l.is_finite()) {
        return Err(CliError::new("loads must be positive numbers"));
    }
    Ok(loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_suffixes() {
        assert_eq!(parse_mem_kb("1024").unwrap(), 1024);
        assert_eq!(parse_mem_kb("32M").unwrap(), 32 * 1024);
        assert_eq!(parse_mem_kb("32m").unwrap(), 32 * 1024);
        assert_eq!(parse_mem_kb("2G").unwrap(), 2 * 1024 * 1024);
        assert!(parse_mem_kb("abc").is_err());
        assert!(parse_mem_kb("12.5M").is_err());
    }

    #[test]
    fn cluster_layouts() {
        let c = parse_cluster("512x32M,512x24M").unwrap();
        assert_eq!(c.total_nodes(), 1024);
        assert_eq!(c.memory_ladder().rungs(), &[24 * 1024, 32 * 1024]);
        let single = parse_cluster("16x8M").unwrap();
        assert_eq!(single.total_nodes(), 16);
    }

    #[test]
    fn cluster_layout_errors() {
        assert!(parse_cluster("512").is_err());
        assert!(parse_cluster("0x32M").is_err());
        assert!(parse_cluster("ax32M").is_err());
        assert!(parse_cluster("512xbogus").is_err());
    }

    #[test]
    fn pool_attribute_grammar() {
        let (c, ads) = parse_cluster_ads("4x32M:disk=2G:pkgs=3:arch=sparc,8x24M").unwrap();
        assert_eq!(c.total_nodes(), 12);
        assert_eq!(ads.len(), 2);
        assert_eq!(ads[0].capacity.mem_kb, 32 * 1024);
        assert_eq!(ads[0].capacity.disk_kb, 2 * 1024 * 1024);
        assert_eq!(ads[0].capacity.packages, 3);
        assert_eq!(ads[0].arch.as_deref(), Some("sparc"));
        // Unadorned pools advertise no constraint beyond memory.
        assert_eq!(ads[1].capacity.disk_kb, u64::MAX);
        assert_eq!(ads[1].capacity.packages, u32::MAX);
        assert_eq!(ads[1].arch, None);
    }

    #[test]
    fn pool_attribute_masks_accept_hex() {
        let (_, ads) = parse_cluster_ads("2x8M:pkgs=0xF").unwrap();
        assert_eq!(ads[0].capacity.packages, 0xF);
    }

    #[test]
    fn pool_attribute_errors() {
        assert!(parse_cluster_ads("4x32M:disk").is_err());
        assert!(parse_cluster_ads("4x32M:disk=bogus").is_err());
        assert!(parse_cluster_ads("4x32M:pkgs=zz").is_err());
        assert!(parse_cluster_ads("4x32M:frobs=1").is_err());
    }

    #[test]
    fn estimator_names_all_parse() {
        for name in ESTIMATOR_NAMES {
            assert!(
                parse_estimator(name, 2.0, 0.0).is_ok(),
                "estimator {name} failed to parse"
            );
        }
        assert!(parse_estimator("bogus", 2.0, 0.0).is_err());
    }

    #[test]
    fn estimator_honors_alpha_beta() {
        match parse_estimator("successive", 4.0, 0.5).unwrap() {
            EstimatorSpec::Successive(cfg) => {
                assert_eq!(cfg.alpha, 4.0);
                assert_eq!(cfg.beta, 0.5);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn estimator_suffix_wins_over_flags() {
        match parse_estimator("successive:8,1", 2.0, 0.0).unwrap() {
            EstimatorSpec::Successive(cfg) => {
                assert_eq!(cfg.alpha, 8.0);
                assert_eq!(cfg.beta, 1.0);
            }
            other => panic!("unexpected spec {other:?}"),
        }
        assert!(parse_estimator("oracle:2", 2.0, 0.0).is_err());
    }

    #[test]
    fn load_lists() {
        assert_eq!(parse_loads("0.2,0.4").unwrap(), vec![0.2, 0.4]);
        assert_eq!(parse_loads(" 1.0 ").unwrap(), vec![1.0]);
        assert!(parse_loads("0.2,-1").is_err());
        assert!(parse_loads("abc").is_err());
        assert!(parse_loads("0").is_err());
    }
}
