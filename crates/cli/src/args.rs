//! A small argument parser: positionals plus `--flag value` / `--switch`
//! options, with typed accessors and unknown-flag rejection.

use std::collections::HashMap;

use crate::{CliError, CliResult};

/// Parsed arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Declares which `--flags` take values and which are bare switches, then
/// parses a token stream.
pub struct ArgSpec {
    valued: Vec<&'static str>,
    switches: Vec<&'static str>,
}

impl ArgSpec {
    /// Start an empty spec.
    pub fn new() -> Self {
        ArgSpec {
            valued: Vec::new(),
            switches: Vec::new(),
        }
    }

    /// Register a `--flag <value>` option.
    pub fn value(mut self, name: &'static str) -> Self {
        self.valued.push(name);
        self
    }

    /// Register a bare `--switch`.
    pub fn switch(mut self, name: &'static str) -> Self {
        self.switches.push(name);
        self
    }

    /// Parse tokens (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(&self, tokens: I) -> CliResult<Args> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if self.switches.contains(&name) {
                    args.switches.push(name.to_string());
                } else if self.valued.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| CliError::new(format!("--{name} requires a value")))?;
                    if args.options.insert(name.to_string(), value).is_some() {
                        return Err(CliError::new(format!("--{name} given twice")));
                    }
                } else {
                    return Err(CliError::new(format!("unknown flag --{name}")));
                }
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }
}

impl Default for ArgSpec {
    fn default() -> Self {
        ArgSpec::new()
    }
}

impl Args {
    /// Positional argument by index.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positionals.get(idx).map(String::as_str)
    }

    /// Number of positionals.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Raw option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.options.get(name).map(String::as_str)
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> CliResult<T> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::new(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Required typed option.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> CliResult<T> {
        let raw = self
            .get(name)
            .ok_or_else(|| CliError::new(format!("--{name} is required")))?;
        raw.parse()
            .map_err(|_| CliError::new(format!("--{name}: cannot parse {raw:?}")))
    }

    /// Was a switch given?
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn spec() -> ArgSpec {
        ArgSpec::new()
            .value("jobs")
            .value("seed")
            .switch("explicit")
    }

    #[test]
    fn parses_positionals_options_switches() {
        let a = spec()
            .parse(toks("trace.swf --jobs 100 --explicit extra"))
            .unwrap();
        assert_eq!(a.positional(0), Some("trace.swf"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.get("jobs"), Some("100"));
        assert!(a.has_switch("explicit"));
        assert!(!a.has_switch("other"));
    }

    #[test]
    fn typed_accessors() {
        let a = spec().parse(toks("--jobs 100")).unwrap();
        assert_eq!(a.get_parsed("jobs", 5usize).unwrap(), 100);
        assert_eq!(a.get_parsed("seed", 42u64).unwrap(), 42);
        assert_eq!(a.require::<usize>("jobs").unwrap(), 100);
        assert!(a.require::<usize>("seed").is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = spec().parse(toks("--bogus 1")).unwrap_err();
        assert!(err.message.contains("unknown flag --bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = spec().parse(toks("--jobs")).unwrap_err();
        assert!(err.message.contains("requires a value"));
    }

    #[test]
    fn rejects_duplicate_option() {
        let err = spec().parse(toks("--jobs 1 --jobs 2")).unwrap_err();
        assert!(err.message.contains("given twice"));
    }

    #[test]
    fn rejects_bad_parse() {
        let a = spec().parse(toks("--jobs banana")).unwrap();
        assert!(a.get_parsed("jobs", 0usize).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let a = spec().parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.positional_count(), 0);
        assert_eq!(a.get_parsed("jobs", 7usize).unwrap(), 7);
    }
}
