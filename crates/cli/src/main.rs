//! The `resmatch` binary: thin shell over [`resmatch_cli::commands`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match resmatch_cli::commands::dispatch(argv) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
        }
        Err(err) => {
            eprintln!("resmatch: {err}");
            std::process::exit(2);
        }
    }
}
