//! End-to-end tests of the `resmatch-repro` gate and renderer.
//!
//! These drive the real binary (via `CARGO_BIN_EXE`) against a scratch
//! workspace root, proving the three properties the pipeline exists for:
//! `check` passes on healthy metrics, *provably fails* when a claim is
//! broken (`--perturb`), and `render` is idempotent.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(root: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_resmatch-repro"))
        .args(args)
        .current_dir(root)
        .output()
        .expect("invariant: the resmatch-repro binary was built by cargo for this test")
}

/// A scratch workspace root with an EXPERIMENTS.md holding one marker
/// block for the (instant, trace-free) Figure 7 experiment.
fn scratch_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("resmatch-repro-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("invariant: temp dir is writable in the test env");
    std::fs::write(
        dir.join("EXPERIMENTS.md"),
        "# scratch\n\nprose above\n\n<!-- repro:begin fig7_trajectory -->\n\
         stale table\n<!-- repro:end fig7_trajectory -->\n\nprose below\n",
    )
    .expect("invariant: temp dir is writable in the test env");
    dir
}

const ONLY_FIG7: &[&str] = &["--only", "fig7_trajectory", "--fresh"];

#[test]
fn check_passes_on_healthy_metrics() {
    let root = scratch_root("check-ok");
    let out = repro(&root, &[&["check"], ONLY_FIG7].concat());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "check failed:\n{stdout}");
    assert!(stdout.contains("[PASS] trajectory_exact"), "{stdout}");
    assert!(stdout.contains("all hold"), "{stdout}");
}

#[test]
fn check_provably_fails_when_a_claim_is_broken() {
    let root = scratch_root("check-gate");
    let out = repro(
        &root,
        &[&["check"], ONLY_FIG7, &["--perturb", "trajectory_exact=0"]].concat(),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "check must exit nonzero on a broken claim:\n{stdout}"
    );
    assert_eq!(out.status.code(), Some(1), "gate failure is exit code 1");
    assert!(stdout.contains("[FAIL] trajectory_exact"), "{stdout}");
    // The perturbation is scoped: the other fig7 claims still pass.
    assert!(stdout.contains("[PASS] final_grant_mb"), "{stdout}");
}

#[test]
fn check_rejects_unknown_experiments_and_flags() {
    let root = scratch_root("check-usage");
    assert_eq!(
        repro(&root, &["check", "--only", "no_such_experiment"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(repro(&root, &["bogus-command"]).status.code(), Some(2));
    assert_eq!(
        repro(&root, &["check", "--perturb", "not-an-assignment"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn render_is_idempotent_and_docs_only_rerenders_from_the_sidecar() {
    let root = scratch_root("render");
    let doc_path = root.join("EXPERIMENTS.md");

    let first = repro(&root, &[&["render"], ONLY_FIG7].concat());
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let doc = std::fs::read_to_string(&doc_path).expect("invariant: render wrote the doc");
    assert!(doc.contains("| trajectory |"), "table rendered: {doc}");
    assert!(
        !doc.contains("stale table"),
        "stale content replaced: {doc}"
    );
    assert!(
        doc.starts_with("# scratch\n\nprose above") && doc.ends_with("prose below\n"),
        "prose outside markers untouched: {doc}"
    );
    let artifact = root.join("results/fig7_trajectory.txt");
    let tsv = root.join("results/metrics.tsv");
    let artifact_1 = std::fs::read_to_string(&artifact).expect("invariant: artifact written");
    let tsv_1 = std::fs::read_to_string(&tsv).expect("invariant: sidecar written");
    assert!(
        artifact_1.contains("32"),
        "fig7 report mentions the 32 MB request"
    );
    assert!(
        tsv_1.contains("fig7_trajectory\ttrajectory_exact\t"),
        "{tsv_1}"
    );

    // Second run: byte-identical outputs, and the binary says so.
    let second = repro(&root, &[&["render"], ONLY_FIG7].concat());
    assert!(second.status.success());
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(
        stdout.contains("0 file(s) changed"),
        "second render must be a no-op: {stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&doc_path).expect("invariant: doc still present"),
        doc
    );
    assert_eq!(
        std::fs::read_to_string(&artifact).expect("invariant: artifact still present"),
        artifact_1
    );
    assert_eq!(
        std::fs::read_to_string(&tsv).expect("invariant: sidecar still present"),
        tsv_1
    );

    // --docs-only re-renders the tables from the committed sidecar alone
    // (this is CI's drift gate). Corrupt the doc, then restore it.
    std::fs::write(
        &doc_path,
        "# scratch\n\nprose above\n\n<!-- repro:begin fig7_trajectory -->\n\
         drifted\n<!-- repro:end fig7_trajectory -->\n\nprose below\n",
    )
    .expect("invariant: temp dir is writable in the test env");
    let docs_only = repro(&root, &["render", "--docs-only"]);
    assert!(docs_only.status.success());
    assert_eq!(
        std::fs::read_to_string(&doc_path).expect("invariant: doc still present"),
        doc,
        "--docs-only restores the rendered tables from metrics.tsv"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quick_check_gates_every_experiment() {
    // Every manifest entry must contribute at least one PASS line at the
    // CI (--quick) profile; fig7 is instant, the rest are cheap, but this
    // test only asserts the *shape* via list to stay fast.
    let root = scratch_root("list");
    let out = repro(&root, &["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "fig1_histogram",
        "fig5_utilization",
        "table1_estimators",
        "validate_calibration",
    ] {
        assert!(stdout.contains(id), "list missing {id}: {stdout}");
    }
    let _ = std::fs::remove_dir_all(&root);
}
