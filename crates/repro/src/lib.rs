//! Claims-as-code: the manifest-driven reproduction pipeline.
//!
//! This crate turns the repository's reproduction of *Improving Resource
//! Matching Through Estimation of Actual Job Requirements* (Yom-Tov &
//! Aridor, HPDC 2006) from a pile of binaries plus a hand-maintained
//! document into a single gated pipeline:
//!
//! - [`experiments`] holds every experiment as a library function
//!   returning an [`report::ExperimentOutput`] — the human-readable
//!   report *and* the named metrics, produced by one run.
//! - [`manifest::MANIFEST`] registers all of them: id, paper artifact,
//!   trace scale, seed, and the coded [`expect::Expectation`]s that gate
//!   each paper claim.
//! - [`runner`] executes selections in parallel (on the sim crate's
//!   worker pool) with [`cache`]d results.
//! - [`render`] regenerates the committed `results/` artifacts and the
//!   paper-vs-measured tables in EXPERIMENTS.md from the same metrics the
//!   checks saw.
//!
//! The `resmatch-repro` binary exposes this as `run` / `check` / `render`
//! / `list`; the historic `crates/bench` binaries are thin wrappers over
//! [`experiments`]. See DESIGN.md §10 for the pipeline's design notes and
//! the recipe for adding an experiment.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod expect;
pub mod experiments;
pub mod manifest;
pub mod render;
pub mod report;
pub mod runner;
pub mod trace;
