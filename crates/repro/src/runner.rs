//! Experiment selection and parallel execution.
//!
//! The runner is deliberately thin: it resolves a set of manifest entries
//! to run, picks the scale (`--quick` vs. default), and executes them on
//! the same bounded worker pool the simulator's sweeps use
//! ([`resmatch_sim::experiment::run_pooled`]), consulting the
//! [`crate::cache`] around each run. Everything the runner knows about an
//! experiment comes from its [`ExperimentDef`].

use std::path::Path;

use resmatch_sim::experiment::run_pooled;

use crate::cache::Cache;
use crate::manifest::{find, ExperimentDef, MANIFEST};
use crate::report::ExperimentOutput;

/// The trace configuration an experiment runs at.
///
/// Every experiment's `run` function is a pure, deterministic function of
/// this value (plus the code itself) — that determinism is what makes the
/// cache and the regression gate sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Trace size in jobs (`0` for trace-free experiments such as the
    /// Figure 7 trajectory).
    pub jobs: usize,
    /// Workload-generator seed.
    pub seed: u64,
}

/// How a batch of experiments should be executed.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Use each experiment's reduced `quick_jobs` scale (CI profile).
    pub quick: bool,
    /// Ignore cached results; always re-simulate.
    pub fresh: bool,
    /// Restrict to these experiment ids (empty = the whole manifest).
    pub only: Vec<String>,
}

/// One executed experiment.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The manifest entry that was run.
    pub def: &'static ExperimentDef,
    /// The scale it ran at.
    pub spec: RunSpec,
    /// What it produced.
    pub output: ExperimentOutput,
    /// Whether the output was replayed from the cache.
    pub cached: bool,
}

/// Resolve `--only` ids against the manifest (empty selects everything).
///
/// # Errors
/// Returns the offending id when it matches no manifest entry.
pub fn select(only: &[String]) -> Result<Vec<&'static ExperimentDef>, String> {
    if only.is_empty() {
        return Ok(MANIFEST.iter().collect());
    }
    only.iter()
        .map(|id| {
            find(id).ok_or_else(|| {
                format!("unknown experiment id `{id}` (run `resmatch-repro list` for the manifest)")
            })
        })
        .collect()
}

/// The scale an experiment runs at under the given options.
pub fn spec_for(def: &ExperimentDef, quick: bool) -> RunSpec {
    RunSpec {
        jobs: if quick {
            def.quick_jobs
        } else {
            def.default_jobs
        },
        seed: def.seed,
    }
}

/// Execute a selection of experiments in parallel, cache-aware.
///
/// Experiments run on the sim crate's bounded worker pool; results come
/// back in manifest order regardless of completion order. Unless
/// `opts.fresh` is set, each experiment first consults the on-disk cache
/// (keyed by id, scale, seed, and the executable fingerprint) and only
/// simulates on a miss; every fresh result is stored back.
///
/// # Errors
/// Returns an error for an unknown `--only` id.
pub fn run_all(workspace_root: &Path, opts: &RunOptions) -> Result<Vec<RunResult>, String> {
    let defs = select(&opts.only)?;
    let cache = Cache::new(workspace_root);
    let results = run_pooled(defs.len(), |i| {
        let &def = defs
            .get(i)
            .expect("invariant: run_pooled only hands out indices below `count`");
        let spec = spec_for(def, opts.quick);
        if !opts.fresh {
            if let Some(output) = cache.load(def.id, spec.jobs, spec.seed) {
                return RunResult {
                    def,
                    spec,
                    output,
                    cached: true,
                };
            }
        }
        let output = (def.run)(&spec);
        cache.store(def.id, spec.jobs, spec.seed, &output);
        RunResult {
            def,
            spec,
            output,
            cached: false,
        }
    });
    Ok(results)
}

/// Override metrics by name across all results (`check --perturb`).
///
/// This exists so the regression gate can be proven live: the integration
/// test perturbs a gated metric and asserts `check` exits nonzero. Any
/// result carrying a metric with a perturbed name gets the override.
pub fn apply_perturbations(results: &mut [RunResult], perturbations: &[(String, f64)]) {
    for result in results.iter_mut() {
        for (name, value) in perturbations {
            if result.output.metrics.get(name).is_some() {
                result.output.metrics.set(name, *value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_resolves_ids_and_rejects_unknowns() {
        assert_eq!(select(&[]).map(|v| v.len()), Ok(MANIFEST.len()));
        let picked = select(&["fig7_trajectory".to_string()]);
        assert_eq!(
            picked.map(|v| v.iter().map(|d| d.id).collect::<Vec<_>>()),
            Ok(vec!["fig7_trajectory"])
        );
        assert!(select(&["nope".to_string()]).is_err());
    }

    #[test]
    fn spec_for_honours_quick_scale() {
        let def = find("fig5_utilization").expect("invariant: fig5 is in the manifest");
        assert_eq!(spec_for(def, false).jobs, def.default_jobs);
        assert_eq!(spec_for(def, true).jobs, def.quick_jobs);
        assert_eq!(spec_for(def, true).seed, def.seed);
    }

    #[test]
    fn perturbation_overrides_only_present_metrics() {
        let def = find("fig7_trajectory").expect("invariant: fig7 is in the manifest");
        let mut output = ExperimentOutput {
            text: String::new(),
            metrics: crate::report::Metrics::new(),
        };
        output.metrics.set("trajectory_exact", 1.0);
        let mut results = vec![RunResult {
            def,
            spec: RunSpec { jobs: 0, seed: 42 },
            output,
            cached: false,
        }];
        apply_perturbations(
            &mut results,
            &[
                ("trajectory_exact".to_string(), 0.0),
                ("absent_metric".to_string(), 9.0),
            ],
        );
        let metrics = &results
            .first()
            .expect("invariant: one result was constructed above")
            .output
            .metrics;
        assert_eq!(metrics.get("trajectory_exact"), Some(0.0));
        assert_eq!(metrics.get("absent_metric"), None);
    }
}
