//! Structured experiment output: a human-readable report plus named
//! scalar metrics.
//!
//! Every experiment in [`crate::manifest`] produces both artifacts from a
//! single run: the `text` is what the thin `crates/bench` binaries print
//! and what `render` commits under `results/`, and the `metrics` are what
//! [`crate::expect`] gates and what the EXPERIMENTS.md tables are rendered
//! from. Keeping them in one value is the point of the pipeline — the
//! document can never show numbers the checks did not see.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Named scalar measurements extracted from one experiment run.
///
/// Keys are stable snake_case identifiers referenced by expectations and
/// by the EXPERIMENTS.md table templates; values are `f64` (boolean facts
/// are recorded as `0.0` / `1.0`). A `BTreeMap` keeps serialization and
/// iteration deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics(BTreeMap<String, f64>);

impl Metrics {
    /// Empty metric set.
    pub fn new() -> Self {
        Metrics(BTreeMap::new())
    }

    /// Record `name = value`, overwriting any previous value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.0.insert(name.to_string(), value);
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.0.get(name).copied()
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// What one experiment run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// The full self-describing report, byte-for-byte what the
    /// corresponding `results/<id>.txt` artifact holds.
    pub text: String,
    /// Scalar measurements gated by the manifest's expectations.
    pub metrics: Metrics,
}

/// Incremental builder for an [`ExperimentOutput`].
///
/// The formatting helpers mirror what the experiment binaries printed
/// before the extraction (PR 4), so regenerated `results/` artifacts stay
/// diffable against their history.
#[derive(Debug, Default)]
pub struct Report {
    text: String,
    metrics: Metrics,
}

impl Report {
    /// Start an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a ruled section header (the `== title ====` rule the
    /// binaries always printed).
    pub fn header(&mut self, title: &str) {
        let _ = writeln!(
            self.text,
            "\n== {title} {}",
            "=".repeat(68usize.saturating_sub(title.len()))
        );
    }

    /// Append one formatted line (use through the [`crate::out!`] macro).
    pub fn push_line(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = self.text.write_fmt(args);
        self.text.push('\n');
    }

    /// Record a named scalar metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.set(name, value);
    }

    /// Record a boolean fact as a `0.0` / `1.0` metric.
    pub fn flag(&mut self, name: &str, value: bool) {
        self.metrics.set(name, if value { 1.0 } else { 0.0 });
    }

    /// Finish the report.
    pub fn finish(self) -> ExperimentOutput {
        ExperimentOutput {
            text: self.text,
            metrics: self.metrics,
        }
    }
}

/// Append one `format!`-style line to a [`Report`].
///
/// ```
/// use resmatch_repro::{out, report::Report};
/// let mut r = Report::new();
/// out!(r, "utilization {:.3}", 0.5);
/// assert_eq!(r.finish().text, "utilization 0.500\n");
/// ```
#[macro_export]
macro_rules! out {
    ($r:expr) => { $r.push_line(format_args!("")) };
    ($r:expr, $($arg:tt)*) => { $r.push_line(format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builds_text_and_metrics() {
        let mut r = Report::new();
        r.header("t");
        out!(r, "x {:>5.2}", 1.25);
        r.metric("a", 2.0);
        r.flag("b", true);
        let o = r.finish();
        assert!(o.text.starts_with("\n== t "));
        assert!(o.text.contains("x  1.25\n"));
        assert_eq!(o.metrics.get("a"), Some(2.0));
        assert_eq!(o.metrics.get("b"), Some(1.0));
    }
}
