//! Artifact and document rendering.
//!
//! `render` turns executed experiments into the repository's committed
//! reproduction record, in three layers:
//!
//! 1. `results/<id>.txt` — the full report text of every experiment,
//!    byte-for-byte what the corresponding binary prints.
//! 2. `results/metrics.tsv` — a machine-readable sidecar of every gated
//!    metric (values carried as `f64::to_bits` hex so they round-trip
//!    exactly). This file is committed, which lets CI re-render the
//!    document tables *without re-running experiments* and fail on drift.
//! 3. EXPERIMENTS.md — the paper-vs-measured tables between
//!    `<!-- repro:begin <id> -->` / `<!-- repro:end <id> -->` markers are
//!    regenerated from the metrics. Prose outside the markers is
//!    hand-written; numbers inside them can never disagree with what the
//!    checks in [`crate::expect`] saw, because both read the same
//!    [`Metrics`].

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::report::Metrics;
use crate::runner::RunResult;

/// Metric sets keyed by experiment id, as the renderer consumes them.
pub type MetricsById = BTreeMap<String, Metrics>;

/// What a render pass touched.
#[derive(Debug, Clone, Default)]
pub struct RenderSummary {
    /// Files whose contents changed (repo-relative paths).
    pub changed: Vec<String>,
    /// Files rewritten with identical contents.
    pub unchanged: Vec<String>,
}

impl RenderSummary {
    fn record(&mut self, rel: &str, changed: bool) {
        if changed {
            self.changed.push(rel.to_string());
        } else {
            self.unchanged.push(rel.to_string());
        }
    }
}

/// Write `path` only if its contents differ; report whether it changed.
fn write_if_changed(path: &Path, contents: &str) -> Result<bool, String> {
    if fs::read_to_string(path).ok().as_deref() == Some(contents) {
        return Ok(false);
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    fs::write(path, contents).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(true)
}

/// Write every experiment's `results/<id>.txt` artifact.
///
/// # Errors
/// Propagates filesystem errors with the offending path.
pub fn write_artifacts(root: &Path, results: &[RunResult]) -> Result<RenderSummary, String> {
    let mut summary = RenderSummary::default();
    for r in results {
        let rel = format!("results/{}.txt", r.def.id);
        let changed = write_if_changed(&root.join(&rel), &r.output.text)?;
        summary.record(&rel, changed);
    }
    Ok(summary)
}

/// Serialize all metrics to the `results/metrics.tsv` sidecar.
///
/// Format: one header line, then `experiment<TAB>metric<TAB>bits<TAB>value`
/// rows in (experiment, metric) order. `bits` is the exact `f64::to_bits`
/// hex; the decimal `value` column is for human diffing only.
///
/// # Errors
/// Propagates filesystem errors with the offending path.
pub fn write_metrics_tsv(root: &Path, results: &[RunResult]) -> Result<RenderSummary, String> {
    let mut s = String::from("experiment\tmetric\tbits\tvalue\n");
    let by_id: BTreeMap<&str, &Metrics> = results
        .iter()
        .map(|r| (r.def.id, &r.output.metrics))
        .collect();
    for (id, metrics) in by_id {
        for (name, value) in metrics.iter() {
            s.push_str(&format!(
                "{id}\t{name}\t{:016x}\t{value}\n",
                value.to_bits()
            ));
        }
    }
    let mut summary = RenderSummary::default();
    let rel = "results/metrics.tsv";
    let changed = write_if_changed(&root.join(rel), &s)?;
    summary.record(rel, changed);
    Ok(summary)
}

/// Load the committed `results/metrics.tsv` sidecar.
///
/// # Errors
/// Reports a missing file or any malformed line (with its line number).
pub fn load_metrics_tsv(root: &Path) -> Result<MetricsById, String> {
    let rel = "results/metrics.tsv";
    let text = fs::read_to_string(root.join(rel))
        .map_err(|e| format!("reading {rel}: {e} (run `render` without --docs-only first)"))?;
    let mut by_id = MetricsById::new();
    for (lineno, line) in text.lines().enumerate().skip(1) {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let (Some(id), Some(name), Some(bits)) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(format!(
                "{rel}:{}: expected 4 tab-separated fields",
                lineno + 1
            ));
        };
        let bits = u64::from_str_radix(bits, 16)
            .map_err(|e| format!("{rel}:{}: bad bits field: {e}", lineno + 1))?;
        by_id
            .entry(id.to_string())
            .or_default()
            .set(name, f64::from_bits(bits));
    }
    Ok(by_id)
}

/// Collect metrics from freshly executed results.
pub fn metrics_from_results(results: &[RunResult]) -> MetricsById {
    results
        .iter()
        .map(|r| (r.def.id.to_string(), r.output.metrics.clone()))
        .collect()
}

/// Regenerate every `repro:begin`/`repro:end` block in EXPERIMENTS.md.
///
/// # Errors
/// Reports unbalanced markers, a block for an unknown experiment, an
/// experiment with no metrics available, or a template referencing a
/// metric the experiment did not record.
pub fn render_docs(root: &Path, metrics: &MetricsById) -> Result<RenderSummary, String> {
    let rel = "EXPERIMENTS.md";
    let path = root.join(rel);
    let doc = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
    let rendered = rewrite_blocks(&doc, metrics)?;
    let mut summary = RenderSummary::default();
    let changed = write_if_changed(&path, &rendered)?;
    summary.record(rel, changed);
    Ok(summary)
}

/// Replace the contents of every marker block in `doc`.
fn rewrite_blocks(doc: &str, metrics: &MetricsById) -> Result<String, String> {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    let mut seen = 0usize;
    while let Some(start) = rest.find("<!-- repro:begin ") {
        let after_tag = start + "<!-- repro:begin ".len();
        let head = rest.get(..after_tag).unwrap_or_default();
        let tail = rest.get(after_tag..).unwrap_or_default();
        let id_end = tail
            .find(" -->")
            .ok_or_else(|| "unterminated `repro:begin` marker".to_string())?;
        let id = tail.get(..id_end).unwrap_or_default();
        let body = tail.get(id_end + " -->".len()..).unwrap_or_default();
        let end_marker = format!("<!-- repro:end {id} -->");
        let end = body
            .find(&end_marker)
            .ok_or_else(|| format!("block `{id}` has no matching `repro:end` marker"))?;
        let m = metrics
            .get(id)
            .ok_or_else(|| format!("no metrics for experiment `{id}` (not run / not in tsv)"))?;
        out.push_str(head);
        out.push_str(id);
        out.push_str(" -->\n");
        out.push_str(&block_for(id, m)?);
        out.push_str(&end_marker);
        rest = body.get(end + end_marker.len()..).unwrap_or_default();
        seen += 1;
    }
    if seen == 0 {
        return Err("EXPERIMENTS.md contains no `repro:begin` marker blocks".to_string());
    }
    out.push_str(rest);
    Ok(out)
}

/// Fetch a metric a template needs, with a pointed error when absent.
fn need(id: &str, m: &Metrics, name: &str) -> Result<f64, String> {
    m.get(name)
        .ok_or_else(|| format!("experiment `{id}` recorded no metric `{name}`"))
}

/// `0.123` → `12.3%`.
fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// A gain fraction (`0.46`) → `+46%`.
fn gain(v: f64) -> String {
    format!("{:+.0}%", v * 100.0)
}

/// A `0.0`/`1.0` flag metric → yes / **no**.
fn yes_no(v: f64) -> &'static str {
    if (v - 1.0).abs() < 1e-9 {
        "yes"
    } else {
        "**no**"
    }
}

/// The generated markdown for one experiment's marker block.
///
/// Each arm is the paper-vs-measured table for that artifact; the paper
/// column is fixed, the measured column comes from the metrics the
/// expectation gate evaluated.
#[allow(clippy::too_many_lines)]
fn block_for(id: &str, m: &Metrics) -> Result<String, String> {
    let v = |name: &str| need(id, m, name);
    let table = |rows: &[(String, String, String)]| {
        let mut s = String::from("| Quantity | Paper | Measured |\n|---|---|---|\n");
        for (q, p, me) in rows {
            s.push_str(&format!("| {q} | {p} | {me} |\n"));
        }
        s
    };
    let row = |q: &str, p: &str, me: String| (q.to_string(), p.to_string(), me);
    let s = match id {
        "fig1_histogram" => table(&[
            row(
                "jobs requesting ≥ 2× used memory",
                "32.8%",
                pct(v("frac_ge_2x")?),
            ),
            row(
                "ratio dynamic range",
                "~2 orders of magnitude",
                format!("{:.1} orders of magnitude", v("ratio_span_orders")?),
            ),
            row(
                "log-linear histogram fit R²",
                "0.69",
                format!("{:.2} (slope {:.2})", v("log_fit_r2")?, v("log_fit_slope")?),
            ),
        ]),
        "fig3_group_sizes" => table(&[
            row(
                "similarity groups (user, app, requested mem)",
                "9,885",
                format!("{:.0}", v("groups")?),
            ),
            row(
                "mean group size",
                "12.3",
                format!("{:.1}", v("mean_group_size")?),
            ),
            row(
                "groups with ≥ 10 jobs",
                "19.4%",
                pct(v("big_group_set_share")?),
            ),
            row(
                "jobs held by those groups",
                "83%",
                pct(v("big_group_job_share")?),
            ),
        ]),
        "fig4_gain_vs_range" => table(&[
            row(
                "groups concentrated at low ranges",
                "\"a large fraction\"",
                format!(
                    "{} at range ≤ 1.1 (of {:.0} groups plotted)",
                    pct(v("tight_range_share")?),
                    v("groups_plotted")?
                ),
            ),
            row(
                "high-gain + tightly-similar groups exist",
                "yes (≥ 10× gain)",
                format!(
                    "{:.0} groups with gain ≥ 10× at range ≤ 1.25",
                    v("high_gain_tight_groups")?
                ),
            ),
        ]),
        "fig5_utilization" => table(&[
            row(
                "low loads: curves coincide",
                "yes",
                format!(
                    "est/base utilization ratio {:.2} at the lowest load",
                    v("low_load_ratio")?
                ),
            ),
            row(
                "linear region grows with estimation",
                "yes",
                yes_no(v("linear_region_grows")?).to_string(),
            ),
            row(
                "saturation utilization, no estimation",
                "—",
                format!("{:.3}", v("saturation_util_base")?),
            ),
            row(
                "saturation utilization, estimation",
                "—",
                format!("{:.3}", v("saturation_util_est")?),
            ),
            row(
                "improvement at saturation",
                "**+58%**",
                format!("**{}**", gain(v("saturation_gain")?)),
            ),
        ]),
        "fig6_slowdown" => table(&[
            row(
                "slowdown never increases under estimation",
                "yes",
                format!(
                    "{} (worst est/base slowdown ratio {:.2})",
                    yes_no(v("never_worse")?),
                    v("min_ratio")?
                ),
            ),
            row(
                "dramatic mid-load peak",
                "at ~60% load",
                format!(
                    "{:.0}× at {:.0}% load",
                    v("peak_ratio")?,
                    v("peak_load")? * 100.0
                ),
            ),
        ]),
        "fig7_trajectory" => table(&[
            row(
                "trajectory",
                "32 → 16 → 8 → 4 (fails) → 8 frozen",
                format!(
                    "{}, {:.0} probing failure(s)",
                    if (v("trajectory_exact")? - 1.0).abs() < 1e-9 {
                        "identical, exact"
                    } else {
                        "**diverged**"
                    },
                    v("failures")?
                ),
            ),
            row(
                "final estimate",
                "8 MB (four-fold reduction)",
                format!("{:.0} MB", v("final_grant_mb")?),
            ),
        ]),
        "fig8_cluster_sweep" => table(&[
            row(
                "no improvement for m ≤ 15 MB",
                "ratio ≈ 1",
                format!("mean ratio {:.2} over m ≤ 15", v("low_band_mean_ratio")?),
            ),
            row(
                "improvement band 16–28 MB",
                "present",
                format!("mean ratio {:.2} over the band", v("band_mean_ratio")?),
            ),
            row(
                "homogeneous extreme m = 32",
                "ratio 1",
                format!("{:.2}", v("homogeneous_ratio")?),
            ),
            row(
                "benefiting-node-count vs. improvement, linear fit R² (16–28 MB)",
                "0.991",
                format!("{:.3}", v("node_count_fit_r2")?),
            ),
        ]),
        "table1_estimators" => {
            let quadrant = |key: &str| -> Result<String, String> {
                Ok(format!(
                    "{:.3} ({}) — {} failed",
                    v(&format!("{key}_util"))?,
                    gain(v(&format!("{key}_util"))? / v("baseline_util")?.max(1e-9) - 1.0),
                    pct(v(&format!("{key}_fail_fraction"))?)
                ))
            };
            let mut s = String::from(
                "| Quadrant | Algorithm | Utilization (vs. baseline) |\n|---|---|---|\n",
            );
            for (key, quad, alg) in [
                ("baseline", "baseline", "pass-through"),
                (
                    "successive",
                    "implicit + similarity",
                    "successive approximation",
                ),
                ("last_instance", "explicit + similarity", "last-instance"),
                (
                    "reinforcement",
                    "implicit, no similarity",
                    "reinforcement learning",
                ),
                ("regression", "explicit, no similarity", "regression"),
                ("oracle", "(bound)", "oracle"),
            ] {
                s.push_str(&format!("| {quad} | {alg} | {} |\n", quadrant(key)?));
            }
            s.push_str(&format!(
                "\nGate: similarity beats global policy — {}; oracle is the bound — {}; \
                 explicit feedback fails less than implicit — {}.\n",
                yes_no(v("similarity_beats_global")?),
                yes_no(v("oracle_is_bound")?),
                yes_no(v("explicit_fails_less")?)
            ));
            s
        }
        "stats_conservativeness" => table(&[
            row(
                "jobs run with lowered estimates",
                "15–40%",
                format!(
                    "{}–{} across the active configurations",
                    pct(v("min_lowered_fraction")?),
                    pct(v("max_lowered_fraction")?)
                ),
            ),
            row(
                "failed executions stay bounded",
                "≤ ~0.01%",
                format!("worst configuration {}", pct(v("worst_fail_fraction")?)),
            ),
        ]),
        "ablation_alpha_beta" => table(&[
            row(
                "α = 1.2 too conservative (§2.3)",
                "no gain",
                format!("{} improvement", gain(v("alpha_1_2_gain")?)),
            ),
            row(
                "α = 2 (paper's choice)",
                "full gain",
                format!("{} improvement", gain(v("alpha_2_gain")?)),
            ),
            row(
                "β near 1 multiplies retry failures",
                "predicted",
                format!(
                    "{} fail at β = 0.9 vs {} at β = 0 ({})",
                    pct(v("beta_0_9_fail_fraction")?),
                    pct(v("beta_0_fail_fraction")?),
                    yes_no(v("beta_high_costs_failures")?)
                ),
            ),
            row(
                "(user, app, request) similarity key",
                "the paper's key",
                format!(
                    "{} improvement, {} failed (user-only key fails {})",
                    gain(v("paper_policy_gain")?),
                    pct(v("paper_policy_fail_fraction")?),
                    pct(v("user_only_fail_fraction")?)
                ),
            ),
        ]),
        "ablation_scheduler" => table(&[row(
            "gain persists beyond FCFS (§4 hypothesis)",
            "expected",
            format!(
                "FCFS {:.2}×, EASY {:.2}×, SJF {:.2}× (worst {:.2}×)",
                v("fcfs_ratio")?,
                v("easy_ratio")?,
                v("sjf_ratio")?,
                v("worst_scheduler_ratio")?
            ),
        )]),
        "ablation_false_positives" => table(&[
            row(
                "false positives confuse the implicit estimator (§2.1)",
                "the hazard",
                format!(
                    "reach shrinks {} → {} of jobs lowered at 5% injection ({})",
                    pct(v("implicit_clean_lowered")?),
                    pct(v("implicit_noisy_lowered")?),
                    yes_no(v("implicit_reach_shrinks")?)
                ),
            ),
            row(
                "utilization cost, implicit feedback",
                "—",
                format!(
                    "{:.3} → {:.3} ({} of the clean value lost)",
                    v("implicit_clean_util")?,
                    v("implicit_noisy_util")?,
                    pct(v("implicit_degradation")?)
                ),
            ),
            row(
                "utilization cost, explicit feedback",
                "avoidable",
                format!(
                    "{:.3} → {:.3} ({} lost)",
                    v("explicit_clean_util")?,
                    v("explicit_noisy_util")?,
                    pct(v("explicit_degradation")?)
                ),
            ),
        ]),
        "ablation_match_policy" => table(&[
            row(
                "estimation gain survives the match policy",
                "expected",
                format!("worst-policy ratio {:.2}×", v("worst_policy_ratio")?),
            ),
            row(
                "best-fit beats worst-fit for the baseline",
                "expected",
                format!(
                    "{:.3} vs {:.3} ({})",
                    v("best_fit_base_util")?,
                    v("worst_fit_base_util")?,
                    yes_no(v("best_fit_beats_worst_fit")?)
                ),
            ),
        ]),
        "ablation_churn" => table(&[row(
            "similarity groups are machine-agnostic (§1.1)",
            "required for grids",
            format!(
                "ratio {:.2}× under churn vs {:.2}× without",
                v("worst_churn_ratio")?,
                v("no_churn_ratio")?
            ),
        )]),
        "futurework_estimators" => table(&[
            row(
                "published Algorithm 1",
                "the reference",
                format!(
                    "utilization {:.3} ({})",
                    v("published_util")?,
                    gain(v("published_gain")?)
                ),
            ),
            row(
                "robust bisection (§2.3)",
                "proposed",
                format!(
                    "utilization {:.3} ({})",
                    v("robust_util")?,
                    gain(v("robust_gain")?)
                ),
            ),
            row(
                "online similarity identification (§4)",
                "proposed",
                format!(
                    "utilization {:.3} ({} of Algorithm 1, bootstrapped from no key)",
                    v("adaptive_util")?,
                    pct(v("adaptive_vs_published")?)
                ),
            ),
            row(
                "quantile window (our extension)",
                "—",
                format!(
                    "utilization {:.3}, {} failed executions",
                    v("quantile_util")?,
                    pct(v("quantile_fail_fraction")?)
                ),
            ),
        ]),
        "matchmaking_scenarios" => table(&[
            row(
                "matchmaking seam is identity-preserving",
                "required",
                format!(
                    "{} (unconstrained ads == legacy path)",
                    yes_no(v("matchall_identity")?)
                ),
            ),
            row(
                "disk-constrained nodes: estimation gain",
                "direction is general",
                format!(
                    "memory-only {}, per-resource {} utilization",
                    gain(v("disk_mem_ratio")? - 1.0),
                    gain(v("disk_per_ratio")? - 1.0)
                ),
            ),
            row(
                "software license pool: estimation gain",
                "direction is general",
                format!(
                    "{} utilization (wait {:.0} s → {:.0} s)",
                    gain(v("license_mem_ratio")? - 1.0),
                    v("license_base_wait_s")?,
                    v("license_mem_wait_s")?
                ),
            ),
        ]),
        "robustness_workloads" => table(&[
            row(
                "estimation improves every seed",
                "direction is general",
                format!(
                    "worst seed {}, mean {}",
                    gain(v("worst_seed_ratio")? - 1.0),
                    gain(v("mean_seed_ratio")? - 1.0)
                ),
            ),
            row(
                "generator assumptions hold",
                "required",
                yes_no(v("assumptions_hold")?).to_string(),
            ),
        ]),
        "validate_calibration" => table(&[
            row(
                "published CM5 statistics reproduce",
                "30% tolerance",
                format!(
                    "{} (worst relative error {})",
                    if (v("calibration_passes")? - 1.0).abs() < 1e-9 {
                        "PASS"
                    } else {
                        "**DRIFT**"
                    },
                    pct(v("worst_relative_error")?)
                ),
            ),
            row(
                "cross-seed stability (two-sample KS)",
                "not a seed lottery",
                format!("worst D = {:.3}", v("worst_ks_d")?),
            ),
        ]),
        other => return Err(format!("no table template for experiment `{other}`")),
    };
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Metrics {
        let mut m = Metrics::new();
        for (k, v) in pairs {
            m.set(k, *v);
        }
        m
    }

    #[test]
    fn rewrite_replaces_block_bodies_and_keeps_prose() {
        let doc = "intro\n<!-- repro:begin fig3_group_sizes -->\nstale\n\
                   <!-- repro:end fig3_group_sizes -->\noutro\n";
        let mut by_id = MetricsById::new();
        by_id.insert(
            "fig3_group_sizes".to_string(),
            metrics(&[
                ("groups", 9722.0),
                ("mean_group_size", 12.56),
                ("big_group_set_share", 0.148),
                ("big_group_job_share", 0.85),
            ]),
        );
        let out = rewrite_blocks(doc, &by_id).expect("invariant: doc and metrics are well-formed");
        assert!(out.starts_with("intro\n<!-- repro:begin fig3_group_sizes -->\n"));
        assert!(out.ends_with("<!-- repro:end fig3_group_sizes -->\noutro\n"));
        assert!(out.contains("| mean group size | 12.3 | 12.6 |"));
        assert!(!out.contains("stale"));
        // Idempotence: re-rendering the rendered doc is a fixed point.
        assert_eq!(rewrite_blocks(&out, &by_id), Ok(out.clone()));
    }

    #[test]
    fn rewrite_rejects_malformed_docs_and_missing_metrics() {
        let by_id = MetricsById::new();
        assert!(rewrite_blocks("no markers here", &by_id).is_err());
        assert!(rewrite_blocks("<!-- repro:begin x -->\nno end", &by_id).is_err());
        let doc = "<!-- repro:begin fig3_group_sizes -->\n<!-- repro:end fig3_group_sizes -->";
        assert!(rewrite_blocks(doc, &by_id).is_err(), "metrics absent");
    }

    #[test]
    fn templates_fail_loudly_on_missing_metric() {
        let err = block_for("fig7_trajectory", &metrics(&[("trajectory_exact", 1.0)]));
        assert_eq!(
            err,
            Err("experiment `fig7_trajectory` recorded no metric `failures`".to_string())
        );
        assert!(block_for("unknown_id", &Metrics::new()).is_err());
    }
}
