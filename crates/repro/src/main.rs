//! `resmatch-repro` — the reproduction pipeline CLI.
//!
//! ```text
//! resmatch-repro list                          # the experiment manifest
//! resmatch-repro run    [--only id,..] [--quick] [--fresh]
//! resmatch-repro check  [--only id,..] [--quick] [--fresh] [--perturb m=v]
//! resmatch-repro render [--docs-only] [--quick] [--fresh] [--root dir]
//! ```
//!
//! `run` prints the selected experiments' reports. `check` evaluates every
//! registered paper claim against the measured metrics and exits nonzero
//! if any fails — it is the regression gate CI runs. `render` rewrites the
//! committed `results/` artifacts, the `results/metrics.tsv` sidecar, and
//! the generated tables in EXPERIMENTS.md; with `--docs-only` it re-renders
//! the tables from the committed sidecar without running anything (CI's
//! drift gate). `--perturb metric=value` overrides a metric before
//! checking, which is how the test suite proves the gate actually trips.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use resmatch_repro::expect::evaluate;
use resmatch_repro::manifest::MANIFEST;
use resmatch_repro::render;
use resmatch_repro::runner::{apply_perturbations, run_all, spec_for, RunOptions, RunResult};

/// Parsed command line.
struct Cli {
    command: Command,
    opts: RunOptions,
    root: PathBuf,
    perturbations: Vec<(String, f64)>,
    docs_only: bool,
}

enum Command {
    Run,
    Check,
    Render,
    List,
}

const USAGE: &str = "usage: resmatch-repro <run|check|render|list> \
    [--only id[,id..]] [--quick] [--fresh] [--root dir] \
    [--perturb metric=value] [--docs-only]";

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut iter = args.iter();
    let command = match iter.next().map(String::as_str) {
        Some("run") => Command::Run,
        Some("check") => Command::Check,
        Some("render") => Command::Render,
        Some("list") => Command::List,
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    };
    let mut cli = Cli {
        command,
        opts: RunOptions::default(),
        root: PathBuf::from("."),
        perturbations: Vec::new(),
        docs_only: false,
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => cli.opts.quick = true,
            "--fresh" => cli.opts.fresh = true,
            "--docs-only" => cli.docs_only = true,
            "--only" => {
                let ids = iter.next().ok_or("--only needs a value")?;
                cli.opts
                    .only
                    .extend(ids.split(',').map(|s| s.trim().to_string()));
            }
            "--root" => {
                cli.root = PathBuf::from(iter.next().ok_or("--root needs a value")?);
            }
            "--perturb" => {
                let kv = iter.next().ok_or("--perturb needs metric=value")?;
                let (name, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--perturb `{kv}`: expected metric=value"))?;
                let value: f64 = value
                    .parse()
                    .map_err(|e| format!("--perturb `{kv}`: {e}"))?;
                cli.perturbations.push((name.to_string(), value));
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn execute(cli: &Cli) -> Result<Vec<RunResult>, String> {
    let started = Instant::now();
    let results = run_all(&cli.root, &cli.opts)?;
    let cached = results.iter().filter(|r| r.cached).count();
    eprintln!(
        "[repro] {} experiment(s) in {:.1}s ({cached} from cache{})",
        results.len(),
        started.elapsed().as_secs_f64(),
        if cli.opts.quick {
            ", --quick scale"
        } else {
            ""
        },
    );
    Ok(results)
}

fn cmd_run(cli: &Cli) -> Result<bool, String> {
    for r in execute(cli)? {
        print!("{}", r.output.text);
    }
    Ok(true)
}

fn cmd_check(cli: &Cli) -> Result<bool, String> {
    let mut results = execute(cli)?;
    if !cli.perturbations.is_empty() {
        apply_perturbations(&mut results, &cli.perturbations);
        eprintln!(
            "[repro] WARNING: {} metric(s) perturbed — this check is a gate test, not a result",
            cli.perturbations.len()
        );
    }
    let mut checked = 0usize;
    let mut failed = 0usize;
    for r in &results {
        let outcomes = evaluate(r.def.expectations, &r.output.metrics, cli.opts.quick);
        if outcomes.is_empty() {
            continue;
        }
        println!("{} ({}, {} jobs):", r.def.id, r.def.artifact, r.spec.jobs);
        for o in &outcomes {
            checked += 1;
            if !o.passed {
                failed += 1;
            }
            let value = o
                .value
                .map_or_else(|| "missing".to_string(), |v| format!("{v:.4}"));
            println!(
                "  [{}] {} = {} ({}) — {}",
                if o.passed { "PASS" } else { "FAIL" },
                o.expectation.metric,
                value,
                o.describe_op(),
                o.expectation.claim,
            );
        }
    }
    println!(
        "\n{checked} claim(s) checked across {} experiment(s): {}",
        results.len(),
        if failed == 0 {
            "all hold".to_string()
        } else {
            format!("{failed} FAILED")
        }
    );
    Ok(failed == 0)
}

fn cmd_render(cli: &Cli) -> Result<bool, String> {
    let mut changed = Vec::new();
    let mut unchanged = 0usize;
    let metrics = if cli.docs_only {
        render::load_metrics_tsv(&cli.root)?
    } else {
        let results = execute(cli)?;
        for summary in [
            render::write_artifacts(&cli.root, &results)?,
            render::write_metrics_tsv(&cli.root, &results)?,
        ] {
            changed.extend(summary.changed);
            unchanged += summary.unchanged.len();
        }
        render::metrics_from_results(&results)
    };
    let summary = render::render_docs(&cli.root, &metrics)?;
    changed.extend(summary.changed);
    unchanged += summary.unchanged.len();
    for path in &changed {
        println!("rendered {path} (changed)");
    }
    println!(
        "render complete: {} file(s) changed, {unchanged} already current",
        changed.len()
    );
    Ok(true)
}

fn cmd_list() -> bool {
    println!(
        "{:<26} {:<10} {:>9} {:>7} {:>7}  title",
        "id", "artifact", "jobs", "quick", "claims"
    );
    for def in MANIFEST {
        println!(
            "{:<26} {:<10} {:>9} {:>7} {:>7}  {}",
            def.id,
            def.artifact,
            spec_for(def, false).jobs,
            spec_for(def, true).jobs,
            def.expectations.len(),
            def.title,
        );
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match cli.command {
        Command::Run => cmd_run(&cli),
        Command::Check => cmd_check(&cli),
        Command::Render => cmd_render(&cli),
        Command::List => Ok(cmd_list()),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
