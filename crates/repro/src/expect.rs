//! Coded expectations: the paper's qualitative claims as machine-checked
//! predicates over experiment metrics.
//!
//! Each [`Expectation`] binds one metric produced by an experiment (see
//! [`crate::report::Metrics`]) to an [`Op`] encoding what the paper — or
//! this repo's own calibration policy — asserts about it. `check`
//! evaluates every expectation and exits nonzero on any failure, which is
//! what makes EXPERIMENTS.md a regression-tested artifact instead of a
//! hand-transcribed one.
//!
//! Expectations are evaluated at two scales. The manifest's default scale
//! reproduces the committed artifacts; `--quick` shrinks the trace for CI.
//! Claims that are only statistically meaningful at full scale (e.g. the
//! Figure 1 tolerance band around 32.8%) set `quick: false` and are
//! skipped — never silently loosened — on reduced traces.

use crate::report::Metrics;

/// The predicate an expectation applies to its metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Value must be `>= min`.
    AtLeast(f64),
    /// Value must be `<= max`.
    AtMost(f64),
    /// Value must lie within `target * (1 ± rel_tol)` — the tolerance
    /// band used for the paper's headline percentages.
    Within {
        /// The paper's published value.
        target: f64,
        /// Relative half-width of the acceptance band.
        rel_tol: f64,
    },
    /// Boolean fact recorded as `1.0` must hold (shape claims such as
    /// "the slowdown ratio never drops below 1 at any load point").
    Holds,
}

/// One machine-checked claim.
#[derive(Debug, Clone, Copy)]
pub struct Expectation {
    /// Metric name, as recorded by the experiment.
    pub metric: &'static str,
    /// Predicate over the metric value.
    pub op: Op,
    /// The claim being encoded, quoting or paraphrasing the paper; shown
    /// in `check` output so a failure names what regressed.
    pub claim: &'static str,
    /// Whether the claim is also enforced at `--quick` scale.
    pub quick: bool,
}

impl Expectation {
    /// Shorthand constructor.
    pub const fn new(metric: &'static str, op: Op, claim: &'static str, quick: bool) -> Self {
        Expectation {
            metric,
            op,
            claim,
            quick,
        }
    }
}

/// Outcome of evaluating one expectation against a metric set.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The expectation evaluated.
    pub expectation: Expectation,
    /// The measured value, if the metric was present.
    pub value: Option<f64>,
    /// Whether the claim held. A missing metric is a failure — a claim
    /// that silently stops being measured is itself a regression.
    pub passed: bool,
}

impl CheckOutcome {
    /// Render the predicate compactly for `check` output.
    pub fn describe_op(&self) -> String {
        match self.expectation.op {
            Op::AtLeast(min) => format!(">= {min}"),
            Op::AtMost(max) => format!("<= {max}"),
            Op::Within { target, rel_tol } => {
                format!("within {:.0}% of {target}", rel_tol * 100.0)
            }
            Op::Holds => "holds".to_string(),
        }
    }
}

/// Evaluate `op` against a concrete value.
fn op_passes(op: Op, value: f64) -> bool {
    if !value.is_finite() {
        return false;
    }
    match op {
        Op::AtLeast(min) => value >= min,
        Op::AtMost(max) => value <= max,
        Op::Within { target, rel_tol } => (value - target).abs() <= target.abs() * rel_tol,
        Op::Holds => (value - 1.0).abs() < 1e-9,
    }
}

/// Evaluate the expectations that apply at the given scale.
///
/// `quick` selects the reduced-trace profile: full-scale-only claims are
/// filtered out entirely (they do not appear in the outcome list).
pub fn evaluate(expectations: &[Expectation], metrics: &Metrics, quick: bool) -> Vec<CheckOutcome> {
    expectations
        .iter()
        .filter(|e| !quick || e.quick)
        .map(|e| {
            let value = metrics.get(e.metric);
            CheckOutcome {
                expectation: *e,
                value,
                passed: value.is_some_and(|v| op_passes(e.op, v)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Metrics {
        let mut m = Metrics::new();
        for (k, v) in pairs {
            m.set(k, *v);
        }
        m
    }

    #[test]
    fn ops_evaluate() {
        assert!(op_passes(Op::AtLeast(1.0), 1.0));
        assert!(!op_passes(Op::AtLeast(1.0), 0.99));
        assert!(op_passes(Op::AtMost(0.02), 0.0));
        assert!(!op_passes(Op::AtMost(0.02), 0.03));
        assert!(op_passes(
            Op::Within {
                target: 0.328,
                rel_tol: 0.2
            },
            0.30
        ));
        assert!(!op_passes(
            Op::Within {
                target: 0.328,
                rel_tol: 0.2
            },
            0.2
        ));
        assert!(op_passes(Op::Holds, 1.0));
        assert!(!op_passes(Op::Holds, 0.0));
        assert!(!op_passes(Op::AtLeast(0.0), f64::NAN));
    }

    #[test]
    fn missing_metric_fails_and_quick_filters() {
        let exps = [
            Expectation::new("present", Op::AtLeast(0.5), "c1", true),
            Expectation::new("absent", Op::AtLeast(0.5), "c2", true),
            Expectation::new("full_only", Op::AtLeast(0.5), "c3", false),
        ];
        let m = metrics(&[("present", 1.0), ("full_only", 1.0)]);
        let full = evaluate(&exps, &m, false);
        assert_eq!(full.len(), 3);
        assert!(full.iter().filter(|o| o.passed).count() == 2);
        let quick = evaluate(&exps, &m, true);
        assert_eq!(quick.len(), 2, "full-only claims are filtered at --quick");
        assert!(!quick
            .iter()
            .find(|o| o.expectation.metric == "absent")
            .is_some_and(|o| o.passed));
    }
}
