//! The paper's experimental trace, shared by every experiment.

use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::Workload;

/// One megabyte in KB.
pub const MB: u64 = 1024;

/// The paper's experimental trace: calibrated CM5-like workload with the
/// full-machine (1024-node) jobs removed, as in §3.1.
pub fn paper_trace(jobs: usize, seed: u64) -> Workload {
    let mut trace = generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    );
    trace.retain_max_nodes(512);
    trace
}

/// The full-scale paper trace (122,055 jobs before preprocessing).
pub fn full_paper_trace(seed: u64) -> Workload {
    paper_trace(122_055, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_respects_node_cap() {
        let t = paper_trace(2_000, 1);
        assert!(t.max_nodes() <= 512);
        assert!(t.len() <= 2_000);
        assert!(t.len() > 1_900, "only full-machine jobs may be dropped");
    }
}
