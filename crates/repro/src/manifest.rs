//! The experiment manifest: the single registry every subcommand drives.
//!
//! One [`ExperimentDef`] per paper artifact binds together everything the
//! pipeline needs to know about an experiment: the library function that
//! runs it, the trace configuration it runs at (full and `--quick` scale,
//! seed), the `results/` artifact it renders, and the coded
//! [`Expectation`]s that gate it. Adding an experiment is adding an entry
//! here (see DESIGN.md §10 for the recipe); nothing else in the runner
//! enumerates experiments.

use crate::expect::Expectation;
use crate::experiments;
use crate::report::ExperimentOutput;
use crate::runner::RunSpec;

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct ExperimentDef {
    /// Stable identifier: the `results/<id>.txt` stem and the historic
    /// binary name in `crates/bench/src/bin`.
    pub id: &'static str,
    /// Which paper artifact this reproduces ("Figure 1", "Table 1", …).
    pub artifact: &'static str,
    /// One-line description shown by `list`.
    pub title: &'static str,
    /// Trace size (jobs) at the default scale — the scale the committed
    /// `results/` artifacts and EXPERIMENTS.md tables are rendered at.
    pub default_jobs: usize,
    /// Reduced trace size used by `--quick` (CI's regression profile).
    pub quick_jobs: usize,
    /// Generator seed. Fixed per experiment so reruns are bit-identical.
    pub seed: u64,
    /// The library function that runs the experiment.
    pub run: fn(&RunSpec) -> ExperimentOutput,
    /// The paper claims gated on this experiment's metrics.
    pub expectations: &'static [Expectation],
}

impl std::fmt::Debug for ExperimentDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentDef")
            .field("id", &self.id)
            .field("artifact", &self.artifact)
            .field("default_jobs", &self.default_jobs)
            .field("quick_jobs", &self.quick_jobs)
            .field("seed", &self.seed)
            .field("expectations", &self.expectations.len())
            .finish()
    }
}

/// Every experiment in the reproduction, in EXPERIMENTS.md order.
pub const MANIFEST: &[ExperimentDef] = &[
    ExperimentDef {
        id: "fig1_histogram",
        artifact: "Figure 1",
        title: "over-provisioning histogram and log-linear fit",
        default_jobs: 122_055,
        quick_jobs: 20_000,
        seed: 42,
        run: experiments::fig1::run,
        expectations: experiments::fig1::EXPECTATIONS,
    },
    ExperimentDef {
        id: "fig3_group_sizes",
        artifact: "Figure 3",
        title: "similarity-group size distribution",
        default_jobs: 122_055,
        quick_jobs: 20_000,
        seed: 42,
        run: experiments::fig3::run,
        expectations: experiments::fig3::EXPECTATIONS,
    },
    ExperimentDef {
        id: "fig4_gain_vs_range",
        artifact: "Figure 4",
        title: "possible gain vs. group similarity range",
        default_jobs: 122_055,
        quick_jobs: 20_000,
        seed: 42,
        run: experiments::fig4::run,
        expectations: experiments::fig4::EXPECTATIONS,
    },
    ExperimentDef {
        id: "fig5_utilization",
        artifact: "Figure 5",
        title: "utilization vs. offered load, with/without estimation",
        default_jobs: 122_055,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::fig5::run,
        expectations: experiments::fig5::EXPECTATIONS,
    },
    ExperimentDef {
        id: "fig6_slowdown",
        artifact: "Figure 6",
        title: "slowdown ratio vs. offered load",
        default_jobs: 122_055,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::fig6::run,
        expectations: experiments::fig6::EXPECTATIONS,
    },
    ExperimentDef {
        id: "fig7_trajectory",
        artifact: "Figure 7",
        title: "single-group estimate trajectory",
        default_jobs: 0,
        quick_jobs: 0,
        seed: 42,
        run: experiments::fig7::run,
        expectations: experiments::fig7::EXPECTATIONS,
    },
    ExperimentDef {
        id: "fig8_cluster_sweep",
        artifact: "Figure 8",
        title: "utilization ratio across cluster heterogeneity",
        default_jobs: 122_055,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::fig8::run,
        expectations: experiments::fig8::EXPECTATIONS,
    },
    ExperimentDef {
        id: "table1_estimators",
        artifact: "Table 1",
        title: "the estimator design-space matrix",
        default_jobs: 122_055,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::table1::run,
        expectations: experiments::table1::EXPECTATIONS,
    },
    ExperimentDef {
        id: "stats_conservativeness",
        artifact: "§3.2",
        title: "conservativeness: failure cost vs. estimation reach",
        default_jobs: 15_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::conservativeness::run,
        expectations: experiments::conservativeness::EXPECTATIONS,
    },
    ExperimentDef {
        id: "ablation_alpha_beta",
        artifact: "ablation",
        title: "alpha / beta / similarity-policy parameter study",
        default_jobs: 10_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::ablation_alpha_beta::run,
        expectations: experiments::ablation_alpha_beta::EXPECTATIONS,
    },
    ExperimentDef {
        id: "ablation_scheduler",
        artifact: "ablation",
        title: "scheduling policy x estimation (the §4 hypothesis)",
        default_jobs: 122_055,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::ablation_scheduler::run,
        expectations: experiments::ablation_scheduler::EXPECTATIONS,
    },
    ExperimentDef {
        id: "ablation_false_positives",
        artifact: "ablation",
        title: "injected false positives: implicit vs. explicit feedback",
        default_jobs: 15_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::ablation_false_positives::run,
        expectations: experiments::ablation_false_positives::EXPECTATIONS,
    },
    ExperimentDef {
        id: "ablation_match_policy",
        artifact: "ablation",
        title: "first/best/worst-fit matching x estimation",
        default_jobs: 15_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::ablation_match_policy::run,
        expectations: experiments::ablation_match_policy::EXPECTATIONS,
    },
    ExperimentDef {
        id: "ablation_churn",
        artifact: "ablation",
        title: "dynamic cluster membership (grid churn)",
        default_jobs: 12_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::ablation_churn::run,
        expectations: experiments::ablation_churn::EXPECTATIONS,
    },
    ExperimentDef {
        id: "futurework_estimators",
        artifact: "§4",
        title: "future-work estimators vs. published Algorithm 1",
        default_jobs: 15_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::futurework::run,
        expectations: experiments::futurework::EXPECTATIONS,
    },
    ExperimentDef {
        id: "matchmaking_scenarios",
        artifact: "§1.1",
        title: "ClassAd matchmaking: disk-constrained and license-pool scenarios",
        default_jobs: 15_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::matchmaking::run,
        expectations: experiments::matchmaking::EXPECTATIONS,
    },
    ExperimentDef {
        id: "robustness_workloads",
        artifact: "robustness",
        title: "Figure 5 replayed on an independent workload family",
        default_jobs: 12_000,
        quick_jobs: 3_000,
        seed: 42,
        run: experiments::robustness::run,
        expectations: experiments::robustness::EXPECTATIONS,
    },
    ExperimentDef {
        id: "validate_calibration",
        artifact: "generator",
        title: "generator calibration + cross-seed KS stability",
        // Generation-only (no simulation), so the quick profile runs the
        // full scale: the KS budget and 30% tolerance are calibrated for
        // 60k-job samples and would false-alarm on smaller ones.
        default_jobs: 60_000,
        quick_jobs: 60_000,
        seed: 42,
        run: experiments::calibration::run,
        expectations: experiments::calibration::EXPECTATIONS,
    },
];

/// Look up an experiment by id.
pub fn find(id: &str) -> Option<&'static ExperimentDef> {
    MANIFEST.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn manifest_covers_all_18_experiments_with_unique_ids() {
        assert_eq!(MANIFEST.len(), 18);
        let ids: BTreeSet<&str> = MANIFEST.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), MANIFEST.len(), "duplicate experiment id");
    }

    #[test]
    fn every_experiment_has_at_least_one_quick_expectation() {
        // `check --quick` must gate something for every experiment;
        // otherwise a regression could hide behind the reduced profile.
        for e in MANIFEST {
            assert!(
                e.expectations.iter().any(|x| x.quick),
                "{} has no quick-scale expectation",
                e.id
            );
        }
    }

    #[test]
    fn quick_scale_never_exceeds_default_scale() {
        for e in MANIFEST {
            assert!(e.quick_jobs <= e.default_jobs || e.default_jobs == 0);
        }
    }
}
