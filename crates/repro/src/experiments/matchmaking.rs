//! Matchmaking scenarios: multi-resource allocation through ClassAds.
//!
//! The paper's machine model stops at memory, but its §1.1 motivating
//! scenario — a job parked on the wrong machine because *requests*, not
//! actual needs, drive placement — is a multi-resource story. This
//! experiment runs the documented scenario family end to end through the
//! compiled-ClassAd matchmaking layer:
//!
//! - **disk-constrained nodes**: the 32 MB half of the paper cluster
//!   carries a finite 2 GB scratch partition; jobs enriched with synthetic
//!   disk requests above it can only land on the unconstrained half,
//! - **software license pool**: the licensed package set is installed only
//!   on the 32 MB half; jobs whose applications need a license are confined
//!   to it regardless of memory fit.
//!
//! Every arm allocates through the matchmaker; what varies is the
//! estimator — no estimation, memory-only Algorithm 1, and the §2.3
//! per-resource estimator that shrinks each requested dimension through its
//! own channel. The first gate is the seam's identity contract: with
//! unconstrained ads the matchmaking path reproduces the legacy allocator
//! bit for bit.

use resmatch_classad::{Matchmaker, PoolAd};
use resmatch_cluster::builder::paper_cluster;
use resmatch_cluster::{Capacity, Cluster, ClusterBuilder};
use resmatch_core::prelude::{PerResourceConfig, SuccessiveConfig};
use resmatch_sim::prelude::*;
use resmatch_workload::attrs::{synthesize_attributes, AttrConfig};
use resmatch_workload::load::scale_to_load;
use resmatch_workload::Workload;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// One megabyte in KB.
const MB: u64 = 1024;
/// One gigabyte in KB.
const GB: u64 = 1024 * MB;
/// The package mask installed on the licensed pool (matches the
/// default [`AttrConfig::package_count`] of four licensed products).
const LICENSED: u32 = 0xF;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "matchall_identity",
        Op::Holds,
        "unconstrained matchmaking reproduces the legacy allocation path bit for bit",
        true,
    ),
    Expectation::new(
        "disk_mem_ratio",
        Op::AtLeast(1.02),
        "memory estimation still pays off when nodes are disk-constrained",
        true,
    ),
    Expectation::new(
        "disk_per_ratio",
        Op::AtLeast(1.02),
        "per-resource estimation holds the gain with a live disk channel",
        true,
    ),
    Expectation::new(
        "license_mem_ratio",
        Op::AtLeast(1.0),
        "estimation never hurts when a license pool constrains placement",
        true,
    ),
];

/// The two-pool scenario cluster: `big` over 512 × 32 MB nodes, `small`
/// over 512 × 24 MB nodes.
fn scenario_cluster(big: Capacity, small: Capacity) -> (Cluster, Vec<PoolAd>) {
    let cluster = ClusterBuilder::new()
        .pool_with(512, big)
        .pool_with(512, small)
        .build();
    (cluster, vec![PoolAd::new(big), PoolAd::new(small)])
}

/// Run one arm: the enriched workload through the matchmaker with `spec`.
fn arm(w: &Workload, cluster: &Cluster, ads: &[PoolAd], spec: EstimatorSpec) -> SimResult {
    Simulation::new(SimConfig::default(), cluster.clone(), spec)
        .with_matchmaking(Box::new(Matchmaker::new(ads)))
        .run(w)
}

/// Run the matchmaking scenario family.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let scaled = scale_to_load(&trace, 1024, 1.2);
    let mut enriched = scaled.clone();
    synthesize_attributes(&mut enriched, &AttrConfig::default(), spec.seed);
    let mut r = Report::new();

    r.header("matchmaking scenarios: ClassAds in the allocation path");

    // Identity gate: unconstrained ads over the plain paper cluster must
    // change nothing — same utilization and wait-time bits as the legacy
    // path on the same (unenriched) workload.
    let legacy = Simulation::new(
        SimConfig::default(),
        paper_cluster(24),
        EstimatorSpec::paper_successive(),
    )
    .run(&scaled);
    let matched = Simulation::new(
        SimConfig::default(),
        paper_cluster(24),
        EstimatorSpec::paper_successive(),
    )
    .with_matchmaking(Box::new(Matchmaker::from_cluster(&paper_cluster(24))))
    .run(&scaled);
    let identity = legacy.utilization().to_bits() == matched.utilization().to_bits()
        && legacy.mean_wait_s().to_bits() == matched.mean_wait_s().to_bits()
        && legacy.completed_jobs == matched.completed_jobs;
    out!(
        r,
        "identity (MatchAll == legacy): {}\n",
        if identity { "bit-exact" } else { "DIVERGED" }
    );

    let estimators = [
        ("none", EstimatorSpec::PassThrough),
        (
            "memory-only",
            EstimatorSpec::Successive(SuccessiveConfig::default()),
        ),
        (
            "per-resource",
            EstimatorSpec::PerResource(PerResourceConfig::default()),
        ),
    ];

    for (scenario, big, small, note) in [
        (
            // Two finite scratch tiers: the top disk rung fits only the
            // 24 MB half, so big-disk *requests* squat there until the
            // disk channel learns actual usage down into the 2 GB tier.
            "disk-constrained",
            Capacity::new(32 * MB, 2 * GB, u32::MAX),
            Capacity::new(24 * MB, 4 * GB, u32::MAX),
            "32 MB nodes carry 2 GB scratch, 24 MB nodes 4 GB",
        ),
        (
            "license-pool",
            Capacity::new(32 * MB, u64::MAX, LICENSED),
            Capacity::memory(24 * MB),
            "licensed packages live on the 32 MB half only",
        ),
    ] {
        let (cluster, ads) = scenario_cluster(big, small);
        r.header(&format!("scenario: {scenario} ({note})"));
        out!(
            r,
            "{:<14} {:>10} {:>12} {:>10} {:>10}",
            "estimator",
            "util",
            "mean wait s",
            "dropped",
            "est fail%"
        );
        let mut base_util = 0.0f64;
        for (name, est) in estimators {
            let res = arm(&enriched, &cluster, &ads, est);
            if name == "none" {
                base_util = res.utilization();
            }
            let key = if scenario == "disk-constrained" {
                "disk"
            } else {
                "license"
            };
            let tag = match name {
                "none" => "base",
                "memory-only" => "mem",
                _ => "per",
            };
            r.metric(&format!("{key}_{tag}_util"), res.utilization());
            r.metric(&format!("{key}_{tag}_wait_s"), res.mean_wait_s());
            if tag != "base" {
                r.metric(
                    &format!("{key}_{tag}_ratio"),
                    res.utilization() / base_util.max(1e-9),
                );
            }
            out!(
                r,
                "{:<14} {:>10.3} {:>12.0} {:>10} {:>9.3}%",
                name,
                res.utilization(),
                res.mean_wait_s(),
                res.dropped_jobs,
                res.failed_execution_fraction() * 100.0,
            );
        }
        out!(r, "");
    }
    out!(
        r,
        "Requests gate placement: a 4 GB disk request is confined to the\n\
         4 GB-scratch pool even when actual usage would fit the 2 GB tier,\n\
         and a licensed job squats the big-memory pool however little it\n\
         uses. Estimation narrows each dimension toward actual usage, so\n\
         the matchmaker regains the placements over-provisioning lost."
    );

    r.flag("matchall_identity", identity);
    r.finish()
}
