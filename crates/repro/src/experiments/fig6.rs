//! Figure 6: the effect of resource estimation on slowdown.
//!
//! Same cluster and settings as Figure 5. The paper plots the ratio of
//! slowdown *without* estimation to slowdown *with* estimation across
//! loads: it never drops below 1 (estimation never hurts), and it peaks
//! dramatically around 60% load, where the queue is short enough that
//! freeing blocked jobs still collapses their wait times.

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "never_worse",
        Op::Holds,
        "estimation never causes slowdown to increase, at any load point (5% noise band)",
        true,
    ),
    Expectation::new(
        "min_ratio",
        Op::AtLeast(0.95),
        "the slowdown ratio never drops below 1 across the sweep",
        true,
    ),
    Expectation::new(
        "peak_ratio",
        Op::AtLeast(5.0),
        "a dramatic mid-load peak exists (ours reaches 37-69x at full scale)",
        true,
    ),
    Expectation::new(
        "peak_load",
        Op::Within {
            target: 0.5,
            rel_tol: 0.45,
        },
        "the peak sits at mid load (paper: ~0.6; ours lands at 0.4-0.5)",
        false,
    ),
];

/// Run the Figure 6 sweep.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let mut r = Report::new();

    r.header("Figure 6: slowdown(no est.) / slowdown(est.) vs. offered load");
    out!(
        r,
        "trace: {} jobs, FCFS, implicit feedback, alpha=2 beta=0\n",
        trace.len()
    );

    let sweep =
        SweepConfig::default().with_loads(vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2]);
    let base = run_load_sweep(&trace, &cluster, EstimatorSpec::PassThrough, &sweep);
    let est = run_load_sweep(&trace, &cluster, EstimatorSpec::paper_successive(), &sweep);

    out!(
        r,
        "{:>8} {:>18} {:>18} {:>10} {:>12}",
        "load",
        "slowdown (no est.)",
        "slowdown (est.)",
        "ratio",
        "queue (base)"
    );
    let mut peak = (0.0f64, 0.0f64);
    let mut min_ratio = f64::INFINITY;
    for (b, e) in base.iter().zip(&est) {
        let sb = b.result.mean_slowdown();
        let se = e.result.mean_slowdown();
        let ratio = if se > 0.0 { sb / se } else { 1.0 };
        if ratio > peak.1 {
            peak = (b.offered_load, ratio);
        }
        min_ratio = min_ratio.min(ratio);
        let bar = "#".repeat((ratio.min(60.0)) as usize);
        out!(
            r,
            "{:>8.2} {:>18.2} {:>18.2} {:>10.2} {:>12.1}  {bar}",
            b.offered_load,
            sb,
            se,
            ratio,
            b.result.mean_queue_length
        );
    }

    r.header("shape check vs. paper");
    out!(
        r,
        "peak ratio {:.2} at load {:.2}  (paper: dramatic peak at ~0.6)",
        peak.1,
        peak.0
    );
    let never_worse = base
        .iter()
        .zip(&est)
        .all(|(b, e)| e.result.mean_slowdown() <= b.result.mean_slowdown() * 1.05);
    out!(
        r,
        "estimation never increases slowdown: {}  (paper: 'never causes slowdown to increase')",
        if never_worse { "yes" } else { "VIOLATED" }
    );
    out!(
        r,
        "The queue column confirms the paper's mechanism: the peak sits where\n\
         the baseline queue is forming but 'still not extremely long'."
    );
    r.metric("peak_ratio", peak.1);
    r.metric("peak_load", peak.0);
    r.metric(
        "min_ratio",
        if min_ratio.is_finite() {
            min_ratio
        } else {
            1.0
        },
    );
    r.flag("never_worse", never_worse);
    r.finish()
}
