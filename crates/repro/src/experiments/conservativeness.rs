//! §3.2 conservativeness: failure cost vs. estimation reach.
//!
//! "For all the different cluster configurations we tried, at most only
//! 0.01% of job executions resulted in failure due to insufficient
//! resources, while 15%-40% of jobs were successfully submitted for
//! execution with lower estimated resources than the job requests."
//!
//! Our synthetic trace concentrates heavy-job usage at 16–26 MB (that is
//! what produces the Figure 8 band), so the active-band failure rate runs
//! above the paper's headline number; the coded bound reflects the repo's
//! measured structural cost of roughly one probing failure per group (see
//! EXPERIMENTS.md for the full argument).

use resmatch_sim::prelude::*;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "worst_fail_fraction",
        Op::AtMost(0.025),
        "failed executions stay rare and bounded across cluster configurations",
        false,
    ),
    Expectation::new(
        "max_lowered_fraction",
        Op::AtLeast(0.15),
        "15-40% of jobs run with lowered estimates where estimation is active",
        true,
    ),
    Expectation::new(
        "max_lowered_fraction",
        Op::AtMost(0.45),
        "the estimator stays conservative: lowered-job reach does not balloon",
        true,
    ),
];

/// Run the §3.2 conservativeness sweep.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let mut r = Report::new();

    r.header("conservativeness across cluster configurations");
    out!(r, "trace: {} jobs; alpha=2 beta=0; load 1.0\n", trace.len());

    let pools: Vec<u64> = vec![8, 12, 16, 20, 24, 28, 32];
    let points = run_cluster_sweep(
        &trace,
        &pools,
        EstimatorSpec::paper_successive(),
        SimConfig::default(),
        1.0,
    );

    out!(
        r,
        "{:>10} {:>14} {:>14} {:>12}",
        "pool (MB)",
        "failed execs",
        "fail rate",
        "lowered jobs"
    );
    let mut worst_fail = 0.0f64;
    let mut lowered_range = (1.0f64, 0.0f64);
    for p in &points {
        let fail = p.estimated.failed_execution_fraction();
        let lowered = p.estimated.lowered_job_fraction();
        worst_fail = worst_fail.max(fail);
        lowered_range = (lowered_range.0.min(lowered), lowered_range.1.max(lowered));
        out!(
            r,
            "{:>10} {:>14} {:>13.4}% {:>11.1}%",
            p.second_pool_mb,
            p.estimated.failed_executions,
            fail * 100.0,
            lowered * 100.0,
        );
    }

    r.header("headline statistics vs. paper");
    out!(
        r,
        "worst failure rate:   {:.4}%   (paper: at most ~0.01%)",
        worst_fail * 100.0
    );
    out!(
        r,
        "lowered-job range:    {:.1}% - {:.1}%   (paper: 15%-40%)",
        lowered_range.0 * 100.0,
        lowered_range.1 * 100.0
    );
    r.metric("worst_fail_fraction", worst_fail);
    r.metric("min_lowered_fraction", lowered_range.0);
    r.metric("max_lowered_fraction", lowered_range.1);
    r.finish()
}
