//! Ablation: scheduling policy (the paper's future-work hypothesis).
//!
//! "We expect that the results of cluster utilization with more aggressive
//! scheduling policies like backfilling will be correlated with those for
//! FCFS. However, these experiments are left for future work." This
//! ablation runs them: FCFS, EASY backfilling, and SJF, each with and
//! without estimation.

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "worst_scheduler_ratio",
        Op::AtLeast(1.1),
        "the utilization gain persists under EASY backfilling and SJF, as §4 hypothesizes",
        true,
    ),
    Expectation::new(
        "fcfs_ratio",
        Op::AtLeast(1.1),
        "the FCFS reference gain matches the Figure 5 configuration",
        true,
    ),
];

/// Run the scheduling-policy ablation.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
    let mut r = Report::new();

    r.header("ablation: scheduling policy x estimation");
    out!(
        r,
        "cluster 512x32MB + 512x24MB, saturating load, alpha=2 beta=0\n"
    );
    out!(
        r,
        "{:<18} {:>12} {:>12} {:>12} {:>14}",
        "policy",
        "util (base)",
        "util (est.)",
        "ratio",
        "slowdown ratio"
    );

    let mut worst_ratio = f64::INFINITY;
    for (name, policy) in [
        ("FCFS", SchedulingPolicy::Fcfs),
        ("EASY backfill", SchedulingPolicy::EasyBackfill),
        ("SJF", SchedulingPolicy::Sjf),
    ] {
        let cfg = SimConfig::default().with_scheduling(policy);
        let base = Simulation::new(cfg, cluster.clone(), EstimatorSpec::PassThrough).run(&scaled);
        let est =
            Simulation::new(cfg, cluster.clone(), EstimatorSpec::paper_successive()).run(&scaled);
        let ratio = est.utilization() / base.utilization().max(1e-9);
        worst_ratio = worst_ratio.min(ratio);
        match policy {
            SchedulingPolicy::Fcfs => r.metric("fcfs_ratio", ratio),
            SchedulingPolicy::EasyBackfill => r.metric("easy_ratio", ratio),
            SchedulingPolicy::Sjf => r.metric("sjf_ratio", ratio),
        }
        out!(
            r,
            "{:<18} {:>12.3} {:>12.3} {:>12.2} {:>14.2}",
            name,
            base.utilization(),
            est.utilization(),
            ratio,
            base.mean_slowdown() / est.mean_slowdown().max(1e-9),
        );
    }
    r.metric(
        "worst_scheduler_ratio",
        if worst_ratio.is_finite() {
            worst_ratio
        } else {
            0.0
        },
    );

    out!(
        r,
        "\nThe paper's hypothesis holds when the estimation gain persists\n\
         (ratio > 1) under backfilling, though backfilling already removes\n\
         some head-of-line blocking on its own, shrinking the headroom."
    );
    r.finish()
}
