//! Figure 7: estimated memory for a single similarity group across cycles.
//!
//! The paper traces one group whose jobs request 32 MB and use slightly
//! more than 5 MB: the estimate halves (32 → 16 → 8), the probe at 4 MB
//! fails, the estimate restores to 8 MB and freezes — a four-fold
//! reduction.

use resmatch_cluster::CapacityLadder;
use resmatch_core::prelude::*;
use resmatch_workload::job::JobBuilder;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::MB;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "trajectory_exact",
        Op::Holds,
        "the granted sequence is exactly 32 -> 16 -> 8 -> 4 (fails) -> 8 frozen",
        true,
    ),
    Expectation::new(
        "final_grant_mb",
        Op::Within {
            target: 8.0,
            rel_tol: 0.0,
        },
        "the estimate settles at 8 MB, a four-fold reduction from the request",
        true,
    ),
    Expectation::new(
        "failures",
        Op::Within {
            target: 1.0,
            rel_tol: 0.0,
        },
        "exactly one probing failure (the 4 MB cycle) is paid for the reduction",
        true,
    ),
];

/// Run the Figure 7 single-group trajectory. The trace size is irrelevant
/// here — the experiment drives the estimator directly for eight cycles.
pub fn run(_spec: &RunSpec) -> ExperimentOutput {
    let mut r = Report::new();
    r.header("Figure 7: estimate trajectory (request 32 MB, actual ~5.2 MB)");
    let ladder = CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB, 4 * MB]);
    let mut est = SuccessiveApproximation::new(SuccessiveConfig::default(), ladder.clone());
    let ctx = EstimateContext::default();

    out!(
        r,
        "{:>6} {:>14} {:>12} {:>10}",
        "cycle",
        "granted (MB)",
        "outcome",
        "E_i (MB)"
    );
    let mut grants = Vec::new();
    let mut failures = 0u32;
    for cycle in 1..=8 {
        let job = JobBuilder::new(cycle)
            .user(1)
            .app(1)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(5 * MB + 256)
            .build();
        let demand = est.estimate(&job, &ctx);
        let node = ladder.round_up(demand.mem_kb).unwrap_or(demand.mem_kb);
        let ok = job.used_mem_kb <= node;
        if !ok {
            failures += 1;
        }
        est.feedback(
            &job,
            &demand,
            &if ok {
                Feedback::success()
            } else {
                Feedback::failure()
            },
            &ctx,
        );
        let snap = est
            .group_snapshot(&job)
            .expect("invariant: the feedback call above creates the job's similarity group");
        let bar = "#".repeat((demand.mem_kb / MB) as usize);
        out!(
            r,
            "{cycle:>6} {:>14} {:>12} {:>10.1}  {bar}",
            demand.mem_kb / MB,
            if ok { "completed" } else { "FAILED" },
            snap.estimate_kb / MB as f64,
        );
        grants.push(demand.mem_kb / MB);
    }

    r.header("shape check vs. paper");
    out!(
        r,
        "expected trajectory 32 -> 16 -> 8 -> 4(fail) -> 8 frozen; final\n\
         estimate is a four-fold reduction from the request, as published."
    );
    let expected: &[u64] = &[32, 16, 8, 4, 8, 8, 8, 8];
    r.flag("trajectory_exact", grants == expected);
    r.metric("final_grant_mb", grants.last().copied().unwrap_or(0) as f64);
    r.metric("failures", f64::from(failures));
    r.finish()
}
