//! Ablation: false-positive failures under implicit feedback (§2.1).
//!
//! "An additional drawback of resource estimation using implicit feedback
//! is that it is more prone to false positive cases ... job failures due to
//! faulty programming or faulty machines might confuse the estimator to
//! assume that the job failed due to too low estimated resources. In the
//! case of explicit feedback, however, such confusions can be avoided."
//!
//! This ablation injects unrelated failures at increasing rates and
//! compares the implicit-feedback estimator (successive approximation)
//! against an explicit-feedback one (last-instance).

use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
///
/// The §2.1 hazard shows up in the current engine as a *reach* cost, not a
/// utilization collapse: spurious failures freeze similarity groups, so
/// fewer jobs run with lowered estimates, while the engine's request
/// fallback keeps utilization within a few percent. The gate pins both
/// halves of that story.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "implicit_reach_shrinks",
        Op::Holds,
        "5% injected failures freeze groups under implicit feedback: fewer jobs run lowered (§2.1)",
        true,
    ),
    Expectation::new(
        "implicit_degradation",
        Op::AtMost(0.05),
        "the utilization cost of 5% injected failures stays within a few percent (implicit)",
        true,
    ),
    Expectation::new(
        "explicit_degradation",
        Op::AtMost(0.10),
        "the utilization cost of 5% injected failures stays bounded (explicit)",
        true,
    ),
];

/// Run the false-positive-injection ablation.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.0);
    let mut r = Report::new();

    r.header("ablation: injected false-positive failures");
    out!(
        r,
        "{:>8} {:>22} {:>22}",
        "fp rate",
        "util (implicit, Alg.1)",
        "util (explicit, last)"
    );
    let mut implicit_clean = 0.0f64;
    let mut explicit_clean = 0.0f64;
    let mut implicit_noisy = 0.0f64;
    let mut explicit_noisy = 0.0f64;
    let mut implicit_clean_lowered = 0.0f64;
    let mut implicit_noisy_lowered = 0.0f64;
    for fp in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let implicit_cfg = SimConfig::default().with_false_positive_rate(fp);
        let explicit_cfg = SimConfig::default()
            .with_false_positive_rate(fp)
            .with_feedback(FeedbackMode::Explicit);
        let implicit = Simulation::new(
            implicit_cfg,
            cluster.clone(),
            EstimatorSpec::paper_successive(),
        )
        .run(&scaled);
        let explicit = Simulation::new(
            explicit_cfg,
            cluster.clone(),
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        )
        .run(&scaled);
        if fp == 0.0 {
            implicit_clean = implicit.utilization();
            explicit_clean = explicit.utilization();
            implicit_clean_lowered = implicit.lowered_job_fraction();
        }
        if (fp - 0.05).abs() < 1e-9 {
            implicit_noisy = implicit.utilization();
            explicit_noisy = explicit.utilization();
            implicit_noisy_lowered = implicit.lowered_job_fraction();
        }
        out!(
            r,
            "{:>8.3} {:>15.3} ({:>4.1}%) {:>15.3} ({:>4.1}%)",
            fp,
            implicit.utilization(),
            implicit.lowered_job_fraction() * 100.0,
            explicit.utilization(),
            explicit.lowered_job_fraction() * 100.0,
        );
    }
    out!(
        r,
        "\n(parenthesized: fraction of jobs still running with lowered\n\
         estimates — implicit feedback loses reach as spurious failures\n\
         freeze groups, the paper's predicted failure mode)"
    );
    let implicit_degradation = 1.0 - implicit_noisy / implicit_clean.max(1e-9);
    let explicit_degradation = 1.0 - explicit_noisy / explicit_clean.max(1e-9);
    r.metric("implicit_clean_util", implicit_clean);
    r.metric("implicit_noisy_util", implicit_noisy);
    r.metric("explicit_clean_util", explicit_clean);
    r.metric("explicit_noisy_util", explicit_noisy);
    r.metric("implicit_degradation", implicit_degradation);
    r.metric("explicit_degradation", explicit_degradation);
    r.metric("implicit_clean_lowered", implicit_clean_lowered);
    r.metric("implicit_noisy_lowered", implicit_noisy_lowered);
    r.flag(
        "implicit_reach_shrinks",
        implicit_noisy_lowered < implicit_clean_lowered,
    );
    r.finish()
}
