//! Validate the synthetic generator against the paper's reference
//! statistics, and check its stability across seeds.
//!
//! Two levels of checking:
//! 1. **Targets** — the published LANL CM5 statistics (group density,
//!    over-provisioning fraction, group-size concentration) via
//!    `workload::calibration`.
//! 2. **Stability** — two independent seeds must draw the *same*
//!    distributions (over-provisioning ratios, runtimes, group sizes),
//!    verified with two-sample Kolmogorov–Smirnov tests. A generator whose
//!    statistics wobble across seeds would make the figure experiments
//!    seed-lottery experiments.

use resmatch_stats::ks::ks_two_sample;
use resmatch_workload::analysis::group_size_distribution;
use resmatch_workload::calibration::{measure, CalibrationReport, CalibrationTargets};
use resmatch_workload::synthetic::{generate, Cm5Config};
use resmatch_workload::{Job, Workload};

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "calibration_passes",
        Op::Holds,
        "every published CM5 statistic reproduces within the 30% calibration tolerance",
        false,
    ),
    Expectation::new(
        "worst_relative_error",
        Op::AtMost(0.30),
        "the worst calibration relative error stays inside the CI tolerance",
        false,
    ),
    Expectation::new(
        "worst_ks_d",
        Op::AtMost(0.08),
        "cross-seed KS distances stay inside the class-level sampling noise budget",
        true,
    ),
];

fn trace(jobs: usize, seed: u64) -> Workload {
    generate(
        &Cm5Config {
            jobs,
            ..Cm5Config::default()
        },
        seed,
    )
}

fn ratios(w: &Workload) -> Vec<f64> {
    w.jobs()
        .iter()
        .filter_map(Job::overprovisioning_ratio)
        .collect()
}

fn runtimes(w: &Workload) -> Vec<f64> {
    w.jobs().iter().map(|j| j.runtime.as_secs_f64()).collect()
}

fn group_sizes(w: &Workload) -> Vec<f64> {
    group_size_distribution(w)
        .iter()
        .flat_map(|b| std::iter::repeat_n(b.size as f64, b.groups))
        .collect()
}

/// Run the generator-calibration validation.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let mut r = Report::new();

    r.header("level 1: published LANL CM5 statistics");
    let w = trace(spec.jobs, spec.seed);
    let report = CalibrationReport::compare(&measure(&w), &CalibrationTargets::paper());
    out!(
        r,
        "{:<22} {:>12} {:>12} {:>10}",
        "statistic",
        "paper",
        "measured",
        "rel. err"
    );
    for c in &report.checks {
        out!(
            r,
            "{:<22} {:>12.4} {:>12.4} {:>9.1}%",
            c.name,
            c.target,
            c.measured,
            c.relative_error * 100.0
        );
    }
    out!(
        r,
        "verdict: {} (worst relative error {:.1}%, tolerance 30%)",
        if report.passes(0.30) { "PASS" } else { "DRIFT" },
        report.worst_error() * 100.0
    );
    r.flag("calibration_passes", report.passes(0.30));
    r.metric("worst_relative_error", report.worst_error());

    r.header("level 2: cross-seed distribution stability (two-sample KS)");
    let w2 = trace(spec.jobs, spec.seed.wrapping_add(1));
    out!(
        r,
        "{:<26} {:>10} {:>12} {:>8}",
        "distribution",
        "KS D",
        "p-value",
        "verdict"
    );
    let mut worst_d = 0.0f64;
    for (name, a, b) in [
        ("over-provisioning ratio", ratios(&w), ratios(&w2)),
        ("runtime", runtimes(&w), runtimes(&w2)),
        ("group size", group_sizes(&w), group_sizes(&w2)),
    ] {
        match ks_two_sample(&a, &b) {
            Some(ks) => {
                worst_d = worst_d.max(ks.statistic);
                out!(
                    r,
                    "{:<26} {:>10.4} {:>12.4} {:>8}",
                    name,
                    ks.statistic,
                    ks.p_value,
                    // Ratios and runtimes are drawn per *class*, so the
                    // effective sample is the class count (~jobs/12), not
                    // the job count — cross-seed D of a few percent is the
                    // expected class-level sampling noise, and the
                    // practical bar is a small absolute distance rather
                    // than the (hyper-sensitive) iid p-value.
                    if ks.statistic < 0.08 {
                        "stable"
                    } else {
                        "WOBBLY"
                    }
                );
            }
            None => out!(r, "{name:<26} (empty sample)"),
        }
    }
    r.metric("worst_ks_d", worst_d);
    r.finish()
}
