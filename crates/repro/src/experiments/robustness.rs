//! Robustness: does the headline result survive a different workload model?
//!
//! The figure experiments run on the CM5-calibrated generator. This one
//! replays the Figure 5 comparison on an *independent* parametric workload
//! family (Lublin-Feitelson-style arrivals/runtimes with an over-
//! provisioning layer) across several seeds. If estimation's gain were an
//! artifact of the CM5 calibration, it would vanish here.

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::parametric::{generate_parametric, upholds_assumptions, ParametricConfig};

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "mean_seed_ratio",
        Op::AtLeast(1.0),
        "estimation improves mean utilization across seeds of the independent workload family",
        true,
    ),
    Expectation::new(
        "worst_seed_ratio",
        Op::AtLeast(0.95),
        "no seed of the independent family loses more than a few percent under estimation",
        true,
    ),
    Expectation::new(
        "assumptions_hold",
        Op::Holds,
        "the parametric generator upholds the over-provisioning assumptions on every seed",
        true,
    ),
];

/// Run the independent-workload robustness experiment.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let mut r = Report::new();

    r.header("robustness: Figure 5 comparison on the parametric workload family");
    out!(
        r,
        "{:>6} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "seed",
        "util (base)",
        "util (est.)",
        "ratio",
        "fail%",
        "lowered%"
    );
    let cluster = paper_cluster(24);
    let mut ratios = Vec::new();
    let mut assumptions_hold = true;
    for seed in [1u64, 2, 3, 4, 5] {
        let trace = generate_parametric(
            &ParametricConfig {
                jobs: spec.jobs,
                ..ParametricConfig::default()
            },
            seed,
        );
        assumptions_hold &= upholds_assumptions(&trace);
        let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
        let base = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::PassThrough,
        )
        .run(&scaled);
        let est = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::paper_successive(),
        )
        .run(&scaled);
        let ratio = est.utilization() / base.utilization().max(1e-9);
        ratios.push(ratio);
        out!(
            r,
            "{:>6} {:>12.3} {:>12.3} {:>8.2} {:>9.3}% {:>9.1}%",
            seed,
            base.utilization(),
            est.utilization(),
            ratio,
            est.failed_execution_fraction() * 100.0,
            est.lowered_job_fraction() * 100.0,
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    out!(
        r,
        "\nmean improvement {:.0}%, worst seed {:+.0}% — the gain is a property\n\
         of over-provisioning on heterogeneous clusters, not of one trace.",
        (mean - 1.0) * 100.0,
        (min - 1.0) * 100.0
    );
    r.metric("mean_seed_ratio", mean);
    r.metric("worst_seed_ratio", if min.is_finite() { min } else { 0.0 });
    r.flag("assumptions_hold", assumptions_hold);
    r.finish()
}
