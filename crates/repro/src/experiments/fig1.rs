//! Figure 1: histogram of the ratio between requested and used memory.
//!
//! The paper reports, for the LANL CM5 trace: ~32.8% of jobs with a
//! mismatch of 2x or more, ratios spanning two orders of magnitude, and a
//! log-linear regression over the histogram with R² = 0.69.

use resmatch_workload::analysis::{
    histogram_log_fit, overprovisioned_fraction, overprovisioning_histogram,
};

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "frac_ge_2x",
        Op::Within {
            target: 0.328,
            rel_tol: 0.15,
        },
        "32.8% of jobs request at least twice the memory they use",
        false,
    ),
    Expectation::new(
        "frac_ge_2x",
        Op::AtLeast(0.2),
        "a substantial fraction of jobs over-provision by 2x or more",
        true,
    ),
    Expectation::new(
        "ratio_span_orders",
        Op::AtLeast(2.0),
        "over-provisioning ratios span two orders of magnitude",
        true,
    ),
    Expectation::new(
        "log_fit_r2",
        Op::AtLeast(0.6),
        "the histogram is log-linear (paper fit R² = 0.69)",
        true,
    ),
];

/// Run the Figure 1 analysis.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let mut r = Report::new();

    r.header("Figure 1: requested/used memory ratio histogram");
    out!(r, "trace: {} jobs (seed {})\n", trace.len(), spec.seed);

    let hist = overprovisioning_histogram(&trace, 8);
    out!(r, "{:<16} {:>10} {:>12}", "ratio bin", "jobs", "% of jobs");
    let mut max_populated_ratio = 1.0f64;
    for i in 0..hist.num_bins() {
        if hist.count(i) > 0 {
            max_populated_ratio = max_populated_ratio.max(hist.bin_lower(i + 1));
        }
        let bar_len = (hist.fraction(i) * 120.0).round() as usize;
        out!(
            r,
            "[{:>5.0}, {:>5.0})   {:>10} {:>11.2}%  {}",
            hist.bin_lower(i),
            hist.bin_lower(i + 1),
            hist.count(i),
            hist.fraction(i) * 100.0,
            "#".repeat(bar_len.min(60)),
        );
    }
    out!(r, "{:<16} {:>10}", ">= 256", hist.overflow());
    if hist.overflow() > 0 {
        max_populated_ratio = 256.0;
    }

    r.header("headline statistics vs. paper");
    let frac2 = overprovisioned_fraction(&trace, 2.0);
    r.metric("frac_ge_2x", frac2);
    r.metric("ratio_span_orders", max_populated_ratio.log10());
    out!(
        r,
        "jobs with ratio >= 2x:   {:>6.1}%   (paper: 32.8%)",
        frac2 * 100.0
    );
    match histogram_log_fit(&hist) {
        Some(fit) => {
            r.metric("log_fit_r2", fit.r_squared);
            r.metric("log_fit_slope", fit.slope);
            out!(
                r,
                "log-linear fit R^2:      {:>6.2}    (paper: 0.69)\n\
                 fit slope:               {:>6.3} log10(fraction)/bin",
                fit.r_squared,
                fit.slope
            );
        }
        None => out!(r, "log-linear fit: not enough populated bins"),
    }
    r.finish()
}
