//! Table 1: the estimator design space, evaluated head to head.
//!
//! The paper's Table 1 organizes estimation algorithms by feedback type
//! (implicit vs. explicit) and whether similar jobs can be identified:
//! successive approximation, last-instance identification, reinforcement
//! learning, and regression modeling. The paper implements only the first
//! row; this experiment runs all four quadrants — plus the pass-through
//! baseline and the oracle bound — on the same trace and cluster.

use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "successive_gain",
        Op::AtLeast(0.12),
        "implicit + similarity (Algorithm 1) delivers a clear utilization gain",
        true,
    ),
    Expectation::new(
        "last_instance_gain",
        Op::AtLeast(0.12),
        "explicit + similarity matches Algorithm 1's gain",
        true,
    ),
    Expectation::new(
        "similarity_beats_global",
        Op::Holds,
        "both similarity quadrants beat both global-policy quadrants",
        true,
    ),
    Expectation::new(
        "oracle_is_bound",
        Op::Holds,
        "no estimator exceeds the oracle's utilization",
        true,
    ),
    Expectation::new(
        "explicit_fails_less",
        Op::Holds,
        "explicit feedback cuts blind-probing failures vs. implicit",
        true,
    ),
];

/// Run the Table 1 estimator matrix.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
    let mut r = Report::new();

    r.header("Table 1: estimation algorithms by feedback type and similarity");
    out!(r, "cluster 512x32MB + 512x24MB, FCFS, saturating load\n");

    let rows: Vec<(&str, &str, EstimatorSpec)> = vec![
        (
            "baseline",
            "baseline (no estimation)",
            EstimatorSpec::PassThrough,
        ),
        (
            "successive",
            "implicit + similarity    ",
            EstimatorSpec::paper_successive(),
        ),
        (
            "last_instance",
            "explicit + similarity    ",
            EstimatorSpec::LastInstance(LastInstanceConfig::default()),
        ),
        (
            "reinforcement",
            "implicit, no similarity  ",
            EstimatorSpec::Reinforcement(ReinforcementConfig::default()),
        ),
        (
            "regression",
            "explicit, no similarity  ",
            EstimatorSpec::Regression(RegressionConfig::default()),
        ),
        ("oracle", "oracle (upper bound)     ", EstimatorSpec::Oracle),
    ];

    out!(
        r,
        "{:<28} {:<26} {:>7} {:>9} {:>8} {:>9}",
        "quadrant",
        "algorithm",
        "util",
        "slowdown",
        "fail%",
        "lowered%"
    );
    let mut baseline = None;
    let mut utils = Vec::new();
    let mut fails = Vec::new();
    for (key, quadrant, spec_row) in rows {
        let mut cfg = SimConfig::default();
        if spec_row.wants_explicit_feedback() {
            cfg.feedback = FeedbackMode::Explicit;
        }
        let result = Simulation::new(cfg, cluster.clone(), spec_row).run(&scaled);
        let util = result.utilization();
        if spec_row == EstimatorSpec::PassThrough {
            baseline = Some(util);
        }
        let delta = baseline
            .map(|b| format!("{:+.0}%", (util / b - 1.0) * 100.0))
            .unwrap_or_default();
        out!(
            r,
            "{:<28} {:<26} {:>7.3} {:>9.2} {:>7.3}% {:>8.1}%   {delta}",
            quadrant,
            result.estimator,
            util,
            result.mean_slowdown(),
            result.failed_execution_fraction() * 100.0,
            result.lowered_job_fraction() * 100.0,
        );
        r.metric(&format!("{key}_util"), util);
        r.metric(
            &format!("{key}_fail_fraction"),
            result.failed_execution_fraction(),
        );
        r.metric(
            &format!("{key}_lowered_fraction"),
            result.lowered_job_fraction(),
        );
        utils.push((key, util));
        fails.push((key, result.failed_execution_fraction()));
    }

    out!(
        r,
        "\nReading guide: explicit feedback avoids blind probing (fail% ~ 0)\n\
         and similarity-based methods adapt per group, so the explicit +\n\
         similarity quadrant approaches the oracle bound."
    );

    let util_of = |key: &str| {
        utils
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, u)| *u)
            .unwrap_or(0.0)
    };
    let fail_of = |key: &str| {
        fails
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    };
    let base = util_of("baseline").max(1e-9);
    r.metric("successive_gain", util_of("successive") / base - 1.0);
    r.metric("last_instance_gain", util_of("last_instance") / base - 1.0);
    r.metric("oracle_gain", util_of("oracle") / base - 1.0);
    let sim_floor = util_of("successive").min(util_of("last_instance"));
    let global_ceil = util_of("reinforcement").max(util_of("regression"));
    r.flag("similarity_beats_global", sim_floor > global_ceil);
    let oracle = util_of("oracle");
    r.flag(
        "oracle_is_bound",
        utils.iter().all(|(_, u)| *u <= oracle * 1.001),
    );
    r.flag(
        "explicit_fails_less",
        fail_of("last_instance") < fail_of("successive"),
    );
    r.finish()
}
