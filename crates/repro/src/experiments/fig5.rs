//! Figure 5: cluster utilization with and without resource estimation.
//!
//! Cluster: 512 nodes of 32 MB plus 512 of 24 MB; FCFS; implicit feedback;
//! Algorithm 1 with α = 2, β = 0. The paper reports a 58% improvement in
//! utilization at the saturation points (where the linear growth of
//! utilization against offered load stops).

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "saturation_gain",
        Op::AtLeast(0.15),
        "estimation lifts utilization at saturation (paper: +58%; ours +24-38% by trace scale)",
        true,
    ),
    Expectation::new(
        "low_load_ratio",
        Op::Within {
            target: 1.0,
            rel_tol: 0.05,
        },
        "at low load the curves coincide: jobs find their requested resources anyway",
        true,
    ),
    Expectation::new(
        "linear_region_grows",
        Op::Holds,
        "utilization grows with offered load before saturation",
        true,
    ),
];

/// Run the Figure 5 sweep.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let mut r = Report::new();

    r.header("Figure 5: utilization vs. offered load (512x32MB + 512x24MB)");
    out!(
        r,
        "trace: {} jobs, FCFS, implicit feedback, alpha=2 beta=0\n",
        trace.len()
    );

    let sweep = SweepConfig::default()
        .with_loads(vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.5]);
    let base = run_load_sweep(&trace, &cluster, EstimatorSpec::PassThrough, &sweep);
    let est = run_load_sweep(&trace, &cluster, EstimatorSpec::paper_successive(), &sweep);

    let pool_busy = |result: &SimResult, mem_mb: u64| {
        result
            .pool_stats
            .iter()
            .find(|p| p.mem_kb == mem_mb * 1024)
            .map(|p| p.mean_busy_fraction)
            .unwrap_or(0.0)
    };
    out!(
        r,
        "{:>6} {:>13} {:>13} {:>7} {:>12} {:>12}",
        "load",
        "util (base)",
        "util (est.)",
        "ratio",
        "24MB (base)",
        "24MB (est.)"
    );
    for (b, e) in base.iter().zip(&est) {
        let ub = b.result.utilization();
        let ue = e.result.utilization();
        out!(
            r,
            "{:>6.2} {:>13.3} {:>13.3} {:>7.2} {:>12.3} {:>12.3}",
            b.offered_load,
            ub,
            ue,
            if ub > 0.0 { ue / ub } else { 1.0 },
            pool_busy(&b.result, 24),
            pool_busy(&e.result, 24),
        );
    }
    out!(
        r,
        "(the 24MB columns expose the mechanism: estimation puts the small\n\
         pool to work instead of leaving it idle behind inflated requests)"
    );

    if let (Some(b0), Some(e0)) = (base.first(), est.first()) {
        let ub = b0.result.utilization();
        r.metric(
            "low_load_ratio",
            if ub > 0.0 {
                e0.result.utilization() / ub
            } else {
                1.0
            },
        );
    }
    let base_utils: Vec<f64> = base.iter().map(|p| p.result.utilization()).collect();
    let est_utils: Vec<f64> = est.iter().map(|p| p.result.utilization()).collect();
    let grows = est_utils
        .iter()
        .zip(est_utils.iter().skip(1))
        .take(3)
        .all(|(a, b)| b > a);
    r.flag("linear_region_grows", grows);

    r.header("saturation comparison vs. paper");
    let sat_base = saturation_utilization(&base_utils);
    let sat_est = saturation_utilization(&est_utils);
    r.metric("saturation_util_base", sat_base);
    r.metric("saturation_util_est", sat_est);
    r.metric("saturation_gain", sat_est / sat_base - 1.0);
    out!(
        r,
        "saturation utilization without estimation: {sat_base:.3}"
    );
    out!(r, "saturation utilization with estimation:    {sat_est:.3}");
    out!(
        r,
        "improvement:                                {:+.0}%   (paper: +58%)",
        (sat_est / sat_base - 1.0) * 100.0
    );
    r.finish()
}
