//! Figure 3: distribution of jobs according to similarity-group size.
//!
//! The paper identifies similar jobs by (user ID, application number,
//! requested memory), yielding 9,885 disjoint groups over 122,055 jobs;
//! groups of >= 10 jobs are 19.4% of the sets but hold 83% of the jobs.

use resmatch_workload::analysis::{group_size_distribution, trace_stats};

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "groups",
        Op::Within {
            target: 9_885.0,
            rel_tol: 0.1,
        },
        "122,055 jobs fall into 9,885 similarity groups",
        false,
    ),
    Expectation::new(
        "mean_group_size",
        Op::Within {
            target: 12.3,
            rel_tol: 0.15,
        },
        "mean similarity-group size is 12.3 jobs",
        false,
    ),
    Expectation::new(
        "big_group_job_share",
        Op::AtLeast(0.7),
        "groups of >= 10 jobs hold 83% of all jobs",
        true,
    ),
    Expectation::new(
        "big_group_set_share",
        Op::AtMost(0.35),
        "groups of >= 10 jobs are a minority (19.4%) of the sets",
        true,
    ),
];

/// Run the Figure 3 analysis.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let stats = trace_stats(&trace);
    let mut r = Report::new();

    r.header("Figure 3: jobs by similarity-group size");
    out!(
        r,
        "trace: {} jobs, {} groups (paper: 122,055 jobs, 9,885 groups)\n",
        stats.jobs,
        stats.groups
    );

    let dist = group_size_distribution(&trace);
    // Log-spaced size buckets for readability, mirroring the figure's
    // log-scaled axis.
    let edges = [1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1_000];
    out!(
        r,
        "{:<16} {:>8} {:>14}",
        "group size",
        "groups",
        "job fraction"
    );
    for w in edges.windows(2) {
        let &[lo, hi] = w else { continue };
        let groups: usize = dist
            .iter()
            .filter(|b| b.size >= lo && b.size < hi)
            .map(|b| b.groups)
            .sum();
        let jobs: f64 = dist
            .iter()
            .filter(|b| b.size >= lo && b.size < hi)
            .map(|b| b.job_fraction)
            .sum();
        let bar = "#".repeat((jobs * 150.0).round() as usize);
        out!(
            r,
            "[{lo:>4}, {hi:>4})    {groups:>8} {:>13.2}%  {bar}",
            jobs * 100.0
        );
    }
    let giant: f64 = dist
        .iter()
        .filter(|b| b.size >= 1_000)
        .map(|b| b.job_fraction)
        .sum();
    out!(
        r,
        "{:<16} {:>8} {:>13.2}%",
        ">= 1000",
        dist.iter()
            .filter(|b| b.size >= 1_000)
            .map(|b| b.groups)
            .sum::<usize>(),
        giant * 100.0
    );

    r.header("headline statistics vs. paper");
    let big_sets = dist
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.groups)
        .sum::<usize>();
    let big_jobs: f64 = dist
        .iter()
        .filter(|b| b.size >= 10)
        .map(|b| b.job_fraction)
        .sum();
    let set_share = big_sets as f64 / stats.groups.max(1) as f64;
    r.metric("groups", stats.groups as f64);
    r.metric("mean_group_size", stats.mean_group_size);
    r.metric("big_group_set_share", set_share);
    r.metric("big_group_job_share", big_jobs);
    out!(
        r,
        "groups with >= 10 jobs:  {:>6.1}% of groups  (paper: 19.4%)",
        set_share * 100.0
    );
    out!(
        r,
        "jobs in such groups:     {:>6.1}% of jobs    (paper: 83%)",
        big_jobs * 100.0
    );
    out!(
        r,
        "mean group size:         {:>6.1}            (paper: 12.3)",
        stats.mean_group_size
    );
    r.finish()
}
