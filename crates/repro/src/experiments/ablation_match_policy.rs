//! Ablation: resource-matching policy.
//!
//! The paper's §1.1 scenario is a matching-order story: J1 gets placed on
//! the big machine M1 "because the user requests a memory size larger than
//! that of M2", and J2 blocks behind it. Best-fit placement (smallest
//! sufficient capacity first) avoids squatting; worst-fit maximizes it.
//! This ablation quantifies the policy choice with and without estimation.

use resmatch_cluster::builder::paper_cluster;
use resmatch_cluster::MatchPolicy;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "worst_policy_ratio",
        Op::AtLeast(1.1),
        "estimation's gain holds across first/best/worst-fit matching policies",
        true,
    ),
    Expectation::new(
        "best_fit_beats_worst_fit",
        Op::Holds,
        "best-fit placement beats worst-fit for the baseline (avoids big-node squatting)",
        true,
    ),
];

/// Run the match-policy ablation.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
    let mut r = Report::new();

    r.header("ablation: match policy x estimation (512x32MB + 512x24MB)");
    out!(
        r,
        "{:<12} {:>12} {:>12} {:>10} {:>10}",
        "policy",
        "util (base)",
        "util (est.)",
        "ratio",
        "est fail%"
    );
    let mut worst_ratio = f64::INFINITY;
    let mut best_fit_base = 0.0f64;
    let mut worst_fit_base = 0.0f64;
    for (name, policy) in [
        ("best-fit", MatchPolicy::BestFit),
        ("first-fit", MatchPolicy::FirstFit),
        ("worst-fit", MatchPolicy::WorstFit),
    ] {
        let cfg = SimConfig::default().with_match_policy(policy);
        let base = Simulation::new(cfg, cluster.clone(), EstimatorSpec::PassThrough).run(&scaled);
        let est =
            Simulation::new(cfg, cluster.clone(), EstimatorSpec::paper_successive()).run(&scaled);
        let ratio = est.utilization() / base.utilization().max(1e-9);
        worst_ratio = worst_ratio.min(ratio);
        match policy {
            MatchPolicy::BestFit => best_fit_base = base.utilization(),
            MatchPolicy::WorstFit => worst_fit_base = base.utilization(),
            MatchPolicy::FirstFit => {}
        }
        out!(
            r,
            "{:<12} {:>12.3} {:>12.3} {:>10.2} {:>9.3}%",
            name,
            base.utilization(),
            est.utilization(),
            ratio,
            est.failed_execution_fraction() * 100.0,
        );
    }
    out!(
        r,
        "\nWorst-fit parks small estimates on 32 MB nodes, recreating the\n\
         squatting the paper's scenario describes; best-fit preserves the\n\
         large-memory pool for the jobs that genuinely need it."
    );
    r.metric(
        "worst_policy_ratio",
        if worst_ratio.is_finite() {
            worst_ratio
        } else {
            0.0
        },
    );
    r.metric("best_fit_base_util", best_fit_base);
    r.metric("worst_fit_base_util", worst_fit_base);
    r.flag("best_fit_beats_worst_fit", best_fit_base > worst_fit_base);
    r.finish()
}
