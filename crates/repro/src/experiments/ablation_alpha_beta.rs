//! Ablation: the estimator parameters α and β (§2.3's trade-off discussion).
//!
//! Large α reaches small machines in fewer steps but overshoots more (the
//! paper's 32→3.2 MB example); small α is conservative and can stall above
//! usable pools (the α = 1.2 example). β > 0 lets a group refine after a
//! failure instead of freezing. The paper picks α = 2, β = 0 as the best
//! trade-off; this ablation measures why.

use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_core::similarity::SimilarityPolicy;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "alpha_1_2_gain",
        Op::AtMost(0.02),
        "alpha=1.2 is too conservative: 32/1.2 rounds back to 32 MB, zero gain (§2.3)",
        true,
    ),
    Expectation::new(
        "alpha_2_gain",
        Op::AtLeast(0.03),
        "the paper's alpha=2 reaches the 24 MB rung and delivers a gain alpha=1.2 cannot",
        true,
    ),
    Expectation::new(
        "beta_high_costs_failures",
        Op::Holds,
        "beta near 1 multiplies retry failures vs. beta=0 (the paper's predicted trade-off)",
        true,
    ),
    Expectation::new(
        "paper_policy_gain",
        Op::AtLeast(0.03),
        "the paper's (user, app, request) similarity key keeps the full alpha=2 gain",
        true,
    ),
];

/// Run the α/β/similarity-policy ablation.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
    let mut r = Report::new();

    let baseline = Simulation::new(
        SimConfig::default(),
        cluster.clone(),
        EstimatorSpec::PassThrough,
    )
    .run(&scaled);
    let base_util = baseline.utilization();

    r.header("ablation: alpha (beta = 0)");
    out!(
        r,
        "{:>8} {:>8} {:>10} {:>9} {:>10}",
        "alpha",
        "util",
        "vs. base",
        "fail%",
        "lowered%"
    );
    for alpha in [1.2, 1.5, 2.0, 4.0, 10.0] {
        let spec_a = EstimatorSpec::Successive(SuccessiveConfig {
            alpha,
            beta: 0.0,
            policy: SimilarityPolicy::UserAppRequest,
        });
        let result = Simulation::new(SimConfig::default(), cluster.clone(), spec_a).run(&scaled);
        let gain = result.utilization() / base_util - 1.0;
        if (alpha - 1.2).abs() < 1e-9 {
            r.metric("alpha_1_2_gain", gain);
        }
        if (alpha - 2.0).abs() < 1e-9 {
            r.metric("alpha_2_gain", gain);
        }
        out!(
            r,
            "{:>8.1} {:>8.3} {:>9.0}% {:>8.3}% {:>9.1}%",
            alpha,
            result.utilization(),
            gain * 100.0,
            result.failed_execution_fraction() * 100.0,
            result.lowered_job_fraction() * 100.0,
        );
    }

    r.header("ablation: beta (alpha = 2)");
    out!(
        r,
        "{:>8} {:>8} {:>10} {:>9} {:>10}",
        "beta",
        "util",
        "vs. base",
        "fail%",
        "lowered%"
    );
    let mut beta_zero_fail = 0.0f64;
    let mut beta_high_fail = 0.0f64;
    for beta in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let spec_b = EstimatorSpec::Successive(SuccessiveConfig {
            alpha: 2.0,
            beta,
            policy: SimilarityPolicy::UserAppRequest,
        });
        let result = Simulation::new(SimConfig::default(), cluster.clone(), spec_b).run(&scaled);
        if beta == 0.0 {
            beta_zero_fail = result.failed_execution_fraction();
        }
        if (beta - 0.9).abs() < 1e-9 {
            beta_high_fail = result.failed_execution_fraction();
        }
        out!(
            r,
            "{:>8.2} {:>8.3} {:>9.0}% {:>8.3}% {:>9.1}%",
            beta,
            result.utilization(),
            (result.utilization() / base_util - 1.0) * 100.0,
            result.failed_execution_fraction() * 100.0,
            result.lowered_job_fraction() * 100.0,
        );
    }
    r.metric("beta_0_fail_fraction", beta_zero_fail);
    r.metric("beta_0_9_fail_fraction", beta_high_fail);
    r.flag("beta_high_costs_failures", beta_high_fail > beta_zero_fail);

    r.header("ablation: similarity policy (alpha = 2, beta = 0)");
    out!(
        r,
        "{:<22} {:>8} {:>10} {:>9} {:>10}",
        "policy",
        "util",
        "vs. base",
        "fail%",
        "lowered%"
    );
    for (name, policy) in [
        ("user+app+request", SimilarityPolicy::UserAppRequest),
        ("user+app", SimilarityPolicy::UserApp),
        ("user", SimilarityPolicy::User),
        ("app+request", SimilarityPolicy::AppRequest),
    ] {
        let spec_p = EstimatorSpec::Successive(SuccessiveConfig {
            alpha: 2.0,
            beta: 0.0,
            policy,
        });
        let result = Simulation::new(SimConfig::default(), cluster.clone(), spec_p).run(&scaled);
        let gain = result.utilization() / base_util - 1.0;
        if policy == SimilarityPolicy::UserAppRequest {
            r.metric("paper_policy_gain", gain);
            r.metric(
                "paper_policy_fail_fraction",
                result.failed_execution_fraction(),
            );
        }
        if policy == SimilarityPolicy::User {
            r.metric(
                "user_only_fail_fraction",
                result.failed_execution_fraction(),
            );
        }
        out!(
            r,
            "{:<22} {:>8.3} {:>9.0}% {:>8.3}% {:>9.1}%",
            name,
            result.utilization(),
            gain * 100.0,
            result.failed_execution_fraction() * 100.0,
            result.lowered_job_fraction() * 100.0,
        );
    }
    r.finish()
}
