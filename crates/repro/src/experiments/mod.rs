//! The experiment library: one module per paper artifact.
//!
//! Each module exposes `run(&RunSpec) -> ExperimentOutput` plus the
//! `EXPECTATIONS` that gate it; [`crate::manifest`] registers them all.
//! The `crates/bench` binaries are thin wrappers printing these reports.

pub mod ablation_alpha_beta;
pub mod ablation_churn;
pub mod ablation_false_positives;
pub mod ablation_match_policy;
pub mod ablation_scheduler;
pub mod calibration;
pub mod conservativeness;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod futurework;
pub mod matchmaking;
pub mod robustness;
pub mod table1;
