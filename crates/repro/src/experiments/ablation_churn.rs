//! Ablation: dynamic cluster membership.
//!
//! The paper motivates estimation with grid settings where "machines can
//! dynamically join and leave the systems at any time" (§1.1). This
//! ablation cycles half the 24 MB pool offline and online during the run
//! and measures whether estimation's benefit survives churn — it should:
//! the estimator keys on similarity groups, not on specific machines.

use resmatch_cluster::builder::paper_cluster;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;
use resmatch_workload::Time;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::{paper_trace, MB};

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "no_churn_ratio",
        Op::AtLeast(1.1),
        "estimation improves utilization with a static membership",
        true,
    ),
    Expectation::new(
        "worst_churn_ratio",
        Op::AtLeast(1.08),
        "the advantage survives machines cycling in and out (similarity groups are machine-agnostic)",
        true,
    ),
];

/// Cycle `nodes` nodes of the 24 MB pool out and back every `period` over
/// the trace duration.
fn churn_schedule(span_s: u64, period_s: u64, nodes: i64) -> Vec<ChurnEvent> {
    let mut events = Vec::new();
    let mut t = period_s;
    let mut online = true;
    while t < span_s {
        events.push(ChurnEvent {
            time: Time::from_secs(t),
            mem_kb: 24 * MB,
            delta: if online { -nodes } else { nodes },
        });
        online = !online;
        t += period_s;
    }
    events
}

/// Run the node-churn ablation.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.0);
    let span_s = scaled.span().as_secs();
    let mut r = Report::new();

    r.header("ablation: node churn (half the 24 MB pool cycles in/out)");
    out!(
        r,
        "{:<22} {:>12} {:>12} {:>10}",
        "churn period",
        "util (base)",
        "util (est.)",
        "ratio"
    );
    let periods: Vec<(&str, Option<u64>)> = vec![
        ("none", None),
        ("span / 4", Some(span_s / 4)),
        ("span / 16", Some(span_s / 16)),
        ("span / 64", Some(span_s / 64)),
    ];
    let mut worst_churn_ratio = f64::INFINITY;
    for (label, period) in periods {
        let schedule = period
            .map(|p| churn_schedule(span_s, p.max(1), 256))
            .unwrap_or_default();
        let base = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::PassThrough,
        )
        .with_churn(schedule.clone())
        .run(&scaled);
        let est = Simulation::new(
            SimConfig::default(),
            cluster.clone(),
            EstimatorSpec::paper_successive(),
        )
        .with_churn(schedule)
        .run(&scaled);
        let ratio = est.utilization() / base.utilization().max(1e-9);
        if period.is_none() {
            r.metric("no_churn_ratio", ratio);
        } else {
            worst_churn_ratio = worst_churn_ratio.min(ratio);
        }
        out!(
            r,
            "{:<22} {:>12.3} {:>12.3} {:>10.2}",
            label,
            base.utilization(),
            est.utilization(),
            ratio,
        );
    }
    r.metric(
        "worst_churn_ratio",
        if worst_churn_ratio.is_finite() {
            worst_churn_ratio
        } else {
            0.0
        },
    );
    out!(
        r,
        "\nEstimation's advantage persists under churn because similarity\n\
         groups are machine-agnostic; only the capacity ladder matters, and\n\
         it is unchanged by nodes leaving temporarily."
    );
    r.finish()
}
