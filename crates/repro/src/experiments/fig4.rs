//! Figure 4: possible gain from estimation vs. group similarity.
//!
//! For every similarity group with >= 10 jobs, the paper plots the ratio of
//! requested memory to the group's maximum used memory (the reclaimable
//! head-room) against the ratio of maximum to minimum used memory (the
//! similarity range). Most groups sit at small ranges — evidence the
//! similarity criterion works — and some combine high gain (an order of
//! magnitude) with tight similarity, the ideal estimation targets.

use resmatch_workload::analysis::gain_vs_range;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "tight_range_share",
        Op::AtLeast(0.5),
        "a large fraction of groups sits at similarity range <= 1.1",
        true,
    ),
    Expectation::new(
        "high_gain_tight_groups",
        Op::AtLeast(1.0),
        "groups with >= 10x gain at tight similarity exist (the ideal targets)",
        true,
    ),
];

/// Run the Figure 4 analysis.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let mut r = Report::new();

    r.header("Figure 4: gain vs. similarity range (groups with >= 10 jobs)");
    let points = gain_vs_range(&trace, 10);
    out!(r, "groups plotted: {}\n", points.len());

    // A textual 2-D density: ranges on rows, gains on columns.
    let range_edges = [1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0, f64::INFINITY];
    let gain_edges = [1.0, 1.5, 2.0, 4.0, 8.0, 16.0, 32.0, f64::INFINITY];
    out!(
        r,
        "{:<16} {}",
        "range \\ gain",
        gain_edges
            .windows(2)
            .filter_map(|w| w.last())
            .map(|hi| format!("{:>8}", format!("<{:.0}", hi.min(99.0))))
            .collect::<String>()
    );
    for rw in range_edges.windows(2) {
        let &[rlo, rhi] = rw else { continue };
        let row: String = gain_edges
            .windows(2)
            .filter_map(|gw| match gw {
                [glo, ghi] => Some((*glo, *ghi)),
                _ => None,
            })
            .map(|(glo, ghi)| {
                let n = points
                    .iter()
                    .filter(|p| p.range >= rlo && p.range < rhi && p.gain >= glo && p.gain < ghi)
                    .count();
                format!("{n:>8}")
            })
            .collect();
        let label = if rhi.is_infinite() {
            format!(">={rlo:.2}")
        } else {
            format!("[{rlo:.2},{rhi:.2})")
        };
        out!(r, "{label:<16} {row}");
    }

    r.header("headline statistics vs. paper");
    let tight = points.iter().filter(|p| p.range <= 1.1).count();
    let high_gain_tight = points
        .iter()
        .filter(|p| p.gain >= 10.0 && p.range <= 1.25)
        .count();
    let tight_share = tight as f64 / points.len().max(1) as f64;
    r.metric("groups_plotted", points.len() as f64);
    r.metric("tight_range_share", tight_share);
    r.metric("high_gain_tight_groups", high_gain_tight as f64);
    out!(
        r,
        "groups at range <= 1.1:        {:>6.1}%  (paper: 'a large fraction')",
        tight_share * 100.0
    );
    out!(
        r,
        "gain >= 10x with range <= 1.25: {high_gain_tight} groups  \
         (paper: such groups exist and are the best targets)"
    );
    r.finish()
}
