//! Figure 8: utilization ratio across cluster heterogeneity.
//!
//! 512 nodes keep the CM-5's 32 MB; the other 512 sweep 1..=32 MB. The
//! paper finds: improvement only when the second pool falls in roughly the
//! 16–28 MB band; no improvement below ~15 MB or at the homogeneous 32 MB
//! extreme; and, within the band, a linear fit (R² = 0.991) between the
//! node count of jobs that benefit from estimation and the utilization
//! improvement.

use resmatch_sim::prelude::*;
use resmatch_stats::regression::SimpleLinearRegression;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "low_band_mean_ratio",
        Op::Within {
            target: 1.0,
            rel_tol: 0.05,
        },
        "no improvement when the second pool is below ~15 MB (alpha=2 cannot reach it)",
        true,
    ),
    Expectation::new(
        "band_mean_ratio",
        Op::AtLeast(1.08),
        "a clear improvement band exists for second pools of 16-28 MB",
        true,
    ),
    Expectation::new(
        "homogeneous_ratio",
        Op::Within {
            target: 1.0,
            rel_tol: 0.05,
        },
        "the homogeneous 32 MB extreme shows no improvement",
        true,
    ),
    Expectation::new(
        "node_count_fit_r2",
        Op::AtLeast(0.25),
        "benefiting-node count correlates with the gain (paper R² = 0.991; strong at small \
         scale, weakening as the trace grows under the current engine)",
        false,
    ),
];

/// Run the Figure 8 cluster-heterogeneity sweep.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let mut r = Report::new();

    r.header("Figure 8: utilization(est.) / utilization(no est.) vs. second pool");
    out!(
        r,
        "trace: {} jobs; saturating load 1.2; alpha=2 beta=0\n",
        trace.len()
    );

    let pools: Vec<u64> = (1..=32).collect();
    let points = run_cluster_sweep(
        &trace,
        &pools,
        EstimatorSpec::paper_successive(),
        SimConfig::default(),
        1.2,
    );

    out!(
        r,
        "{:>10} {:>10} {:>10} {:>8} {:>18}",
        "pool (MB)",
        "util w/o",
        "util w/",
        "ratio",
        "benefiting nodes"
    );
    for p in &points {
        let bar = "#".repeat(((p.utilization_ratio() - 0.95).max(0.0) * 40.0) as usize);
        out!(
            r,
            "{:>10} {:>10.3} {:>10.3} {:>8.2} {:>18}  {bar}",
            p.second_pool_mb,
            p.baseline.utilization(),
            p.estimated.utilization(),
            p.utilization_ratio(),
            p.estimated.benefiting_node_count(),
        );
    }

    r.header("shape checks vs. paper");
    let ratio_at = |mb: u64| {
        points
            .iter()
            .find(|p| p.second_pool_mb == mb)
            .map(|p| p.utilization_ratio())
            .unwrap_or(1.0)
    };
    let band_mean = (16..=28).map(ratio_at).sum::<f64>() / 13.0;
    let low_mean = (1..=15).map(ratio_at).sum::<f64>() / 15.0;
    out!(
        r,
        "mean ratio, 16-28 MB band: {band_mean:.2}  (paper: the improvement region)"
    );
    out!(
        r,
        "mean ratio, 1-15 MB:       {low_mean:.2}  (paper: ~1, no improvement)"
    );
    out!(
        r,
        "ratio at 32 MB:            {:.2}  (paper: 1, homogeneous)",
        ratio_at(32)
    );
    r.metric("band_mean_ratio", band_mean);
    r.metric("low_band_mean_ratio", low_mean);
    r.metric("homogeneous_ratio", ratio_at(32));

    // The paper's linear fit: benefiting node count vs. improvement in the
    // 16-28 MB range.
    let band: Vec<&ClusterSweepPoint> = points
        .iter()
        .filter(|p| (16..=28).contains(&p.second_pool_mb))
        .collect();
    let xs: Vec<f64> = band
        .iter()
        .map(|p| p.estimated.benefiting_node_count() as f64)
        .collect();
    let ys: Vec<f64> = band.iter().map(|p| p.utilization_ratio()).collect();
    match SimpleLinearRegression::fit(&xs, &ys) {
        Some(fit) => {
            r.metric("node_count_fit_r2", fit.r_squared);
            out!(
                r,
                "benefiting-nodes vs. improvement linear fit R^2: {:.3}  (paper: 0.991)",
                fit.r_squared
            );
        }
        None => out!(r, "benefiting-nodes fit: degenerate inputs"),
    }
    r.finish()
}
