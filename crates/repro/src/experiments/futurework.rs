//! The paper's §4 research roadmap, implemented and measured.
//!
//! Three future-work items the paper names — online identification of
//! similarity groups, formal initialization of the learning parameters, and
//! robust line search for heterogeneous groups — run here against the
//! published Algorithm 1 on the same trace and cluster.

use resmatch_cluster::builder::paper_cluster;
use resmatch_core::prelude::*;
use resmatch_sim::prelude::*;
use resmatch_workload::load::scale_to_load;

use crate::expect::{Expectation, Op};
use crate::out;
use crate::report::{ExperimentOutput, Report};
use crate::runner::RunSpec;
use crate::trace::paper_trace;

/// Claims gated on this experiment.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation::new(
        "adaptive_vs_published",
        Op::AtLeast(0.9),
        "online similarity identification reaches Algorithm 1's utilization without a key",
        true,
    ),
    Expectation::new(
        "quantile_fail_fraction",
        Op::AtMost(0.0),
        "the quantile-window extension achieves its gain with zero failed executions",
        true,
    ),
    Expectation::new(
        "robust_gain",
        Op::AtLeast(0.12),
        "robust bisection (§2.3) matches published Algorithm 1 on this workload",
        true,
    ),
];

/// Run the §4 future-work estimator comparison.
pub fn run(spec: &RunSpec) -> ExperimentOutput {
    let trace = paper_trace(spec.jobs, spec.seed);
    let cluster = paper_cluster(24);
    let scaled = scale_to_load(&trace, cluster.total_nodes(), 1.2);
    let mut r = Report::new();

    r.header("§4 future work: extensions vs. published Algorithm 1");
    out!(r, "cluster 512x32MB + 512x24MB, FCFS, saturating load\n");

    let rows: Vec<(&str, &str, EstimatorSpec, bool)> = vec![
        (
            "baseline",
            "baseline (no estimation)",
            EstimatorSpec::PassThrough,
            false,
        ),
        (
            "published",
            "Algorithm 1 (published)",
            EstimatorSpec::paper_successive(),
            false,
        ),
        (
            "robust",
            "robust bisection (2.3)",
            EstimatorSpec::Robust(RobustConfig::default()),
            false,
        ),
        (
            "adaptive",
            "online similarity (4)",
            EstimatorSpec::Adaptive(AdaptiveConfig::default()),
            false,
        ),
        (
            "warm_start",
            "warm-start prior (4)",
            EstimatorSpec::WarmStart(WarmStartConfig::default()),
            true, // the prior trains from explicit feedback
        ),
        (
            "quantile",
            "quantile window (ext.)",
            EstimatorSpec::Quantile(QuantileConfig::default()),
            true,
        ),
        (
            "oracle",
            "oracle (upper bound)",
            EstimatorSpec::Oracle,
            false,
        ),
    ];

    out!(
        r,
        "{:<26} {:>8} {:>10} {:>9} {:>10} {:>10}",
        "estimator",
        "util",
        "slowdown",
        "fail%",
        "lowered%",
        "wait(s)"
    );
    let mut utils: Vec<(&str, f64)> = Vec::new();
    for (key, label, spec_row, explicit) in rows {
        let cfg = SimConfig::default().with_feedback(if explicit {
            FeedbackMode::Explicit
        } else {
            FeedbackMode::Implicit
        });
        let result = Simulation::new(cfg, cluster.clone(), spec_row).run(&scaled);
        out!(
            r,
            "{:<26} {:>8.3} {:>10.2} {:>8.3}% {:>9.1}% {:>10.0}",
            label,
            result.utilization(),
            result.mean_slowdown(),
            result.failed_execution_fraction() * 100.0,
            result.lowered_job_fraction() * 100.0,
            result.mean_wait_s(),
        );
        r.metric(&format!("{key}_util"), result.utilization());
        if key == "quantile" {
            r.metric("quantile_fail_fraction", result.failed_execution_fraction());
        }
        utils.push((key, result.utilization()));
    }
    let util_of = |key: &str| {
        utils
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, u)| *u)
            .unwrap_or(0.0)
    };
    let base = util_of("baseline").max(1e-9);
    r.metric(
        "adaptive_vs_published",
        util_of("adaptive") / util_of("published").max(1e-9),
    );
    r.metric("robust_gain", util_of("robust") / base - 1.0);
    r.metric("published_gain", util_of("published") / base - 1.0);
    r.finish()
}
