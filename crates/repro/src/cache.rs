//! Per-experiment result caching.
//!
//! A cache entry is keyed by everything that determines an experiment's
//! output: the manifest entry (id), the trace configuration (jobs, seed),
//! and a fingerprint of the runner executable itself — experiments are
//! deterministic functions of (code, config), and the executable stands
//! in for "code", so any rebuild (an estimator change, a sim change)
//! invalidates every entry automatically. Within one build, `check` after
//! `run`, or a re-`render`, replays from cache instead of re-simulating;
//! `--fresh` bypasses reads entirely.
//!
//! Entries live under `target/repro-cache/` as a self-describing text
//! format; metric values round-trip exactly via `f64::to_bits` hex.

use std::fs;
use std::path::{Path, PathBuf};

use crate::report::{ExperimentOutput, Metrics};

/// FNV-1a over a byte string; the same hash family the sim goldens pin.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the currently running executable (length + mtime).
///
/// `None` (e.g. the exe path is unavailable) disables caching rather than
/// risking a stale read: a cache that survives a code change could mask
/// exactly the regressions `check` exists to catch.
fn exe_fingerprint() -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let meta = fs::metadata(exe).ok()?;
    let mtime = meta
        .modified()
        .ok()?
        .duration_since(std::time::UNIX_EPOCH)
        .ok()?;
    let mut key = Vec::new();
    key.extend_from_slice(&meta.len().to_le_bytes());
    key.extend_from_slice(&mtime.as_nanos().to_le_bytes());
    Some(fnv1a(&key))
}

/// The on-disk cache, rooted under a workspace's `target/` directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
    exe_fp: Option<u64>,
}

impl Cache {
    /// Cache under `<workspace root>/target/repro-cache`.
    pub fn new(workspace_root: &Path) -> Self {
        Cache {
            dir: workspace_root.join("target").join("repro-cache"),
            exe_fp: exe_fingerprint(),
        }
    }

    /// Entry path for a given key, or `None` when caching is disabled.
    fn entry_path(&self, id: &str, jobs: usize, seed: u64) -> Option<PathBuf> {
        let fp = self.exe_fp?;
        let key = format!("{id}|{jobs}|{seed}|{fp:016x}");
        Some(
            self.dir
                .join(format!("{id}-{:016x}.txt", fnv1a(key.as_bytes()))),
        )
    }

    /// Load a cached output, if an entry for exactly this (experiment,
    /// trace config, executable) exists and parses.
    pub fn load(&self, id: &str, jobs: usize, seed: u64) -> Option<ExperimentOutput> {
        let path = self.entry_path(id, jobs, seed)?;
        parse_entry(&fs::read_to_string(path).ok()?)
    }

    /// Store an output. Best-effort: a failed write only costs a rerun.
    pub fn store(&self, id: &str, jobs: usize, seed: u64, output: &ExperimentOutput) {
        let Some(path) = self.entry_path(id, jobs, seed) else {
            return;
        };
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let _ = fs::write(path, serialize_entry(id, jobs, seed, output));
    }
}

/// Render an entry in the cache's text format.
fn serialize_entry(id: &str, jobs: usize, seed: u64, output: &ExperimentOutput) -> String {
    let mut s = String::new();
    s.push_str("resmatch-repro cache v1\n");
    s.push_str(&format!("id {id}\njobs {jobs}\nseed {seed}\n"));
    for (name, value) in output.metrics.iter() {
        s.push_str(&format!("metric {name} {:016x}\n", value.to_bits()));
    }
    s.push_str(&format!("text {}\n", output.text.len()));
    s.push_str(&output.text);
    s
}

/// Parse an entry; `None` on any malformation (treated as a cache miss).
fn parse_entry(s: &str) -> Option<ExperimentOutput> {
    let rest = s.strip_prefix("resmatch-repro cache v1\n")?;
    let mut metrics = Metrics::new();
    let mut cursor = rest;
    loop {
        let (line, tail) = cursor.split_once('\n')?;
        if let Some(m) = line.strip_prefix("metric ") {
            let (name, hex) = m.rsplit_once(' ')?;
            let bits = u64::from_str_radix(hex, 16).ok()?;
            metrics.set(name, f64::from_bits(bits));
        } else if let Some(len) = line.strip_prefix("text ") {
            let len: usize = len.parse().ok()?;
            if tail.len() != len {
                return None;
            }
            return Some(ExperimentOutput {
                text: tail.to_string(),
                metrics,
            });
        } else if !line.starts_with("id ")
            && !line.starts_with("jobs ")
            && !line.starts_with("seed ")
        {
            return None;
        }
        cursor = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip_exactly() {
        let mut m = Metrics::new();
        m.set("a", 0.1 + 0.2); // not exactly representable in decimal
        m.set("b", -0.0);
        let out = ExperimentOutput {
            text: "line one\nline two\n".to_string(),
            metrics: m,
        };
        let parsed =
            parse_entry(&serialize_entry("x", 10, 42, &out)).expect("well-formed entry parses");
        assert_eq!(parsed, out);
        assert_eq!(
            parsed.metrics.get("a").map(f64::to_bits),
            Some((0.1f64 + 0.2).to_bits())
        );
    }

    #[test]
    fn truncated_entries_are_misses() {
        let out = ExperimentOutput {
            text: "abc".to_string(),
            metrics: Metrics::new(),
        };
        let full = serialize_entry("x", 1, 2, &out);
        assert!(parse_entry(&full[..full.len() - 1]).is_none());
        assert!(parse_entry("garbage").is_none());
    }
}
