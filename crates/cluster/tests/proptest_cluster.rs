//! Property-based tests for the cluster substrate: allocation conservation
//! and ladder-rounding correctness under arbitrary operation sequences.

use proptest::prelude::*;
use resmatch_cluster::{Allocation, CapacityLadder, Cluster, ClusterBuilder, Demand, MatchPolicy};

fn arb_policy() -> impl Strategy<Value = MatchPolicy> {
    prop_oneof![
        Just(MatchPolicy::FirstFit),
        Just(MatchPolicy::BestFit),
        Just(MatchPolicy::WorstFit),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Alloc { count: u32, mem_kb: u64 },
    ReleaseOldest,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..40, 1u64..40_000).prop_map(|(count, mem_kb)| Op::Alloc { count, mem_kb }),
            Just(Op::ReleaseOldest),
        ],
        1..120,
    )
}

fn build_cluster() -> Cluster {
    ClusterBuilder::new()
        .pool(32, 32 * 1024)
        .pool(32, 24 * 1024)
        .pool(16, 8 * 1024)
        .build()
}

proptest! {
    #[test]
    fn allocation_conserves_nodes(ops in arb_ops(), policy in arb_policy()) {
        let mut cluster = build_cluster();
        let total = cluster.total_nodes();
        let mut held: Vec<Allocation> = Vec::new();
        let mut held_nodes = 0u32;
        for (token, op) in ops.into_iter().enumerate() {
            match op {
                Op::Alloc { count, mem_kb } => {
                    let demand = Demand::memory(mem_kb);
                    let eligible_free = cluster.free_nodes_satisfying(&demand);
                    match cluster.try_allocate(count, &demand, policy, token as u64) {
                        Some(alloc) => {
                            prop_assert!(eligible_free >= count, "granted without capacity");
                            prop_assert_eq!(alloc.nodes().len() as u32, count);
                            // Every granted node satisfies the demand.
                            for &n in alloc.nodes() {
                                prop_assert!(cluster.node_capacity(n).satisfies(&demand));
                            }
                            held_nodes += count;
                            held.push(alloc);
                        }
                        None => {
                            prop_assert!(eligible_free < count, "refused despite capacity");
                        }
                    }
                }
                Op::ReleaseOldest => {
                    if !held.is_empty() {
                        let alloc = held.remove(0);
                        held_nodes -= alloc.nodes().len() as u32;
                        cluster.release(alloc);
                    }
                }
            }
            prop_assert_eq!(cluster.free_nodes() + held_nodes, total);
            prop_assert_eq!(cluster.busy_nodes(), held_nodes);
        }
        // Drain and verify full recovery.
        for alloc in held {
            cluster.release(alloc);
        }
        prop_assert_eq!(cluster.free_nodes(), total);
    }

    #[test]
    fn no_node_double_allocated(ops in arb_ops(), policy in arb_policy()) {
        let mut cluster = build_cluster();
        let mut held: Vec<Allocation> = Vec::new();
        let mut busy = std::collections::HashSet::new();
        for (token, op) in ops.into_iter().enumerate() {
            match op {
                Op::Alloc { count, mem_kb } => {
                    if let Some(alloc) =
                        cluster.try_allocate(count, &Demand::memory(mem_kb), policy, token as u64)
                    {
                        for &n in alloc.nodes() {
                            prop_assert!(busy.insert(n), "node {} granted twice", n);
                        }
                        held.push(alloc);
                    }
                }
                Op::ReleaseOldest => {
                    if !held.is_empty() {
                        let alloc = held.remove(0);
                        for n in alloc.nodes() {
                            busy.remove(n);
                        }
                        cluster.release(alloc);
                    }
                }
            }
        }
    }

    #[test]
    fn round_up_matches_naive(caps in prop::collection::vec(1u64..100_000, 1..20), x in 0u64..120_000) {
        let ladder = CapacityLadder::new(caps.clone());
        let naive = caps.iter().copied().filter(|&c| c >= x).min();
        prop_assert_eq!(ladder.round_up(x), naive);
    }

    #[test]
    fn round_down_matches_naive(caps in prop::collection::vec(1u64..100_000, 1..20), x in 0u64..120_000) {
        let ladder = CapacityLadder::new(caps.clone());
        let naive = caps.iter().copied().filter(|&c| c <= x).max();
        prop_assert_eq!(ladder.round_down(x), naive);
    }

    #[test]
    fn best_fit_never_uses_larger_pool_than_needed(
        count in 1u32..16,
        mem_kb in 1u64..8_193,
    ) {
        // Demand fits entirely in the 8 MB pool (16 nodes): best-fit must
        // grant only 8 MB nodes while they suffice.
        let mut cluster = build_cluster();
        let alloc = cluster
            .try_allocate(count, &Demand::memory(mem_kb), MatchPolicy::BestFit, 1)
            .expect("capacity available");
        for &n in alloc.nodes() {
            prop_assert_eq!(cluster.node_capacity(n).mem_kb, 8 * 1024);
        }
        cluster.release(alloc);
    }
}
