//! Cluster substrate for the `resmatch` workspace.
//!
//! Models a space-shared heterogeneous cluster of the kind the paper
//! simulates: pools of nodes that differ in resource capacities (memory
//! size, disk space, installed software packages). Jobs are matched to sets
//! of nodes whose capacities cover the job's (possibly estimator-reduced)
//! demand.
//!
//! The [`ladder::CapacityLadder`] is the domain of Algorithm 1's `⌈·⌉`
//! rounding step: "the estimated resource capacity for the job is rounded to
//! the lowest resource capacity within the cluster, greater than Eᵢ".
//!
//! # Quick example
//!
//! ```
//! use resmatch_cluster::{ClusterBuilder, Demand, MatchPolicy};
//!
//! // The paper's Figure 5 cluster: 512 nodes of 32 MB and 512 of 24 MB.
//! let mut cluster = ClusterBuilder::new()
//!     .pool(512, 32 * 1024)
//!     .pool(512, 24 * 1024)
//!     .build();
//!
//! let demand = Demand::memory(28 * 1024);
//! let alloc = cluster
//!     .try_allocate(4, &demand, MatchPolicy::BestFit, 1)
//!     .expect("the 32 MB pool satisfies 28 MB");
//! assert_eq!(alloc.nodes().len(), 4);
//! cluster.release(alloc);
//! assert_eq!(cluster.free_nodes(), 1024);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cluster;
pub mod ladder;
pub mod matchmaking;
pub mod resources;

pub use builder::ClusterBuilder;
pub use cluster::{Allocation, AllocationSpare, Cluster, MatchPolicy, NodeId};
pub use ladder::CapacityLadder;
pub use matchmaking::{MatchAll, PoolMatcher};
pub use resources::{Capacity, Demand};
