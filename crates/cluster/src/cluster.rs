//! The cluster proper: node pools, allocation, and match policies.
//!
//! Nodes with identical capacities form *pools*; allocation pops free nodes
//! from eligible pools in a policy-determined order. Pool-level bookkeeping
//! keeps `try_allocate` O(#pools) — a cluster has thousands of nodes but a
//! handful of distinct capacities — which matters because the simulator
//! retries the queue head on every completion event.
//!
//! Three hot-path caches keep the per-event cost flat over a full trace:
//!
//! - a `MemIndex`: cumulative free/online node counts indexed by the
//!   memory-capacity ladder, maintained incrementally on every
//!   allocate/release/churn, so the memory-only candidate counts the
//!   simulator asks for on each (re)admission are an O(log #rungs) lookup
//!   instead of a pool scan with full `satisfies` checks;
//! - the pool visitation order for each [`MatchPolicy`], precomputed at
//!   construction, so `try_allocate` never allocates or sorts;
//! - per-pool grant counts inside each [`Allocation`], so
//!   weakest-node/package/eligibility queries about a running job cost
//!   O(pools spanned) instead of O(nodes granted).

use serde::{Deserialize, Serialize};

use crate::ladder::CapacityLadder;
use crate::matchmaking::PoolMatcher;
use crate::resources::{Capacity, Demand};

/// Index of a node within its cluster.
pub type NodeId = u32;

/// How eligible pools are ordered when a job can run on more than one kind
/// of node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchPolicy {
    /// Pools in construction order.
    FirstFit,
    /// Smallest sufficient memory first — preserves large-memory nodes for
    /// jobs that need them, the natural choice for the paper's scenario
    /// (§1.1: J1 should not squat on M1 when M2 suffices).
    BestFit,
    /// Largest memory first.
    WorstFit,
}

/// Occupant sentinel for nodes that have left the cluster.
const OFFLINE_TOKEN: u64 = u64::MAX;
/// Occupant sentinel for a free node. Storing bare `u64`s instead of
/// `Option<u64>` halves the occupant table's footprint and the per-node
/// traffic in `try_allocate`/`release`; the top two token values are
/// reserved for the sentinels and rejected at allocation time.
const FREE_TOKEN: u64 = u64::MAX - 1;

#[derive(Debug, Clone)]
struct Pool {
    capacity: Capacity,
    /// Free node ids, used as a stack.
    free: Vec<NodeId>,
    /// Nodes currently out of the cluster (dynamic leave).
    offline: Vec<NodeId>,
    total: u32,
}

/// A granted set of nodes. Must be handed back via [`Cluster::release`];
/// passing by value makes double-release a move error instead of a runtime
/// bug.
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    nodes: Vec<NodeId>,
    /// `(pool index, nodes granted from it)` in draw order — the compact
    /// shape pool-level queries (weakest node, common packages, eligible
    /// counts) read instead of walking every node.
    per_pool: Vec<(u16, u32)>,
    token: u64,
}

impl Allocation {
    /// The node ids granted.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `(pool index, nodes granted from it)` in draw order — lets callers
    /// maintain per-pool occupancy tallies incrementally instead of
    /// re-counting the cluster on every event.
    #[inline]
    pub fn per_pool(&self) -> &[(u16, u32)] {
        &self.per_pool
    }

    /// The caller-supplied token (typically the job id) recorded as the
    /// occupant of each node.
    #[inline]
    pub fn token(&self) -> u64 {
        self.token
    }
}

/// Cumulative candidate counts over the memory-capacity ladder.
///
/// `free_at_least[r]` (resp. `online_at_least[r]`) is the number of free
/// (resp. online, i.e. free-or-busy) nodes in pools whose memory is at
/// least `rungs[r]`. A memory-only demand's candidate count is then a
/// binary search plus one array read; the arrays are patched incrementally
/// — O(#rungs) per pool-level batch — wherever nodes change state.
#[derive(Debug, Clone)]
struct MemIndex {
    /// Distinct pool memory capacities, ascending.
    rungs: Vec<u64>,
    free_at_least: Vec<u32>,
    online_at_least: Vec<u32>,
}

impl MemIndex {
    fn add_free(&mut self, rung: usize, delta: i64) {
        for slot in &mut self.free_at_least[..=rung] {
            *slot = (*slot as i64 + delta) as u32;
        }
    }

    fn add_online(&mut self, rung: usize, delta: i64) {
        for slot in &mut self.online_at_least[..=rung] {
            *slot = (*slot as i64 + delta) as u32;
        }
    }

    fn at_least(arr: &[u32], rungs: &[u64], mem_kb: u64) -> u32 {
        let r = rungs.partition_point(|&m| m < mem_kb);
        if r == rungs.len() {
            0
        } else {
            arr[r]
        }
    }

    fn free_at_least(&self, mem_kb: u64) -> u32 {
        Self::at_least(&self.free_at_least, &self.rungs, mem_kb)
    }

    fn online_at_least(&self, mem_kb: u64) -> u32 {
        Self::at_least(&self.online_at_least, &self.rungs, mem_kb)
    }
}

/// True when `demand` constrains memory only, so `Capacity::satisfies`
/// degenerates to a memory threshold and the [`MemIndex`] answers exactly.
#[inline]
fn mem_only(demand: &Demand) -> bool {
    demand.disk_kb == 0 && demand.packages == 0
}

/// Bit `i` of a pool-index bitset as handed out by
/// [`PoolMatcher::eligible_pools`]; words beyond the slice read as zero.
#[inline]
fn pool_bit(bits: &[u64], i: usize) -> bool {
    bits.get(i >> 6).is_some_and(|w| (w >> (i & 63)) & 1 != 0)
}

/// A retired allocation's buffers — `(node ids, per-pool segments)` —
/// parked for reuse by the next `try_allocate`.
type SpareBuffers = (Vec<NodeId>, Vec<(u16, u32)>);

/// A cluster's retired-allocation buffer pool, detached so it can hop
/// between cluster instances (sweeps clone a fresh cluster per point but
/// want the buffers warm from the first point on). Opaque: the only
/// useful things to do with one are [`Cluster::take_spare`] and
/// [`Cluster::install_spare`].
#[derive(Debug, Default)]
pub struct AllocationSpare(Vec<SpareBuffers>);

/// A space-shared heterogeneous cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    pools: Vec<Pool>,
    /// Pool index per node.
    node_pool: Vec<u16>,
    /// Occupant token per node; `FREE_TOKEN` = free, `OFFLINE_TOKEN` =
    /// departed.
    occupant: Vec<u64>,
    free_count: u32,
    /// Ladder rung index of each pool's memory capacity.
    pool_rung: Vec<u16>,
    /// Incremental candidate counts for memory-only demands.
    mem_index: MemIndex,
    /// Pool visitation order per match policy, fixed at construction.
    /// Stable-sorted with the same keys the old per-call sort used, so
    /// node selection is bit-identical.
    order_first: Vec<u16>,
    order_best: Vec<u16>,
    order_worst: Vec<u16>,
    /// Retired allocation buffers, reused by the next `try_allocate` so a
    /// steady-state simulation allocates no fresh vectors per execution.
    spare: Vec<SpareBuffers>,
    /// Candidate-pool scratch for `try_allocate_matched`, reused across
    /// calls for the same reason as `spare`.
    match_scratch: Vec<(u16, f64)>,
}

impl Cluster {
    /// Build from `(count, capacity)` pool specs. Prefer
    /// [`crate::builder::ClusterBuilder`].
    ///
    /// # Panics
    /// Panics when no nodes are specified or pool count exceeds `u16` pools.
    pub fn from_pools(specs: &[(u32, Capacity)]) -> Self {
        let total: u32 = specs.iter().map(|(n, _)| n).sum();
        assert!(total > 0, "a cluster needs at least one node");
        assert!(specs.len() <= u16::MAX as usize, "too many pools");
        let mut pools = Vec::with_capacity(specs.len());
        let mut node_pool = Vec::with_capacity(total as usize);
        let mut next_id: NodeId = 0;
        for (pi, &(count, capacity)) in specs.iter().enumerate() {
            // Free stack is popped from the back; pushing descending ids
            // hands nodes out in ascending order, which keeps tests and
            // traces readable.
            let free: Vec<NodeId> = (next_id..next_id + count).rev().collect();
            node_pool.extend(std::iter::repeat_n(pi as u16, count as usize));
            next_id += count;
            pools.push(Pool {
                capacity,
                free,
                offline: Vec::new(),
                total: count,
            });
        }
        let mut rungs: Vec<u64> = pools.iter().map(|p| p.capacity.mem_kb).collect();
        rungs.sort_unstable();
        rungs.dedup();
        let pool_rung: Vec<u16> = pools
            .iter()
            .map(|p| {
                rungs
                    .binary_search(&p.capacity.mem_kb)
                    .expect("invariant: rungs was built from these same pool capacities")
                    as u16
            })
            .collect();
        let mut free_at_least = vec![0u32; rungs.len()];
        for (pi, p) in pools.iter().enumerate() {
            for slot in &mut free_at_least[..=pool_rung[pi] as usize] {
                *slot += p.total;
            }
        }
        let mem_index = MemIndex {
            online_at_least: free_at_least.clone(),
            free_at_least,
            rungs,
        };
        let order_first: Vec<u16> = (0..pools.len() as u16).collect();
        let mut order_best = order_first.clone();
        order_best.sort_by_key(|&i| {
            let c = pools[i as usize].capacity;
            (c.mem_kb, c.disk_kb, c.packages.count_ones())
        });
        let mut order_worst = order_first.clone();
        order_worst.sort_by_key(|&i| {
            let c = pools[i as usize].capacity;
            std::cmp::Reverse((c.mem_kb, c.disk_kb, c.packages.count_ones()))
        });
        Cluster {
            pools,
            node_pool,
            occupant: vec![FREE_TOKEN; total as usize],
            free_count: total,
            pool_rung,
            mem_index,
            order_first,
            order_best,
            order_worst,
            spare: Vec::new(),
            match_scratch: Vec::new(),
        }
    }

    /// Total number of nodes.
    #[inline]
    pub fn total_nodes(&self) -> u32 {
        self.occupant.len() as u32
    }

    /// Currently free nodes.
    #[inline]
    pub fn free_nodes(&self) -> u32 {
        self.free_count
    }

    /// Currently busy nodes.
    #[inline]
    pub fn busy_nodes(&self) -> u32 {
        self.total_nodes() - self.free_count
    }

    /// Free nodes whose capacity satisfies `demand`. Memory-only demands
    /// (the simulator's case) are answered from the incremental
    /// `MemIndex`; anything constraining disk or packages falls back to
    /// the pool scan.
    #[inline]
    pub fn free_nodes_satisfying(&self, demand: &Demand) -> u32 {
        if mem_only(demand) {
            let fast = self.mem_index.free_at_least(demand.mem_kb);
            debug_assert_eq!(fast, self.free_nodes_satisfying_scan(demand));
            return fast;
        }
        self.free_nodes_satisfying_scan(demand)
    }

    fn free_nodes_satisfying_scan(&self, demand: &Demand) -> u32 {
        self.pools
            .iter()
            .filter(|p| p.capacity.satisfies(demand))
            .map(|p| p.free.len() as u32)
            .sum()
    }

    /// Currently *online* nodes (free or busy) whose capacity satisfies
    /// `demand` — the job's candidate-machine count, the quantity the
    /// paper's Figure 8 analysis counts for "benefiting" jobs.
    #[inline]
    pub fn nodes_satisfying(&self, demand: &Demand) -> u32 {
        if mem_only(demand) {
            let fast = self.mem_index.online_at_least(demand.mem_kb);
            debug_assert_eq!(fast, self.nodes_satisfying_scan(demand));
            return fast;
        }
        self.nodes_satisfying_scan(demand)
    }

    fn nodes_satisfying_scan(&self, demand: &Demand) -> u32 {
        self.pools
            .iter()
            .filter(|p| p.capacity.satisfies(demand))
            .map(|p| p.total - p.offline.len() as u32)
            .sum()
    }

    /// Nodes currently offline (dynamically departed).
    pub fn offline_nodes(&self) -> u32 {
        self.pools.iter().map(|p| p.offline.len() as u32).sum()
    }

    /// Dynamically remove up to `count` *free* nodes of memory capacity
    /// `mem_kb` from the cluster (the paper's "machines can dynamically
    /// join and leave the systems at any time"). Busy nodes are never
    /// revoked — leaves take effect as nodes drain. Returns how many nodes
    /// actually left.
    pub fn take_offline(&mut self, mem_kb: u64, count: u32) -> u32 {
        let mut taken = 0;
        for pi in 0..self.pools.len() {
            if self.pools[pi].capacity.mem_kb != mem_kb {
                continue;
            }
            let mut here: u32 = 0;
            while taken < count {
                let pool = &mut self.pools[pi];
                match pool.free.pop() {
                    Some(id) => {
                        self.occupant[id as usize] = OFFLINE_TOKEN;
                        pool.offline.push(id);
                        taken += 1;
                        here += 1;
                    }
                    None => break,
                }
            }
            if here > 0 {
                let rung = self.pool_rung[pi] as usize;
                self.mem_index.add_free(rung, -(here as i64));
                self.mem_index.add_online(rung, -(here as i64));
            }
            if taken == count {
                break;
            }
        }
        self.free_count -= taken;
        taken
    }

    /// Bring up to `count` previously departed nodes of memory capacity
    /// `mem_kb` back online. Returns how many rejoined.
    pub fn bring_online(&mut self, mem_kb: u64, count: u32) -> u32 {
        let mut restored = 0;
        for pi in 0..self.pools.len() {
            if self.pools[pi].capacity.mem_kb != mem_kb {
                continue;
            }
            let mut here: u32 = 0;
            while restored < count {
                let pool = &mut self.pools[pi];
                match pool.offline.pop() {
                    Some(id) => {
                        debug_assert_eq!(self.occupant[id as usize], OFFLINE_TOKEN);
                        self.occupant[id as usize] = FREE_TOKEN;
                        pool.free.push(id);
                        restored += 1;
                        here += 1;
                    }
                    None => break,
                }
            }
            if here > 0 {
                let rung = self.pool_rung[pi] as usize;
                self.mem_index.add_free(rung, here as i64);
                self.mem_index.add_online(rung, here as i64);
            }
            if restored == count {
                break;
            }
        }
        self.free_count += restored;
        restored
    }

    /// Capacity of a node.
    ///
    /// # Panics
    /// Panics for out-of-range ids.
    pub fn node_capacity(&self, node: NodeId) -> Capacity {
        self.pools[self.node_pool[node as usize] as usize].capacity
    }

    /// The distinct memory capacities, as a ladder for Algorithm 1.
    pub fn memory_ladder(&self) -> CapacityLadder {
        CapacityLadder::new(self.pools.iter().map(|p| p.capacity.mem_kb).collect())
    }

    /// Try to allocate `count` nodes, each satisfying `demand`, recording
    /// `token` as their occupant. Returns `None` — allocating nothing — when
    /// fewer than `count` eligible nodes are free.
    pub fn try_allocate(
        &mut self,
        count: u32,
        demand: &Demand,
        policy: MatchPolicy,
        token: u64,
    ) -> Option<Allocation> {
        assert!(token < FREE_TOKEN, "tokens above u64::MAX - 2 are reserved");
        if count == 0 {
            return Some(Allocation {
                nodes: Vec::new(),
                per_pool: Vec::new(),
                token,
            });
        }
        if self.free_nodes_satisfying(demand) < count {
            return None;
        }
        // The pool visit orders are precomputed at construction (pools never
        // change capacity); ineligible pools are skipped in-line, which yields
        // the same sequence a filter-then-sort of eligible pools would.
        let (mut nodes, mut per_pool) = self.spare.pop().unwrap_or_default();
        nodes.reserve(count as usize);
        let mut remaining = count;
        for oi in 0..self.pools.len() {
            let pi = match policy {
                MatchPolicy::FirstFit => self.order_first[oi],
                MatchPolicy::BestFit => self.order_best[oi],
                MatchPolicy::WorstFit => self.order_worst[oi],
            } as usize;
            if !self.pools[pi].capacity.satisfies(demand) {
                continue;
            }
            let here = remaining.min(self.pools[pi].free.len() as u32);
            if here == 0 {
                continue;
            }
            self.take_block(pi, here, token, &mut nodes, &mut per_pool);
            remaining -= here;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "availability was pre-checked");
        self.free_count -= count;
        Some(Allocation {
            nodes,
            per_pool,
            token,
        })
    }

    /// Claim the top `here` nodes of pool `pi`'s free stack for `token`,
    /// appending them to an allocation under construction.
    ///
    /// Takes the entries as one block: reversing the slice reproduces the
    /// exact order a pop-per-node loop would have drawn them in, so node
    /// selection is bit-identical while the stack shrinks with a single
    /// truncate.
    fn take_block(
        &mut self,
        pi: usize,
        here: u32,
        token: u64,
        nodes: &mut Vec<NodeId>,
        per_pool: &mut Vec<(u16, u32)>,
    ) {
        let start = self.pools[pi].free.len() - here as usize;
        {
            let (pools, occupant) = (&self.pools, &mut self.occupant);
            // One reverse pass claims and collects each node; claim
            // order is unobservable (the ids are distinct), and the
            // collected order matches the pop-per-node draw.
            nodes.extend(pools[pi].free[start..].iter().rev().map(|&id| {
                debug_assert_eq!(occupant[id as usize], FREE_TOKEN);
                occupant[id as usize] = token;
                id
            }));
        }
        self.pools[pi].free.truncate(start);
        per_pool.push((pi as u16, here));
        self.mem_index
            .add_free(self.pool_rung[pi] as usize, -(here as i64));
    }

    /// [`Cluster::try_allocate`] with a [`PoolMatcher`] intersected into
    /// pool eligibility: a pool is a candidate only when its capacity
    /// satisfies `demand` *and* the matcher accepts it. When the matcher
    /// ranks, candidates are reordered by descending rank (stable, so ties
    /// keep `policy` order) before nodes are drawn; otherwise pure policy
    /// order is kept and — for a matcher accepting every pool — the result
    /// is bit-identical to the native path.
    ///
    /// The caller is expected to have [`PoolMatcher::prepare`]d the matcher
    /// for `demand`.
    pub fn try_allocate_matched(
        &mut self,
        count: u32,
        demand: &Demand,
        policy: MatchPolicy,
        token: u64,
        matcher: &mut dyn PoolMatcher,
    ) -> Option<Allocation> {
        assert!(token < FREE_TOKEN, "tokens above u64::MAX - 2 are reserved");
        if count == 0 {
            return Some(Allocation {
                nodes: Vec::new(),
                per_pool: Vec::new(),
                token,
            });
        }
        let order: &[u16] = match policy {
            MatchPolicy::FirstFit => &self.order_first,
            MatchPolicy::BestFit => &self.order_best,
            MatchPolicy::WorstFit => &self.order_worst,
        };
        // One pass gathers eligibility, availability, and (when wanted)
        // rank, so each pool's ads are evaluated at most once per attempt.
        let ranked = matcher.is_ranked();
        let mut candidates = std::mem::take(&mut self.match_scratch);
        candidates.clear();
        let mut available: u32 = 0;
        for &pio in order {
            let pi = pio as usize;
            let capacity = self.pools[pi].capacity;
            if !capacity.satisfies(demand) || !matcher.matches(pi, &capacity) {
                continue;
            }
            available += self.pools[pi].free.len() as u32;
            let rank = if ranked {
                matcher.rank(pi, &capacity)
            } else {
                0.0
            };
            candidates.push((pio, rank));
        }
        if available < count {
            self.match_scratch = candidates;
            return None;
        }
        if ranked {
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
        }
        let (mut nodes, mut per_pool) = self.spare.pop().unwrap_or_default();
        nodes.reserve(count as usize);
        let mut remaining = count;
        for &(pio, _) in &candidates {
            let pi = pio as usize;
            let here = remaining.min(self.pools[pi].free.len() as u32);
            if here == 0 {
                continue;
            }
            self.take_block(pi, here, token, &mut nodes, &mut per_pool);
            remaining -= here;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "availability was gathered above");
        self.free_count -= count;
        self.match_scratch = candidates;
        Some(Allocation {
            nodes,
            per_pool,
            token,
        })
    }

    /// Free nodes in pools that satisfy `demand` *and* are accepted by
    /// `matcher` — the matched counterpart of
    /// [`Cluster::free_nodes_satisfying`]. The caller is expected to have
    /// [`PoolMatcher::prepare`]d the matcher for `demand`.
    ///
    /// When the matcher exposes a precomputed eligibility bitset
    /// ([`PoolMatcher::eligible_pools`]) the walk tests bits locally —
    /// one virtual call per *count* instead of one per pool.
    pub fn free_nodes_satisfying_matched(
        &self,
        demand: &Demand,
        matcher: &mut dyn PoolMatcher,
    ) -> u32 {
        if let Some(bits) = matcher.eligible_pools() {
            return self
                .pools
                .iter()
                .enumerate()
                .filter(|(pi, p)| pool_bit(bits, *pi) && p.capacity.satisfies(demand))
                .map(|(_, p)| p.free.len() as u32)
                .sum();
        }
        self.pools
            .iter()
            .enumerate()
            .filter(|(pi, p)| p.capacity.satisfies(demand) && matcher.matches(*pi, &p.capacity))
            .map(|(_, p)| p.free.len() as u32)
            .sum()
    }

    /// Online (free or busy) nodes in pools that satisfy `demand` *and* are
    /// accepted by `matcher` — the matched counterpart of
    /// [`Cluster::nodes_satisfying`], used for admission feasibility. The
    /// caller is expected to have [`PoolMatcher::prepare`]d the matcher for
    /// `demand`.
    pub fn nodes_satisfying_matched(&self, demand: &Demand, matcher: &mut dyn PoolMatcher) -> u32 {
        if let Some(bits) = matcher.eligible_pools() {
            return self
                .pools
                .iter()
                .enumerate()
                .filter(|(pi, p)| pool_bit(bits, *pi) && p.capacity.satisfies(demand))
                .map(|(_, p)| p.total - p.offline.len() as u32)
                .sum();
        }
        self.pools
            .iter()
            .enumerate()
            .filter(|(pi, p)| p.capacity.satisfies(demand) && matcher.matches(*pi, &p.capacity))
            .map(|(_, p)| p.total - p.offline.len() as u32)
            .sum()
    }

    /// Return an allocation's nodes to their pools.
    ///
    /// # Panics
    /// Panics when a node's recorded occupant does not match the
    /// allocation's token — that is always a scheduler logic bug worth
    /// failing loudly on.
    pub fn release(&mut self, alloc: Allocation) {
        // `nodes` is partitioned by pool in `per_pool` draw order (see
        // `try_allocate`), so each segment rejoins its pool's free stack
        // with one `extend_from_slice` — same push order a per-node loop
        // produced, without a `node_pool` lookup per node.
        let mut offset = 0usize;
        for &(pi, n) in &alloc.per_pool {
            let seg = &alloc.nodes[offset..offset + n as usize];
            offset += n as usize;
            // Occupancy checks are folded branch-free and asserted once per
            // segment: the loud failure survives, without a potential panic
            // edge (and its formatting machinery) inside the per-node loop.
            let mut held = true;
            for &id in seg {
                let occupant = std::mem::replace(&mut self.occupant[id as usize], FREE_TOKEN);
                held &= occupant == alloc.token;
                debug_assert_eq!(self.node_pool[id as usize], pi);
            }
            assert!(
                held,
                "release of a node not held by token {} (pool {pi})",
                alloc.token
            );
            self.pools[pi as usize].free.extend_from_slice(seg);
            self.mem_index
                .add_free(self.pool_rung[pi as usize] as usize, n as i64);
        }
        debug_assert_eq!(offset, alloc.nodes.len());
        self.free_count += alloc.nodes.len() as u32;
        let Allocation {
            mut nodes,
            mut per_pool,
            ..
        } = alloc;
        nodes.clear();
        per_pool.clear();
        self.spare.push((nodes, per_pool));
    }

    /// Detach the retired-allocation buffer pool, e.g. into a sweep arena
    /// that outlives this cluster instance. The cluster keeps working — it
    /// just starts its recycling pool empty again.
    pub fn take_spare(&mut self) -> AllocationSpare {
        AllocationSpare(std::mem::take(&mut self.spare))
    }

    /// Install a buffer pool detached from another cluster (via
    /// [`Cluster::take_spare`]), replacing this cluster's own. Spare
    /// buffers are capacity-only — every vector in them is empty — so
    /// moving them between clusters cannot change any allocation outcome;
    /// it only spares `try_allocate` the warm-up allocations.
    pub fn install_spare(&mut self, spare: AllocationSpare) {
        debug_assert!(spare.0.iter().all(|(n, p)| n.is_empty() && p.is_empty()));
        self.spare = spare.0;
    }

    /// Smallest memory capacity among the nodes an allocation granted —
    /// the amount the job can actually consume everywhere. The simulator
    /// compares this against actual usage to decide failure.
    #[inline]
    pub fn allocation_min_mem(&self, alloc: &Allocation) -> u64 {
        alloc
            .per_pool
            .iter()
            .map(|&(pi, _)| self.pools[pi as usize].capacity.mem_kb)
            .min()
            .unwrap_or(0)
    }

    /// Smallest disk capacity among the nodes an allocation granted — the
    /// disk analogue of [`Cluster::allocation_min_mem`]. Empty allocations
    /// constrain nothing and report `u64::MAX`.
    #[inline]
    pub fn allocation_min_disk(&self, alloc: &Allocation) -> u64 {
        alloc
            .per_pool
            .iter()
            .map(|&(pi, _)| self.pools[pi as usize].capacity.disk_kb)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Capacity of every node in pool `idx` (construction order) — what a
    /// matchmaker reads to build the pool's capability ad.
    ///
    /// # Panics
    /// Panics for out-of-range pool indices.
    #[inline]
    pub fn pool_capacity(&self, idx: usize) -> Capacity {
        self.pools[idx].capacity
    }

    /// Per-pool occupancy snapshot: `(memory_kb, total, busy)` per pool, in
    /// construction order. Offline nodes count as neither free nor busy.
    pub fn pool_occupancy(&self) -> Vec<(u64, u32, u32)> {
        self.pools
            .iter()
            .map(|p| {
                let offline = p.offline.len() as u32;
                let busy = p.total - p.free.len() as u32 - offline;
                (p.capacity.mem_kb, p.total, busy)
            })
            .collect()
    }

    /// Packages installed on *every* node of an allocation (bitwise
    /// intersection) — what the job can actually rely on. Empty allocations
    /// report all packages.
    #[inline]
    pub fn allocation_packages(&self, alloc: &Allocation) -> u32 {
        alloc
            .per_pool
            .iter()
            .map(|&(pi, _)| self.pools[pi as usize].capacity.packages)
            .fold(u32::MAX, |acc, p| acc & p)
    }

    /// How many of an allocation's nodes satisfy `demand` — per-pool
    /// arithmetic, O(pools spanned) instead of O(nodes held).
    #[inline]
    pub fn allocation_nodes_satisfying(&self, alloc: &Allocation, demand: &Demand) -> u32 {
        alloc
            .per_pool
            .iter()
            .filter(|&&(pi, _)| self.pools[pi as usize].capacity.satisfies(demand))
            .map(|&(_, n)| n)
            .sum()
    }

    /// How many of an allocation's nodes satisfy `demand` *and* sit in a
    /// pool accepted by `matcher` — the matched counterpart of
    /// [`Cluster::allocation_nodes_satisfying`], used for backfill
    /// reservation arithmetic. The caller is expected to have
    /// [`PoolMatcher::prepare`]d the matcher for `demand`.
    #[inline]
    pub fn allocation_nodes_satisfying_matched(
        &self,
        alloc: &Allocation,
        demand: &Demand,
        matcher: &mut dyn PoolMatcher,
    ) -> u32 {
        if let Some(bits) = matcher.eligible_pools() {
            return alloc
                .per_pool
                .iter()
                .filter(|&&(pi, _)| {
                    pool_bit(bits, pi as usize)
                        && self.pools[pi as usize].capacity.satisfies(demand)
                })
                .map(|&(_, n)| n)
                .sum();
        }
        alloc
            .per_pool
            .iter()
            .filter(|&&(pi, _)| {
                let capacity = self.pools[pi as usize].capacity;
                capacity.satisfies(demand) && matcher.matches(pi as usize, &capacity)
            })
            .map(|&(_, n)| n)
            .sum()
    }

    /// Number of pools, in construction order (stable for a cluster's
    /// lifetime — churn toggles nodes offline, it never removes pools).
    #[inline]
    pub fn num_pools(&self) -> usize {
        self.pools.len()
    }

    /// Busy nodes in pool `idx` right now. Offline nodes are neither free
    /// nor busy. Allocation-free counterpart of [`Cluster::pool_occupancy`]
    /// for per-tick stats accumulation.
    #[inline]
    pub fn pool_busy_count(&self, idx: usize) -> u32 {
        let p = &self.pools[idx];
        p.total - p.free.len() as u32 - p.offline.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pool_cluster() -> Cluster {
        Cluster::from_pools(&[
            (4, Capacity::memory(32 * 1024)),
            (4, Capacity::memory(24 * 1024)),
        ])
    }

    #[test]
    fn construction_counts() {
        let c = two_pool_cluster();
        assert_eq!(c.total_nodes(), 8);
        assert_eq!(c.free_nodes(), 8);
        assert_eq!(c.busy_nodes(), 0);
        assert_eq!(c.node_capacity(0).mem_kb, 32 * 1024);
        assert_eq!(c.node_capacity(7).mem_kb, 24 * 1024);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(2, &Demand::memory(10 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        // Both pools satisfy 10 MB; best-fit picks the 24 MB pool (ids 4..8).
        assert!(a.nodes().iter().all(|&id| id >= 4));
        c.release(a);
    }

    #[test]
    fn worst_fit_prefers_largest() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(2, &Demand::memory(10 * 1024), MatchPolicy::WorstFit, 1)
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id < 4));
        c.release(a);
    }

    #[test]
    fn first_fit_takes_pool_order() {
        let mut c = Cluster::from_pools(&[
            (2, Capacity::memory(24 * 1024)),
            (2, Capacity::memory(32 * 1024)),
        ]);
        let a = c
            .try_allocate(3, &Demand::memory(10 * 1024), MatchPolicy::FirstFit, 1)
            .unwrap();
        // Exhausts the first pool (0, 1) then spills into the second.
        assert_eq!(a.nodes().len(), 3);
        assert!(a.nodes().contains(&0) && a.nodes().contains(&1));
    }

    #[test]
    fn allocation_spans_pools_when_needed() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(6, &Demand::memory(1024), MatchPolicy::BestFit, 9)
            .unwrap();
        assert_eq!(a.nodes().len(), 6);
        assert_eq!(c.free_nodes(), 2);
        c.release(a);
        assert_eq!(c.free_nodes(), 8);
    }

    #[test]
    fn demand_filters_pools() {
        let mut c = two_pool_cluster();
        // Only the 32 MB pool satisfies 28 MB: asking for 5 nodes must fail
        // even though 8 are free.
        assert!(c
            .try_allocate(5, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .is_none());
        // Failed allocation must not leak nodes.
        assert_eq!(c.free_nodes(), 8);
        let a = c
            .try_allocate(4, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id < 4));
    }

    #[test]
    fn zero_count_is_trivially_granted() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(0, &Demand::memory(u64::MAX), MatchPolicy::BestFit, 1)
            .unwrap();
        assert!(a.nodes().is_empty());
        assert_eq!(c.free_nodes(), 8);
        c.release(a);
    }

    #[test]
    fn free_counts_by_demand() {
        let mut c = two_pool_cluster();
        assert_eq!(c.free_nodes_satisfying(&Demand::memory(28 * 1024)), 4);
        assert_eq!(c.free_nodes_satisfying(&Demand::memory(1024)), 8);
        assert_eq!(c.nodes_satisfying(&Demand::memory(28 * 1024)), 4);
        let _a = c
            .try_allocate(2, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        assert_eq!(c.free_nodes_satisfying(&Demand::memory(28 * 1024)), 2);
        // Total candidates are unaffected by occupancy.
        assert_eq!(c.nodes_satisfying(&Demand::memory(28 * 1024)), 4);
    }

    #[test]
    #[should_panic(expected = "not held by token")]
    fn release_with_wrong_token_panics() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(1, &Demand::memory(1024), MatchPolicy::BestFit, 1)
            .unwrap();
        let forged = Allocation {
            nodes: a.nodes().to_vec(),
            per_pool: a.per_pool.clone(),
            token: 999,
        };
        c.release(forged);
    }

    #[test]
    fn allocation_min_mem_reports_weakest_node() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(6, &Demand::memory(1024), MatchPolicy::WorstFit, 1)
            .unwrap();
        // Worst-fit takes all four 32 MB nodes then two 24 MB nodes.
        assert_eq!(c.allocation_min_mem(&a), 24 * 1024);
        c.release(a);
    }

    #[test]
    fn memory_ladder_from_pools() {
        let c = two_pool_cluster();
        assert_eq!(c.memory_ladder().rungs(), &[24 * 1024, 32 * 1024]);
    }

    #[test]
    fn exhaustion_and_reuse() {
        let mut c = Cluster::from_pools(&[(2, Capacity::memory(1024))]);
        let a = c
            .try_allocate(2, &Demand::memory(512), MatchPolicy::FirstFit, 1)
            .unwrap();
        assert!(c
            .try_allocate(1, &Demand::memory(512), MatchPolicy::FirstFit, 2)
            .is_none());
        c.release(a);
        assert!(c
            .try_allocate(1, &Demand::memory(512), MatchPolicy::FirstFit, 2)
            .is_some());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = Cluster::from_pools(&[]);
    }

    use crate::matchmaking::MatchAll;

    /// Accepts only the listed pool indices; unranked.
    struct OnlyPools(Vec<usize>);

    impl PoolMatcher for OnlyPools {
        fn matches(&mut self, pool: usize, _capacity: &Capacity) -> bool {
            self.0.contains(&pool)
        }
    }

    /// Accepts everything, ranks small-memory pools highest.
    struct PreferSmallMem;

    impl PoolMatcher for PreferSmallMem {
        fn matches(&mut self, _pool: usize, _capacity: &Capacity) -> bool {
            true
        }

        fn rank(&mut self, _pool: usize, capacity: &Capacity) -> f64 {
            -(capacity.mem_kb as f64)
        }

        fn is_ranked(&self) -> bool {
            true
        }
    }

    #[test]
    fn matched_with_match_all_is_bit_identical_to_native() {
        // Same interleaved allocate/release sequence through both entry
        // points must grant the same node ids in the same order, under
        // every policy.
        for policy in [
            MatchPolicy::FirstFit,
            MatchPolicy::BestFit,
            MatchPolicy::WorstFit,
        ] {
            let mut native = two_pool_cluster();
            let mut matched = two_pool_cluster();
            let mut matcher = MatchAll;
            let mut held_native = Vec::new();
            let mut held_matched = Vec::new();
            for (i, (count, mem)) in [(3, 1024), (2, 28 * 1024), (4, 1024), (2, 25 * 1024)]
                .into_iter()
                .enumerate()
            {
                let demand = Demand::memory(mem);
                let a = native.try_allocate(count, &demand, policy, i as u64);
                let b =
                    matched.try_allocate_matched(count, &demand, policy, i as u64, &mut matcher);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.nodes(), b.nodes(), "{policy:?} step {i}");
                        assert_eq!(a.per_pool(), b.per_pool(), "{policy:?} step {i}");
                        held_native.push(a);
                        held_matched.push(b);
                    }
                    (None, None) => {}
                    (a, b) => panic!("{policy:?} step {i}: divergent outcomes {a:?} vs {b:?}"),
                }
                if i == 1 {
                    native.release(held_native.remove(0));
                    matched.release(held_matched.remove(0));
                }
            }
        }
    }

    #[test]
    fn matcher_restricts_eligible_pools() {
        let mut c = two_pool_cluster();
        let mut only_second = OnlyPools(vec![1]);
        // Pool 1 holds the 24 MB nodes (ids 4..8); pool 0 must never be
        // drawn even though its capacity satisfies the demand.
        let a = c
            .try_allocate_matched(
                3,
                &Demand::memory(1024),
                MatchPolicy::FirstFit,
                1,
                &mut only_second,
            )
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id >= 4));
        // Only one matched node remains free: a two-node ask must refuse
        // without leaking, even though pool 0 has four free nodes.
        assert!(c
            .try_allocate_matched(
                2,
                &Demand::memory(1024),
                MatchPolicy::FirstFit,
                2,
                &mut only_second
            )
            .is_none());
        assert_eq!(c.free_nodes(), 5);
        c.release(a);
    }

    #[test]
    fn rank_reorders_candidates_and_ties_keep_policy_order() {
        let mut c = two_pool_cluster();
        // WorstFit would prefer the 32 MB pool; the rank expression inverts
        // that preference.
        let mut matcher = PreferSmallMem;
        let a = c
            .try_allocate_matched(
                2,
                &Demand::memory(1024),
                MatchPolicy::WorstFit,
                1,
                &mut matcher,
            )
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id >= 4), "{:?}", a.nodes());
        c.release(a);
        // With a constant rank, the stable sort keeps the policy order.
        struct FlatRank;
        impl PoolMatcher for FlatRank {
            fn matches(&mut self, _p: usize, _c: &Capacity) -> bool {
                true
            }
            fn is_ranked(&self) -> bool {
                true
            }
        }
        let b = c
            .try_allocate_matched(
                2,
                &Demand::memory(1024),
                MatchPolicy::WorstFit,
                1,
                &mut FlatRank,
            )
            .unwrap();
        assert!(b.nodes().iter().all(|&id| id < 4), "{:?}", b.nodes());
        c.release(b);
    }

    #[test]
    fn matched_counts_intersect_matcher_and_capacity() {
        let mut c = two_pool_cluster();
        let mut only_first = OnlyPools(vec![0]);
        assert_eq!(
            c.free_nodes_satisfying_matched(&Demand::memory(1024), &mut only_first),
            4
        );
        assert_eq!(
            c.nodes_satisfying_matched(&Demand::memory(1024), &mut only_first),
            4
        );
        // Capacity still intersects: pool 0 is 32 MB, so a 28 MB demand
        // matched to pool 1 only has no candidates at all.
        let mut only_second = OnlyPools(vec![1]);
        assert_eq!(
            c.nodes_satisfying_matched(&Demand::memory(28 * 1024), &mut only_second),
            0
        );
        let a = c
            .try_allocate_matched(
                2,
                &Demand::memory(1024),
                MatchPolicy::FirstFit,
                1,
                &mut only_first,
            )
            .unwrap();
        assert_eq!(
            c.free_nodes_satisfying_matched(&Demand::memory(1024), &mut only_first),
            2
        );
        c.release(a);
    }

    #[test]
    fn allocation_min_disk_reports_weakest_node() {
        let mut c = Cluster::from_pools(&[
            (2, Capacity::new(32 * 1024, 100, 0)),
            (2, Capacity::new(32 * 1024, 50, 0)),
        ]);
        let a = c
            .try_allocate(3, &Demand::memory(1024), MatchPolicy::FirstFit, 1)
            .unwrap();
        assert_eq!(c.allocation_min_disk(&a), 50);
        c.release(a);
        let empty = c
            .try_allocate(0, &Demand::memory(1024), MatchPolicy::FirstFit, 1)
            .unwrap();
        assert_eq!(c.allocation_min_disk(&empty), u64::MAX);
    }

    #[test]
    fn churn_take_and_restore() {
        let mut c = two_pool_cluster();
        assert_eq!(c.take_offline(32 * 1024, 3), 3);
        assert_eq!(c.free_nodes(), 5);
        assert_eq!(c.offline_nodes(), 3);
        assert_eq!(c.nodes_satisfying(&Demand::memory(1024)), 5);
        // Only one 32 MB node remains online: a two-node 28 MB demand fails.
        assert!(c
            .try_allocate(2, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .is_none());
        assert_eq!(c.bring_online(32 * 1024, 2), 2);
        assert_eq!(c.free_nodes(), 7);
        assert!(c
            .try_allocate(2, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .is_some());
    }

    #[test]
    fn churn_never_revokes_busy_nodes() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(4, &Demand::memory(24 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        // All four 24 MB nodes are busy: nothing to take.
        assert_eq!(c.take_offline(24 * 1024, 4), 0);
        c.release(a);
        assert_eq!(c.take_offline(24 * 1024, 4), 4);
    }

    #[test]
    fn churn_caps_at_available() {
        let mut c = two_pool_cluster();
        assert_eq!(c.take_offline(24 * 1024, 100), 4);
        assert_eq!(c.bring_online(24 * 1024, 100), 4);
        // Unknown capacity: no-op.
        assert_eq!(c.take_offline(999, 1), 0);
        assert_eq!(c.bring_online(999, 1), 0);
    }
}
