//! The cluster proper: node pools, allocation, and match policies.
//!
//! Nodes with identical capacities form *pools*; allocation pops free nodes
//! from eligible pools in a policy-determined order. Pool-level bookkeeping
//! keeps `try_allocate` O(#pools) — a cluster has thousands of nodes but a
//! handful of distinct capacities — which matters because the simulator
//! retries the queue head on every completion event.

use serde::{Deserialize, Serialize};

use crate::ladder::CapacityLadder;
use crate::resources::{Capacity, Demand};

/// Index of a node within its cluster.
pub type NodeId = u32;

/// How eligible pools are ordered when a job can run on more than one kind
/// of node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchPolicy {
    /// Pools in construction order.
    FirstFit,
    /// Smallest sufficient memory first — preserves large-memory nodes for
    /// jobs that need them, the natural choice for the paper's scenario
    /// (§1.1: J1 should not squat on M1 when M2 suffices).
    BestFit,
    /// Largest memory first.
    WorstFit,
}

/// Occupant sentinel for nodes that have left the cluster.
const OFFLINE_TOKEN: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Pool {
    capacity: Capacity,
    /// Free node ids, used as a stack.
    free: Vec<NodeId>,
    /// Nodes currently out of the cluster (dynamic leave).
    offline: Vec<NodeId>,
    total: u32,
}

/// A granted set of nodes. Must be handed back via [`Cluster::release`];
/// passing by value makes double-release a move error instead of a runtime
/// bug.
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    nodes: Vec<NodeId>,
    token: u64,
}

impl Allocation {
    /// The node ids granted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The caller-supplied token (typically the job id) recorded as the
    /// occupant of each node.
    pub fn token(&self) -> u64 {
        self.token
    }
}

/// A space-shared heterogeneous cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    pools: Vec<Pool>,
    /// Pool index per node.
    node_pool: Vec<u16>,
    /// Occupant token per node; `None` = free.
    occupant: Vec<Option<u64>>,
    free_count: u32,
}

impl Cluster {
    /// Build from `(count, capacity)` pool specs. Prefer
    /// [`crate::builder::ClusterBuilder`].
    ///
    /// # Panics
    /// Panics when no nodes are specified or pool count exceeds `u16` pools.
    pub fn from_pools(specs: &[(u32, Capacity)]) -> Self {
        let total: u32 = specs.iter().map(|(n, _)| n).sum();
        assert!(total > 0, "a cluster needs at least one node");
        assert!(specs.len() <= u16::MAX as usize, "too many pools");
        let mut pools = Vec::with_capacity(specs.len());
        let mut node_pool = Vec::with_capacity(total as usize);
        let mut next_id: NodeId = 0;
        for (pi, &(count, capacity)) in specs.iter().enumerate() {
            // Free stack is popped from the back; pushing descending ids
            // hands nodes out in ascending order, which keeps tests and
            // traces readable.
            let free: Vec<NodeId> = (next_id..next_id + count).rev().collect();
            node_pool.extend(std::iter::repeat_n(pi as u16, count as usize));
            next_id += count;
            pools.push(Pool {
                capacity,
                free,
                offline: Vec::new(),
                total: count,
            });
        }
        Cluster {
            pools,
            node_pool,
            occupant: vec![None; total as usize],
            free_count: total,
        }
    }

    /// Total number of nodes.
    pub fn total_nodes(&self) -> u32 {
        self.occupant.len() as u32
    }

    /// Currently free nodes.
    pub fn free_nodes(&self) -> u32 {
        self.free_count
    }

    /// Currently busy nodes.
    pub fn busy_nodes(&self) -> u32 {
        self.total_nodes() - self.free_count
    }

    /// Free nodes whose capacity satisfies `demand`.
    pub fn free_nodes_satisfying(&self, demand: &Demand) -> u32 {
        self.pools
            .iter()
            .filter(|p| p.capacity.satisfies(demand))
            .map(|p| p.free.len() as u32)
            .sum()
    }

    /// Currently *online* nodes (free or busy) whose capacity satisfies
    /// `demand` — the job's candidate-machine count, the quantity the
    /// paper's Figure 8 analysis counts for "benefiting" jobs.
    pub fn nodes_satisfying(&self, demand: &Demand) -> u32 {
        self.pools
            .iter()
            .filter(|p| p.capacity.satisfies(demand))
            .map(|p| p.total - p.offline.len() as u32)
            .sum()
    }

    /// Nodes currently offline (dynamically departed).
    pub fn offline_nodes(&self) -> u32 {
        self.pools.iter().map(|p| p.offline.len() as u32).sum()
    }

    /// Dynamically remove up to `count` *free* nodes of memory capacity
    /// `mem_kb` from the cluster (the paper's "machines can dynamically
    /// join and leave the systems at any time"). Busy nodes are never
    /// revoked — leaves take effect as nodes drain. Returns how many nodes
    /// actually left.
    pub fn take_offline(&mut self, mem_kb: u64, count: u32) -> u32 {
        let mut taken = 0;
        for pool in self.pools.iter_mut().filter(|p| p.capacity.mem_kb == mem_kb) {
            while taken < count {
                match pool.free.pop() {
                    Some(id) => {
                        self.occupant[id as usize] = Some(OFFLINE_TOKEN);
                        pool.offline.push(id);
                        taken += 1;
                    }
                    None => break,
                }
            }
            if taken == count {
                break;
            }
        }
        self.free_count -= taken;
        taken
    }

    /// Bring up to `count` previously departed nodes of memory capacity
    /// `mem_kb` back online. Returns how many rejoined.
    pub fn bring_online(&mut self, mem_kb: u64, count: u32) -> u32 {
        let mut restored = 0;
        for pool in self.pools.iter_mut().filter(|p| p.capacity.mem_kb == mem_kb) {
            while restored < count {
                match pool.offline.pop() {
                    Some(id) => {
                        debug_assert_eq!(self.occupant[id as usize], Some(OFFLINE_TOKEN));
                        self.occupant[id as usize] = None;
                        pool.free.push(id);
                        restored += 1;
                    }
                    None => break,
                }
            }
            if restored == count {
                break;
            }
        }
        self.free_count += restored;
        restored
    }

    /// Capacity of a node.
    ///
    /// # Panics
    /// Panics for out-of-range ids.
    pub fn node_capacity(&self, node: NodeId) -> Capacity {
        self.pools[self.node_pool[node as usize] as usize].capacity
    }

    /// The distinct memory capacities, as a ladder for Algorithm 1.
    pub fn memory_ladder(&self) -> CapacityLadder {
        CapacityLadder::new(self.pools.iter().map(|p| p.capacity.mem_kb).collect())
    }

    /// Try to allocate `count` nodes, each satisfying `demand`, recording
    /// `token` as their occupant. Returns `None` — allocating nothing — when
    /// fewer than `count` eligible nodes are free.
    pub fn try_allocate(
        &mut self,
        count: u32,
        demand: &Demand,
        policy: MatchPolicy,
        token: u64,
    ) -> Option<Allocation> {
        if count == 0 {
            return Some(Allocation {
                nodes: Vec::new(),
                token,
            });
        }
        let mut eligible: Vec<usize> = (0..self.pools.len())
            .filter(|&i| self.pools[i].capacity.satisfies(demand))
            .collect();
        let available: u32 = eligible
            .iter()
            .map(|&i| self.pools[i].free.len() as u32)
            .sum();
        if available < count {
            return None;
        }
        match policy {
            MatchPolicy::FirstFit => {}
            MatchPolicy::BestFit => {
                eligible.sort_by_key(|&i| {
                    let c = self.pools[i].capacity;
                    (c.mem_kb, c.disk_kb, c.packages.count_ones())
                });
            }
            MatchPolicy::WorstFit => {
                eligible.sort_by_key(|&i| {
                    let c = self.pools[i].capacity;
                    std::cmp::Reverse((c.mem_kb, c.disk_kb, c.packages.count_ones()))
                });
            }
        }
        let mut nodes = Vec::with_capacity(count as usize);
        let mut remaining = count;
        for &pi in &eligible {
            let pool = &mut self.pools[pi];
            while remaining > 0 {
                match pool.free.pop() {
                    Some(id) => {
                        debug_assert!(self.occupant[id as usize].is_none());
                        self.occupant[id as usize] = Some(token);
                        nodes.push(id);
                        remaining -= 1;
                    }
                    None => break,
                }
            }
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0, "availability was pre-checked");
        self.free_count -= count;
        Some(Allocation { nodes, token })
    }

    /// Return an allocation's nodes to their pools.
    ///
    /// # Panics
    /// Panics when a node's recorded occupant does not match the
    /// allocation's token — that is always a scheduler logic bug worth
    /// failing loudly on.
    pub fn release(&mut self, alloc: Allocation) {
        for &id in &alloc.nodes {
            let occupant = self.occupant[id as usize].take();
            assert_eq!(
                occupant,
                Some(alloc.token),
                "release of node {id} not held by token {}",
                alloc.token
            );
            self.pools[self.node_pool[id as usize] as usize].free.push(id);
        }
        self.free_count += alloc.nodes.len() as u32;
    }

    /// Smallest memory capacity among the nodes an allocation granted —
    /// the amount the job can actually consume everywhere. The simulator
    /// compares this against actual usage to decide failure.
    pub fn allocation_min_mem(&self, alloc: &Allocation) -> u64 {
        alloc
            .nodes
            .iter()
            .map(|&id| self.node_capacity(id).mem_kb)
            .min()
            .unwrap_or(0)
    }

    /// Per-pool occupancy snapshot: `(memory_kb, total, busy)` per pool, in
    /// construction order. Offline nodes count as neither free nor busy.
    pub fn pool_occupancy(&self) -> Vec<(u64, u32, u32)> {
        self.pools
            .iter()
            .map(|p| {
                let offline = p.offline.len() as u32;
                let busy = p.total - p.free.len() as u32 - offline;
                (p.capacity.mem_kb, p.total, busy)
            })
            .collect()
    }

    /// Packages installed on *every* node of an allocation (bitwise
    /// intersection) — what the job can actually rely on. Empty allocations
    /// report all packages.
    pub fn allocation_packages(&self, alloc: &Allocation) -> u32 {
        alloc
            .nodes
            .iter()
            .map(|&id| self.node_capacity(id).packages)
            .fold(u32::MAX, |acc, p| acc & p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pool_cluster() -> Cluster {
        Cluster::from_pools(&[
            (4, Capacity::memory(32 * 1024)),
            (4, Capacity::memory(24 * 1024)),
        ])
    }

    #[test]
    fn construction_counts() {
        let c = two_pool_cluster();
        assert_eq!(c.total_nodes(), 8);
        assert_eq!(c.free_nodes(), 8);
        assert_eq!(c.busy_nodes(), 0);
        assert_eq!(c.node_capacity(0).mem_kb, 32 * 1024);
        assert_eq!(c.node_capacity(7).mem_kb, 24 * 1024);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(2, &Demand::memory(10 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        // Both pools satisfy 10 MB; best-fit picks the 24 MB pool (ids 4..8).
        assert!(a.nodes().iter().all(|&id| id >= 4));
        c.release(a);
    }

    #[test]
    fn worst_fit_prefers_largest() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(2, &Demand::memory(10 * 1024), MatchPolicy::WorstFit, 1)
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id < 4));
        c.release(a);
    }

    #[test]
    fn first_fit_takes_pool_order() {
        let mut c = Cluster::from_pools(&[
            (2, Capacity::memory(24 * 1024)),
            (2, Capacity::memory(32 * 1024)),
        ]);
        let a = c
            .try_allocate(3, &Demand::memory(10 * 1024), MatchPolicy::FirstFit, 1)
            .unwrap();
        // Exhausts the first pool (0, 1) then spills into the second.
        assert_eq!(a.nodes().len(), 3);
        assert!(a.nodes().contains(&0) && a.nodes().contains(&1));
    }

    #[test]
    fn allocation_spans_pools_when_needed() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(6, &Demand::memory(1024), MatchPolicy::BestFit, 9)
            .unwrap();
        assert_eq!(a.nodes().len(), 6);
        assert_eq!(c.free_nodes(), 2);
        c.release(a);
        assert_eq!(c.free_nodes(), 8);
    }

    #[test]
    fn demand_filters_pools() {
        let mut c = two_pool_cluster();
        // Only the 32 MB pool satisfies 28 MB: asking for 5 nodes must fail
        // even though 8 are free.
        assert!(c
            .try_allocate(5, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .is_none());
        // Failed allocation must not leak nodes.
        assert_eq!(c.free_nodes(), 8);
        let a = c
            .try_allocate(4, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        assert!(a.nodes().iter().all(|&id| id < 4));
    }

    #[test]
    fn zero_count_is_trivially_granted() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(0, &Demand::memory(u64::MAX), MatchPolicy::BestFit, 1)
            .unwrap();
        assert!(a.nodes().is_empty());
        assert_eq!(c.free_nodes(), 8);
        c.release(a);
    }

    #[test]
    fn free_counts_by_demand() {
        let mut c = two_pool_cluster();
        assert_eq!(c.free_nodes_satisfying(&Demand::memory(28 * 1024)), 4);
        assert_eq!(c.free_nodes_satisfying(&Demand::memory(1024)), 8);
        assert_eq!(c.nodes_satisfying(&Demand::memory(28 * 1024)), 4);
        let _a = c
            .try_allocate(2, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        assert_eq!(c.free_nodes_satisfying(&Demand::memory(28 * 1024)), 2);
        // Total candidates are unaffected by occupancy.
        assert_eq!(c.nodes_satisfying(&Demand::memory(28 * 1024)), 4);
    }

    #[test]
    #[should_panic(expected = "not held by token")]
    fn release_with_wrong_token_panics() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(1, &Demand::memory(1024), MatchPolicy::BestFit, 1)
            .unwrap();
        let forged = Allocation {
            nodes: a.nodes().to_vec(),
            token: 999,
        };
        c.release(forged);
    }

    #[test]
    fn allocation_min_mem_reports_weakest_node() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(6, &Demand::memory(1024), MatchPolicy::WorstFit, 1)
            .unwrap();
        // Worst-fit takes all four 32 MB nodes then two 24 MB nodes.
        assert_eq!(c.allocation_min_mem(&a), 24 * 1024);
        c.release(a);
    }

    #[test]
    fn memory_ladder_from_pools() {
        let c = two_pool_cluster();
        assert_eq!(c.memory_ladder().rungs(), &[24 * 1024, 32 * 1024]);
    }

    #[test]
    fn exhaustion_and_reuse() {
        let mut c = Cluster::from_pools(&[(2, Capacity::memory(1024))]);
        let a = c
            .try_allocate(2, &Demand::memory(512), MatchPolicy::FirstFit, 1)
            .unwrap();
        assert!(c
            .try_allocate(1, &Demand::memory(512), MatchPolicy::FirstFit, 2)
            .is_none());
        c.release(a);
        assert!(c
            .try_allocate(1, &Demand::memory(512), MatchPolicy::FirstFit, 2)
            .is_some());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = Cluster::from_pools(&[]);
    }

    #[test]
    fn churn_take_and_restore() {
        let mut c = two_pool_cluster();
        assert_eq!(c.take_offline(32 * 1024, 3), 3);
        assert_eq!(c.free_nodes(), 5);
        assert_eq!(c.offline_nodes(), 3);
        assert_eq!(c.nodes_satisfying(&Demand::memory(1024)), 5);
        // Only one 32 MB node remains online: a two-node 28 MB demand fails.
        assert!(c
            .try_allocate(2, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .is_none());
        assert_eq!(c.bring_online(32 * 1024, 2), 2);
        assert_eq!(c.free_nodes(), 7);
        assert!(c
            .try_allocate(2, &Demand::memory(28 * 1024), MatchPolicy::BestFit, 1)
            .is_some());
    }

    #[test]
    fn churn_never_revokes_busy_nodes() {
        let mut c = two_pool_cluster();
        let a = c
            .try_allocate(4, &Demand::memory(24 * 1024), MatchPolicy::BestFit, 1)
            .unwrap();
        // All four 24 MB nodes are busy: nothing to take.
        assert_eq!(c.take_offline(24 * 1024, 4), 0);
        c.release(a);
        assert_eq!(c.take_offline(24 * 1024, 4), 4);
    }

    #[test]
    fn churn_caps_at_available() {
        let mut c = two_pool_cluster();
        assert_eq!(c.take_offline(24 * 1024, 100), 4);
        assert_eq!(c.bring_online(24 * 1024, 100), 4);
        // Unknown capacity: no-op.
        assert_eq!(c.take_offline(999, 1), 0);
        assert_eq!(c.bring_online(999, 1), 0);
    }
}
