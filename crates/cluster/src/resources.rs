//! Node capacities and job demands.
//!
//! The paper's over-provisioning problem concerns resources "in a given
//! computing machine that can affect the completion of the job execution":
//! memory size, disk space, and prerequisite software packages. A
//! [`Capacity`] describes what a node offers; a [`Demand`] what a job needs.
//! Satisfaction is componentwise: scalars by `>=`, packages by set
//! inclusion.

use serde::{Deserialize, Serialize};

/// What one node offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Capacity {
    /// Physical memory, KB.
    pub mem_kb: u64,
    /// Scratch disk space, KB.
    pub disk_kb: u64,
    /// Bitmask of installed software packages.
    pub packages: u32,
}

impl Capacity {
    /// A memory-only capacity (unbounded disk, all packages) — the common
    /// case for the paper's experiments, which estimate memory alone.
    pub fn memory(mem_kb: u64) -> Self {
        Capacity {
            mem_kb,
            disk_kb: u64::MAX,
            packages: u32::MAX,
        }
    }

    /// Full constructor.
    pub fn new(mem_kb: u64, disk_kb: u64, packages: u32) -> Self {
        Capacity {
            mem_kb,
            disk_kb,
            packages,
        }
    }

    /// Does this node cover `demand`?
    pub fn satisfies(&self, demand: &Demand) -> bool {
        self.mem_kb >= demand.mem_kb
            && self.disk_kb >= demand.disk_kb
            && (demand.packages & !self.packages) == 0
    }
}

/// What a job needs from every node it runs on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Demand {
    /// Memory, KB per node.
    pub mem_kb: u64,
    /// Disk, KB per node.
    pub disk_kb: u64,
    /// Bitmask of required packages.
    pub packages: u32,
}

impl Demand {
    /// A memory-only demand.
    pub fn memory(mem_kb: u64) -> Self {
        Demand {
            mem_kb,
            ..Demand::default()
        }
    }

    /// Full constructor.
    pub fn new(mem_kb: u64, disk_kb: u64, packages: u32) -> Self {
        Demand {
            mem_kb,
            disk_kb,
            packages,
        }
    }

    /// Componentwise: is this demand no larger than `other`? (Scalar `<=`,
    /// package subset.) Used to assert that estimators only ever *shrink*
    /// demands.
    pub fn within(&self, other: &Demand) -> bool {
        self.mem_kb <= other.mem_kb
            && self.disk_kb <= other.disk_kb
            && (self.packages & !other.packages) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_capacity_satisfies_by_threshold() {
        let node = Capacity::memory(32 * 1024);
        assert!(node.satisfies(&Demand::memory(32 * 1024)));
        assert!(node.satisfies(&Demand::memory(1)));
        assert!(!node.satisfies(&Demand::memory(32 * 1024 + 1)));
        assert!(node.satisfies(&Demand::default()));
    }

    #[test]
    fn packages_checked_by_inclusion() {
        let node = Capacity::new(1024, 0, 0b0110);
        assert!(node.satisfies(&Demand::new(512, 0, 0b0100)));
        assert!(node.satisfies(&Demand::new(512, 0, 0b0110)));
        assert!(!node.satisfies(&Demand::new(512, 0, 0b0001)));
        assert!(!node.satisfies(&Demand::new(512, 0, 0b1110)));
    }

    #[test]
    fn disk_checked_as_scalar() {
        let node = Capacity::new(1024, 2048, u32::MAX);
        assert!(node.satisfies(&Demand::new(0, 2048, 0)));
        assert!(!node.satisfies(&Demand::new(0, 2049, 0)));
    }

    #[test]
    fn demand_within_is_a_partial_order() {
        let small = Demand::new(10, 5, 0b001);
        let big = Demand::new(20, 5, 0b011);
        assert!(small.within(&big));
        assert!(!big.within(&small));
        assert!(small.within(&small));
        // Incomparable pair: neither within the other.
        let a = Demand::new(10, 0, 0b010);
        let b = Demand::new(5, 0, 0b001);
        assert!(!a.within(&b));
        assert!(!b.within(&a));
    }

    #[test]
    fn memory_only_demand_ignores_other_axes() {
        let d = Demand::memory(100);
        assert_eq!(d.disk_kb, 0);
        assert_eq!(d.packages, 0);
        // Any node with enough memory satisfies it, whatever its packages.
        assert!(Capacity::new(100, 0, 0).satisfies(&d));
    }
}
