//! Fluent cluster construction, including the paper's experimental layouts.

use crate::cluster::Cluster;
use crate::resources::Capacity;

/// One megabyte in KB.
const MB: u64 = 1024;

/// Builder for heterogeneous clusters.
///
/// ```
/// use resmatch_cluster::ClusterBuilder;
///
/// let cluster = ClusterBuilder::new()
///     .pool(512, 32 * 1024)
///     .pool(512, 24 * 1024)
///     .build();
/// assert_eq!(cluster.total_nodes(), 1024);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ClusterBuilder {
    specs: Vec<(u32, Capacity)>,
}

impl ClusterBuilder {
    /// Start empty.
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// Add `count` memory-only nodes of `mem_kb` each.
    pub fn pool(mut self, count: u32, mem_kb: u64) -> Self {
        self.specs.push((count, Capacity::memory(mem_kb)));
        self
    }

    /// Add `count` nodes with a full capacity spec.
    pub fn pool_with(mut self, count: u32, capacity: Capacity) -> Self {
        self.specs.push((count, capacity));
        self
    }

    /// Finish.
    ///
    /// # Panics
    /// Panics when no nodes were added.
    pub fn build(self) -> Cluster {
        Cluster::from_pools(&self.specs)
    }
}

/// The paper's experimental cluster family (§3): 512 nodes with the CM-5's
/// original 32 MB plus 512 nodes whose memory is `second_pool_mb` MB —
/// Figure 5/6 use 24 MB; Figure 8 sweeps 1..=32 MB.
pub fn paper_cluster(second_pool_mb: u64) -> Cluster {
    assert!(
        (1..=32).contains(&second_pool_mb),
        "paper sweeps the second pool over 1..=32 MB"
    );
    ClusterBuilder::new()
        .pool(512, 32 * MB)
        .pool(512, second_pool_mb * MB)
        .build()
}

/// The original homogeneous CM-5: 1024 nodes of 32 MB.
pub fn cm5_cluster() -> Cluster {
    ClusterBuilder::new().pool(1024, 32 * MB).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::Demand;

    #[test]
    fn builder_accumulates_pools() {
        let c = ClusterBuilder::new().pool(3, 100).pool(5, 200).build();
        assert_eq!(c.total_nodes(), 8);
        assert_eq!(c.memory_ladder().rungs(), &[100, 200]);
    }

    #[test]
    fn pool_with_full_capacity() {
        let c = ClusterBuilder::new()
            .pool_with(2, Capacity::new(100, 50, 0b11))
            .build();
        assert!(c.node_capacity(0).satisfies(&Demand::new(100, 50, 0b01)));
        assert!(!c.node_capacity(0).satisfies(&Demand::new(100, 51, 0)));
    }

    #[test]
    fn paper_cluster_layout() {
        let c = paper_cluster(24);
        assert_eq!(c.total_nodes(), 1024);
        assert_eq!(c.nodes_satisfying(&Demand::memory(32 * MB)), 512);
        assert_eq!(c.nodes_satisfying(&Demand::memory(24 * MB)), 1024);
        assert_eq!(c.memory_ladder().rungs(), &[24 * MB, 32 * MB]);
    }

    #[test]
    fn paper_cluster_homogeneous_extreme() {
        let c = paper_cluster(32);
        // 32 + 32 collapses to a single rung.
        assert_eq!(c.memory_ladder().rungs(), &[32 * MB]);
        assert_eq!(c.total_nodes(), 1024);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn paper_cluster_rejects_out_of_sweep() {
        let _ = paper_cluster(0);
    }

    #[test]
    fn cm5_is_homogeneous() {
        let c = cm5_cluster();
        assert_eq!(c.total_nodes(), 1024);
        assert_eq!(c.memory_ladder().rungs(), &[32 * MB]);
    }
}
