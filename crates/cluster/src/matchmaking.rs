//! The allocator-side matchmaking seam.
//!
//! [`PoolMatcher`] is the narrow interface the allocator needs from an
//! expression matchmaker: a per-pool eligibility verdict and an optional
//! rank. The trait lives here — not in the expression engine — so the
//! dependency points the right way: `resmatch-classad` implements this
//! trait on top of its compiled ads, and the cluster stays free of any
//! expression-language dependency.
//!
//! Pools, not nodes, are the match unit: nodes in a pool are identical by
//! construction, so one ad evaluation per pool covers every node in it.
//! That keeps matchmaking O(#pools) per allocation attempt — the same
//! complexity class as the native capacity walk it extends.
//!
//! Contract: a matcher's verdicts must be a pure function of the demand it
//! was last [`PoolMatcher::prepare`]d with and of the pool's (fixed)
//! capability ad. The allocator pre-gates on matched free counts and later
//! caches refusals keyed by demand; verdicts that drift between calls for
//! the same demand would invalidate both.

use crate::resources::{Capacity, Demand};

/// Per-pool eligibility and preference, as the allocator consumes it.
///
/// Methods take `&mut self` so implementations can keep scratch state
/// (evaluation stacks, per-demand compiled programs) without interior
/// mutability.
pub trait PoolMatcher: Send {
    /// Re-target the matcher at a job demand. Called once per allocation
    /// attempt, before any [`PoolMatcher::matches`]/[`PoolMatcher::rank`]
    /// calls for that attempt.
    fn prepare(&mut self, demand: &Demand) {
        let _ = demand;
    }

    /// Whether pool `pool` (whose per-node capacity is `capacity`) is
    /// eligible for the prepared demand. Returning `true` for a pool whose
    /// capacity does not satisfy the demand has no effect — the allocator
    /// intersects with the native capacity check.
    fn matches(&mut self, pool: usize, capacity: &Capacity) -> bool;

    /// Preference score for pool `pool`; higher is better. Only consulted
    /// when [`PoolMatcher::is_ranked`] returns true. Ties preserve the
    /// allocator's [`crate::MatchPolicy`] order.
    fn rank(&mut self, pool: usize, capacity: &Capacity) -> f64 {
        let _ = (pool, capacity);
        0.0
    }

    /// Whether [`PoolMatcher::rank`] carries information. When false the
    /// allocator skips rank evaluation and keeps pure policy order, which
    /// is what makes an unranked constraint-free matcher bit-identical to
    /// the native path.
    fn is_ranked(&self) -> bool {
        false
    }

    /// Identifier of the prepared demand's verdict class, when the
    /// matcher can vouch for one. `Some(s)` is a guarantee: any two
    /// demands that prepare to the same `s` have identical per-pool
    /// outcomes of `matches(pool) && capacity.satisfies(demand)` *and*
    /// identical rank values — the full predicate the allocator applies —
    /// so memo layers (eligible-count epochs, free-bound caches) may key
    /// cached state by the signature alone, collapsing distinct raw
    /// demands that the matcher proves equivalent. `None` (the default)
    /// makes no claim; memo layers must fall back to comparing demands.
    /// Within one matcher lifetime a signature, once handed out, always
    /// denotes the same verdict class.
    fn demand_signature(&self) -> Option<u64> {
        None
    }

    /// The prepared demand's eligibility set as a pool-index bitset
    /// (word `i`, bit `b` covers pool `i * 64 + b`), or `None` when the
    /// matcher has no precomputed index. When present, bit `p` must equal
    /// what [`PoolMatcher::matches`] would return for pool `p` — the
    /// allocator's counting walks then test bits locally instead of
    /// calling through the trait per pool. Words beyond the slice are
    /// all-zero (no pools).
    fn eligible_pools(&self) -> Option<&[u64]> {
        None
    }
}

/// A matcher that accepts every pool and ranks nothing — the identity
/// element of the seam. With it, matched allocation must reproduce native
/// allocation exactly (a property the cluster tests assert).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchAll;

impl PoolMatcher for MatchAll {
    fn matches(&mut self, _pool: usize, _capacity: &Capacity) -> bool {
        true
    }
}
