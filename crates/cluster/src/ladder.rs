//! The capacity ladder: the sorted distinct memory capacities of a cluster.
//!
//! Algorithm 1 never submits a raw estimate: "the cluster may not have nodes
//! with the exact resource capacity Eᵢ — thus, the estimated resource
//! capacity for the job (E′) is rounded to the lowest resource capacity
//! within the cluster, greater than Eᵢ". [`CapacityLadder::round_up`]
//! implements that `⌈·⌉` operator.

use serde::{Deserialize, Serialize};

/// Sorted, deduplicated memory capacities (KB) present in a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityLadder {
    rungs: Vec<u64>,
}

impl CapacityLadder {
    /// Build from arbitrary capacities; duplicates collapse, order is fixed
    /// ascending.
    ///
    /// # Panics
    /// Panics when no capacities are given.
    pub fn new(mut capacities: Vec<u64>) -> Self {
        assert!(
            !capacities.is_empty(),
            "a cluster has at least one capacity"
        );
        capacities.sort_unstable();
        capacities.dedup();
        CapacityLadder { rungs: capacities }
    }

    /// The distinct capacities, ascending.
    pub fn rungs(&self) -> &[u64] {
        &self.rungs
    }

    /// Algorithm 1's `⌈x⌉`: the smallest cluster capacity `>= x`, or `None`
    /// when `x` exceeds every node (the job must then wait for the request
    /// as given — callers fall back to the raw value).
    pub fn round_up(&self, x: u64) -> Option<u64> {
        let idx = self.rungs.partition_point(|&c| c < x);
        self.rungs.get(idx).copied()
    }

    /// The largest capacity `<= x`, or `None` when `x` is below every rung.
    /// Used by analysis code asking "which pool could this job reach".
    pub fn round_down(&self, x: u64) -> Option<u64> {
        let idx = self.rungs.partition_point(|&c| c <= x);
        idx.checked_sub(1).map(|i| self.rungs[i])
    }

    /// Largest capacity in the cluster.
    pub fn max(&self) -> u64 {
        *self
            .rungs
            .last()
            .expect("invariant: a ladder is non-empty by construction")
    }

    /// Smallest capacity in the cluster.
    pub fn min(&self) -> u64 {
        *self
            .rungs
            .first()
            .expect("invariant: a ladder is non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![24 * 1024, 32 * 1024, 24 * 1024, 8 * 1024])
    }

    #[test]
    fn sorts_and_dedups() {
        let l = ladder();
        assert_eq!(l.rungs(), &[8 * 1024, 24 * 1024, 32 * 1024]);
        assert_eq!(l.min(), 8 * 1024);
        assert_eq!(l.max(), 32 * 1024);
    }

    #[test]
    fn round_up_finds_lowest_sufficient() {
        let l = ladder();
        assert_eq!(l.round_up(1), Some(8 * 1024));
        assert_eq!(l.round_up(8 * 1024), Some(8 * 1024));
        assert_eq!(l.round_up(8 * 1024 + 1), Some(24 * 1024));
        assert_eq!(l.round_up(32 * 1024), Some(32 * 1024));
        assert_eq!(l.round_up(32 * 1024 + 1), None);
    }

    #[test]
    fn round_up_zero_hits_smallest() {
        assert_eq!(ladder().round_up(0), Some(8 * 1024));
    }

    #[test]
    fn round_down_mirrors() {
        let l = ladder();
        assert_eq!(l.round_down(1), None);
        assert_eq!(l.round_down(8 * 1024), Some(8 * 1024));
        assert_eq!(l.round_down(30 * 1024), Some(24 * 1024));
        assert_eq!(l.round_down(u64::MAX), Some(32 * 1024));
    }

    #[test]
    fn paper_example_stepping() {
        // §2.3: machines of 32, 24, and 4 MB; α = 2. Requested 32 MB halves
        // to 16, which rounds up to 24; halving again to 8 rounds to 24?
        // No: 8 <= 24 → still 24... the paper's next step is 8 > 4, so the
        // 4 MB machines are unreachable with α = 2 — exactly the
        // round_up behaviour.
        let l = CapacityLadder::new(vec![32 * 1024, 24 * 1024, 4 * 1024]);
        assert_eq!(l.round_up(16 * 1024), Some(24 * 1024));
        assert_eq!(l.round_up(8 * 1024), Some(24 * 1024));
        assert_eq!(l.round_up(4 * 1024), Some(4 * 1024));
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn empty_ladder_rejected() {
        let _ = CapacityLadder::new(vec![]);
    }
}
