//! Golden snapshot fixture: pins the on-disk wire format.
//!
//! `tests/fixtures/golden-successive-v1.rsnp` was produced by the
//! (ignored) `regenerate_golden_fixture` test from a fixed, deterministic
//! training run. The regular tests assert the current build still
//! *decodes* that file to the expected state and still *encodes* the same
//! state to the identical bytes — any codec or layout drift fails here
//! before it can corrupt a deployment's snapshots.
//!
//! If the format changes on purpose, bump `FORMAT_VERSION`, keep decoding
//! the old version, and regenerate with:
//! `cargo test -p resmatch-service --test golden_snapshot -- --ignored`

use std::path::PathBuf;

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_core::prelude::*;
use resmatch_service::prelude::*;
use resmatch_workload::job::JobBuilder;
use resmatch_workload::Job;

const MB: u64 = 1024;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden-successive-v1.rsnp")
}

/// The fixed training run behind the fixture. Fully deterministic: no RNG,
/// no clocks, sorted state export.
fn golden_document() -> SnapshotDocument {
    let ladder = CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB]);
    let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder.clone())
        .shards(8)
        .feedback_batch(32);
    let mut svc = EstimatorService::new(&cfg).expect("valid config");
    for round in 0..6u64 {
        for user in 0..40u32 {
            let job: Job = JobBuilder::new(round * 100 + u64::from(user))
                .user(user)
                .app(user % 5)
                .requested_mem_kb(32 * MB)
                .used_mem_kb(u64::from(user % 7 + 1) * MB)
                .build();
            let d = svc.estimate(&job);
            let node = ladder.round_up(d.mem_kb).unwrap_or(d.mem_kb);
            let fb = Feedback::explicit(job.used_mem_kb <= node, Demand::memory(job.used_mem_kb));
            svc.observe(&job, d, fb);
        }
    }
    svc.snapshot().expect("successive supports snapshots")
}

#[test]
fn golden_fixture_decodes_to_the_expected_state() {
    let doc = SnapshotDocument::read_from(&fixture_path()).expect("fixture is checked in");
    assert_eq!(doc.estimator, "successive-approximation");
    assert_eq!(doc.shards_at_save, 8);
    assert_eq!(doc.state.kind(), "successive-v1");
    assert_eq!(doc.state.group_count(), 40);
    assert_eq!(doc, golden_document());
}

#[test]
fn current_encoder_reproduces_the_fixture_bytes_exactly() {
    let on_disk = std::fs::read(fixture_path()).expect("fixture is checked in");
    assert_eq!(
        golden_document().encode(),
        on_disk,
        "wire format drifted: if intentional, bump FORMAT_VERSION and \
         regenerate the fixture (see module docs)"
    );
}

#[test]
fn restored_fixture_serves_walked_down_estimates() {
    let doc = SnapshotDocument::read_from(&fixture_path()).expect("fixture is checked in");
    let ladder = CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB]);
    let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder);
    let mut svc = EstimatorService::new(&cfg).expect("valid config");
    svc.restore(doc.state).expect("same family");
    // User 3 trained down from a 32 MB request; the restored service must
    // estimate below the request immediately, with no warmup.
    let job = JobBuilder::new(1)
        .user(3)
        .app(3)
        .requested_mem_kb(32 * MB)
        .used_mem_kb(4 * MB)
        .build();
    let d = svc.estimate(&job);
    assert!(
        d.mem_kb < 32 * MB,
        "restored state did not carry learned estimates (got {} KB)",
        d.mem_kb
    );
}

/// Regenerates the fixture. Run explicitly after an intentional format
/// change: `cargo test -p resmatch-service --test golden_snapshot -- --ignored`
#[test]
#[ignore = "writes the checked-in fixture; run only on intentional format changes"]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().expect("fixture path has a parent"))
        .expect("create fixtures dir");
    golden_document().write_to(&path).expect("write fixture");
}
