//! Property test: a snapshot cycle is invisible to queries.
//!
//! For any operation history and any shard counts, running the history,
//! snapshotting through the full binary file format, and restoring onto a
//! fresh service yields a service whose every future estimate matches the
//! original's — op for op, interleaved with further learning.

use proptest::prelude::*;
use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_core::prelude::*;
use resmatch_service::prelude::*;
use resmatch_workload::job::JobBuilder;
use resmatch_workload::Job;

const MB: u64 = 1024;

#[derive(Debug, Clone)]
struct Op {
    user: u32,
    app: u32,
    req_mb: u64,
    used_frac: f64,
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u32..40, 0u32..4, 1u64..65, 0.01f64..1.0).prop_map(|(user, app, req_mb, used_frac)| Op {
            user,
            app,
            req_mb,
            used_frac,
        }),
        1..max,
    )
}

fn to_job(id: u64, op: &Op) -> Job {
    let req = op.req_mb * MB;
    let used = ((req as f64 * op.used_frac) as u64).max(1);
    JobBuilder::new(id)
        .user(op.user)
        .app(op.app)
        .requested_mem_kb(req)
        .used_mem_kb(used)
        .build()
}

fn ladder() -> CapacityLadder {
    CapacityLadder::new(vec![64 * MB, 32 * MB, 16 * MB, 8 * MB, 4 * MB])
}

fn service(spec: EstimatorSpec, shards: usize, batch: usize) -> EstimatorService {
    let cfg = ServiceConfig::new(spec, ladder())
        .shards(shards)
        .feedback_batch(batch);
    EstimatorService::new(&cfg).expect("valid config")
}

fn step(svc: &mut EstimatorService, id: u64, op: &Op) -> u64 {
    let job = to_job(id, op);
    let d = svc.estimate(&job);
    let node = ladder().round_up(d.mem_kb).unwrap_or(d.mem_kb);
    let fb = Feedback::explicit(job.used_mem_kb <= node, Demand::memory(job.used_mem_kb));
    svc.observe(&job, d, fb);
    d.mem_kb
}

fn snapshot_cycle_is_invisible(
    spec: EstimatorSpec,
    history: &[Op],
    probes: &[Op],
    shards_before: usize,
    shards_after: usize,
    batch: usize,
) -> Result<(), TestCaseError> {
    let mut original = service(spec, shards_before, batch);
    for (id, op) in history.iter().enumerate() {
        step(&mut original, id as u64, op);
    }

    // Full cycle: snapshot -> encode -> decode -> restore.
    let doc = original.snapshot().expect("snapshotting estimator family");
    let decoded = SnapshotDocument::decode(&doc.encode()).expect("codec round trip");
    prop_assert_eq!(&decoded, &doc);
    let mut restored = service(spec, shards_after, batch);
    restored.restore(decoded.state).expect("same family");

    // Both services now serve and learn identically, step for step.
    for (i, op) in probes.iter().enumerate() {
        let id = (history.len() + i) as u64;
        let want = step(&mut original, id, op);
        let got = step(&mut restored, id, op);
        prop_assert_eq!(
            got,
            want,
            "probe {} diverged after snapshot cycle ({} -> {} shards)",
            i,
            shards_before,
            shards_after
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn successive_queries_identical_across_snapshot_cycle(
        history in arb_ops(120),
        probes in arb_ops(60),
        shards_before in 1usize..9,
        shards_after in 1usize..9,
        batch in 1usize..64,
    ) {
        snapshot_cycle_is_invisible(
            EstimatorSpec::paper_successive(),
            &history,
            &probes,
            shards_before,
            shards_after,
            batch,
        )?;
    }

    #[test]
    fn last_instance_queries_identical_across_snapshot_cycle(
        history in arb_ops(120),
        probes in arb_ops(60),
        shards_before in 1usize..9,
        shards_after in 1usize..9,
        batch in 1usize..64,
    ) {
        let spec: EstimatorSpec = "last-instance".parse().expect("known name");
        snapshot_cycle_is_invisible(spec, &history, &probes, shards_before, shards_after, batch)?;
    }
}
