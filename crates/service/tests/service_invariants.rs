//! The service's two load-bearing guarantees, end to end:
//!
//! 1. **Shard/batch transparency** — a service is an implementation detail:
//!    1 shard, 8 shards, batch 1, batch 10⁶, or a bare estimator with
//!    inline feedback all produce identical demands for the same
//!    operation stream.
//! 2. **Snapshot fidelity** — state round-trips through the versioned
//!    binary file format and across *different* shard counts without
//!    changing a single future estimate.

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_core::prelude::*;
use resmatch_service::prelude::*;
use resmatch_workload::synthetic::service_stream;
use resmatch_workload::Job;

const MB: u64 = 1024;

fn ladder() -> CapacityLadder {
    CapacityLadder::new(vec![64 * MB, 48 * MB, 32 * MB, 24 * MB, 16 * MB, 8 * MB])
}

/// The simulator's outcome rule: success when usage fits the granted
/// demand's covering rung.
fn outcome(job: &Job, granted: &Demand) -> Feedback {
    let node = ladder().round_up(granted.mem_kb).unwrap_or(granted.mem_kb);
    let success = job.used_mem_kb <= node;
    Feedback::explicit(success, Demand::memory(job.used_mem_kb))
}

/// Drive a service through estimate+observe for each job; return demands.
fn drive_service(svc: &mut EstimatorService, jobs: &[Job]) -> Vec<u64> {
    jobs.iter()
        .map(|job| {
            let d = svc.estimate(job);
            svc.observe(job, d, outcome(job, &d));
            d.mem_kb
        })
        .collect()
}

/// Drive a bare estimator with inline (unbatched) feedback; return demands.
fn drive_bare(est: &mut dyn ResourceEstimator, jobs: &[Job]) -> Vec<u64> {
    let ctx = EstimateContext::default();
    jobs.iter()
        .map(|job| {
            let d = est.estimate(job, &ctx);
            est.feedback(job, &d, &outcome(job, &d), &ctx);
            d.mem_kb
        })
        .collect()
}

fn service(spec: EstimatorSpec, shards: usize, batch: usize) -> EstimatorService {
    let cfg = ServiceConfig::new(spec, ladder())
        .shards(shards)
        .feedback_batch(batch);
    EstimatorService::new(&cfg).expect("valid config")
}

#[test]
fn estimates_are_invariant_to_shard_count_and_batch_size() {
    let jobs: Vec<Job> = service_stream(20_000, 1_500, 42).collect();
    for spec in [
        EstimatorSpec::paper_successive(),
        "last-instance"
            .parse::<EstimatorSpec>()
            .expect("known name"),
        "robust".parse::<EstimatorSpec>().expect("known name"),
    ] {
        let baseline = drive_bare(spec.build(&ladder()).as_mut(), &jobs);
        for (shards, batch) in [
            (1, 1),
            (1, 1 << 20),
            (8, 1),
            (8, 256),
            (8, 1 << 20),
            (64, 977),
        ] {
            let mut svc = service(spec, shards, batch);
            let got = drive_service(&mut svc, &jobs);
            assert_eq!(
                got,
                baseline,
                "{}: {shards} shards / batch {batch} diverged from inline feedback",
                spec.name()
            );
            let stats = svc.stats();
            assert_eq!(stats.queries, jobs.len() as u64);
            assert_eq!(stats.observations, jobs.len() as u64);
        }
    }
}

#[test]
fn sharding_actually_spreads_the_group_space() {
    let jobs: Vec<Job> = service_stream(10_000, 2_000, 7).collect();
    let svc = service(EstimatorSpec::paper_successive(), 8, 1024);
    let mut per_shard = [0u64; 8];
    for job in &jobs {
        per_shard[svc.route(job)] += 1;
    }
    assert!(
        per_shard.iter().all(|&n| n > 500),
        "hash routing left a shard starved: {per_shard:?}"
    );
}

#[test]
fn snapshot_restores_across_shard_counts_and_the_file_format() {
    let warm: Vec<Job> = service_stream(30_000, 2_500, 11).collect();
    let probe: Vec<Job> = service_stream(5_000, 2_500, 11 + 1).collect();

    for spec in [
        EstimatorSpec::paper_successive(),
        "last-instance"
            .parse::<EstimatorSpec>()
            .expect("known name"),
    ] {
        let mut original = service(spec, 8, 512);
        drive_service(&mut original, &warm);

        // Snapshot through the full on-disk byte layout.
        let doc = original.snapshot().expect("snapshotting estimator");
        assert_eq!(doc.estimator, spec.name());
        assert_eq!(doc.shards_at_save, 8);
        assert!(doc.state.group_count() > 1_000, "warmup built real state");
        let decoded = SnapshotDocument::decode(&doc.encode()).expect("codec round trip");
        assert_eq!(decoded, doc);

        // Restore onto services with different shard counts; every future
        // estimate must match the original's, op for op.
        for shards in [1usize, 3, 8, 16] {
            let mut restored = service(spec, shards, 512);
            restored
                .restore(decoded.state.clone())
                .expect("same family");
            let mut original_probe = original_clone_via_snapshot(&mut original, spec);
            let want = drive_service(&mut original_probe, &probe);
            let got = drive_service(&mut restored, &probe);
            assert_eq!(
                got,
                want,
                "{}: restore onto {shards} shards changed estimates",
                spec.name()
            );
        }
    }
}

/// Clone a warmed service by round-tripping its own snapshot — the only
/// sanctioned way to copy estimator state.
fn original_clone_via_snapshot(
    svc: &mut EstimatorService,
    spec: EstimatorSpec,
) -> EstimatorService {
    let doc = svc.snapshot().expect("snapshotting estimator");
    let mut copy = service(spec, svc.shard_count(), 512);
    copy.restore(doc.state).expect("same family");
    copy
}

#[test]
fn restore_rejects_the_wrong_family() {
    let mut last = service(
        "last-instance"
            .parse::<EstimatorSpec>()
            .expect("known name"),
        2,
        64,
    );
    let jobs: Vec<Job> = service_stream(100, 10, 3).collect();
    drive_service(&mut last, &jobs);
    let doc = last.snapshot().expect("snapshot");

    let mut successive = service(EstimatorSpec::paper_successive(), 2, 64);
    let err = successive.restore(doc.state).unwrap_err();
    assert!(matches!(
        err,
        ServiceError::Snapshot(SnapshotError::Mismatch { .. })
    ));
}

#[test]
fn threaded_shards_match_the_single_threaded_service() {
    // The deployment shape: split the service, drive each shard from its
    // own thread over its slice of the (pre-routed) operation stream, then
    // reassemble and compare against the same service driven inline.
    let jobs: Vec<Job> = service_stream(12_000, 800, 19).collect();
    let spec = EstimatorSpec::paper_successive();

    let mut inline = service(spec, 4, 128);
    let want = drive_service(&mut inline, &jobs);
    let want_doc = inline.snapshot().expect("snapshot");

    let svc = service(spec, 4, 128);
    let mut slices: Vec<Vec<Job>> = vec![Vec::new(); 4];
    for job in &jobs {
        slices[svc.route(job)].push(job.clone());
    }
    let (router, shards) = svc.into_parts();
    let mut demands: Vec<(u64, u64)> = Vec::new(); // (job id, demand)
    let mut done: Vec<ServiceShard> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (mut shard, slice) in shards.into_iter().zip(&slices) {
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(slice.len());
                for job in slice {
                    let d = shard.estimate(job);
                    shard.observe(job, d, outcome(job, &d));
                    out.push((job.id.0, d.mem_kb));
                }
                (shard, out)
            }));
        }
        for handle in handles {
            let (shard, out) = handle.join().expect("shard thread");
            demands.extend(out);
            done.push(shard);
        }
    });
    demands.sort_unstable();

    // Same demands per job id as the inline run...
    let mut want_by_id: Vec<(u64, u64)> = jobs
        .iter()
        .map(|j| j.id.0)
        .zip(want.iter().copied())
        .collect();
    want_by_id.sort_unstable();
    assert_eq!(demands, want_by_id);

    // ... and the reassembled service snapshots to identical state.
    let mut rejoined = EstimatorService::from_parts(spec, router, done).expect("reassembles");
    let doc = rejoined.snapshot().expect("snapshot");
    assert_eq!(doc.state, want_doc.state);
}
