//! A long-running estimator service over `resmatch-core`.
//!
//! The paper evaluates estimation inside a scheduler simulation; this crate
//! packages the same estimators as an *online service* — the deployment
//! shape Figure 2 implies, where one estimator process sits between
//! submission and matchmaking for an entire site and answers at traffic
//! rates (millions of users, each a similarity group).
//!
//! Three design commitments, each with its own module:
//!
//! - **Sharding** ([`service`]): similarity groups are hash-partitioned
//!   across self-contained worker shards by the same stable key hash the
//!   estimators themselves report via `EstimateScope::Group`. The query
//!   path is shard-local; feedback is a batched per-shard write stream.
//!   Estimates are provably independent of shard count and batch size.
//! - **Durability** ([`mod@file`], [`codec`]): estimator state round-trips
//!   through a versioned binary snapshot file (`RSNP` magic), portable
//!   across shard counts because partitioning uses that same stable hash.
//! - **Typed errors** ([`error`]): one `#[non_exhaustive]` error enum,
//!   [`ServiceError`], covers configuration, codec, file, and snapshot
//!   failures.
//!
//! # Quick example
//!
//! ```
//! use resmatch_cluster::CapacityLadder;
//! use resmatch_core::spec::EstimatorSpec;
//! use resmatch_core::traits::Feedback;
//! use resmatch_service::prelude::*;
//! use resmatch_workload::job::JobBuilder;
//!
//! let ladder = CapacityLadder::new(vec![32 * 1024, 16 * 1024, 8 * 1024]);
//! let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder)
//!     .shards(8)
//!     .feedback_batch(256);
//! let mut service = EstimatorService::new(&cfg)?;
//!
//! let job = JobBuilder::new(1)
//!     .user(42)
//!     .requested_mem_kb(32 * 1024)
//!     .used_mem_kb(4 * 1024)
//!     .build();
//! let demand = service.estimate(&job);            // hot path: shard-local
//! service.observe(&job, demand, Feedback::success()); // write path: batched
//!
//! let doc = service.snapshot()?;                  // durable, versioned
//! let mut restored = EstimatorService::new(&cfg)?;
//! restored.restore(doc.state)?;
//! assert_eq!(restored.estimate(&job), service.estimate(&job));
//! # Ok::<(), resmatch_service::ServiceError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod file;
pub mod service;

/// Common imports for service operators.
pub mod prelude {
    pub use crate::error::ServiceError;
    pub use crate::file::SnapshotDocument;
    pub use crate::service::{
        EstimatorService, JobRouter, ServiceConfig, ServiceShard, ServiceStats,
    };
}

pub use prelude::*;
