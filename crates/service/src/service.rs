//! The sharded estimator service.
//!
//! One [`EstimatorService`] owns `n` worker shards. Every similarity group
//! lives on exactly one shard — the one its key's stable hash selects — so
//! the hot query path ([`EstimatorService::estimate`]) touches a single
//! shard and nothing else: no cross-shard locks, no shared mutable state.
//! Shards are self-contained [`ServiceShard`] values, so a deployment (or
//! the throughput bench) can split the service with
//! [`EstimatorService::into_parts`] and drive each shard from its own
//! thread.
//!
//! Feedback ([`EstimatorService::observe`]) is not applied inline: it is
//! enqueued on the owning shard and applied as a batched write stream,
//! amortizing estimator-table access across
//! [`ServiceConfig::feedback_batch`] observations. Batching never changes
//! answers, because a shard flushes its queue before serving any estimate
//! the pending feedback could influence:
//!
//! - [`EstimateScope::Group`] estimators (the paper's similarity-based
//!   family) flush only when the queried job's *own group* has feedback
//!   pending — read-your-writes consistency at group granularity.
//! - [`EstimateScope::Global`] estimators flush on every estimate (their
//!   scope makes any pending feedback potentially visible), and are pinned
//!   to shard 0 since splitting global state would change results.
//! - [`EstimateScope::Static`] estimators never flush (feedback is inert).
//!
//! Together with hash-sharding this yields the service's core invariant,
//! proven by the crate's integration tests: **estimates are independent of
//! the shard count and of the batch size** — a 1-shard service, an 8-shard
//! service, and a bare estimator with inline feedback all return identical
//! demands for the same operation stream.

use std::collections::HashSet;

use resmatch_cluster::{CapacityLadder, Demand};
use resmatch_core::similarity::{FnvBuildHasher, SimilarityPolicy};
use resmatch_core::snapshot::SnapshotState;
use resmatch_core::spec::EstimatorSpec;
use resmatch_core::traits::{EstimateContext, EstimateScope, Feedback, ResourceEstimator};
use resmatch_workload::Job;

use crate::error::ServiceError;
use crate::file::SnapshotDocument;

/// The service has no scheduler queue or cluster occupancy to report; all
/// estimators that read the context treat this as "idle cluster".
const SERVICE_CTX: EstimateContext = EstimateContext {
    queue_len: 0,
    free_fraction: 1.0,
};

/// How to build an [`EstimatorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Which estimator family each shard runs.
    pub spec: EstimatorSpec,
    /// Capacity ladder of the cluster the service estimates for.
    pub ladder: CapacityLadder,
    /// Worker shard count. Group state is hash-partitioned across shards.
    pub shards: usize,
    /// Apply a shard's queued feedback once this many observations are
    /// pending (earlier if an estimate needs them — see the module docs).
    pub feedback_batch: usize,
}

impl ServiceConfig {
    /// A config with the service defaults: 8 shards, feedback batches of
    /// 1024 observations.
    pub fn new(spec: EstimatorSpec, ladder: CapacityLadder) -> Self {
        ServiceConfig {
            spec,
            ladder,
            shards: 8,
            feedback_batch: 1024,
        }
    }

    /// Set the shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the feedback batch size.
    #[must_use]
    pub fn feedback_batch(mut self, feedback_batch: usize) -> Self {
        self.feedback_batch = feedback_batch;
        self
    }
}

/// Routes jobs to shards. Stateless after construction and independent of
/// any learning, so a router can serve a different thread than the shards.
pub struct JobRouter {
    /// A pristine estimator instance consulted only for `estimate_scope`,
    /// which the trait requires to be a pure function of the job — so an
    /// unfed instance answers identically to every shard's.
    scope_probe: Box<dyn ResourceEstimator>,
    shards: usize,
}

impl std::fmt::Debug for JobRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRouter")
            .field("estimator", &self.scope_probe.name())
            .field("shards", &self.shards)
            .finish()
    }
}

impl JobRouter {
    fn new(spec: &EstimatorSpec, ladder: &CapacityLadder, shards: usize) -> Self {
        JobRouter {
            scope_probe: spec.build(ladder),
            shards,
        }
    }

    /// Shard count this router distributes over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `job`'s estimator state.
    pub fn route(&self, job: &Job) -> usize {
        match self.scope_probe.estimate_scope(job) {
            // Group state lives where its hash points — the same routing
            // `SnapshotState::partition` uses.
            EstimateScope::Group(group) => (group % self.shards as u64) as usize,
            // Static estimators keep no state; spread the load by the full
            // similarity key so the distribution matches the group family's.
            EstimateScope::Static => {
                (SimilarityPolicy::UserAppRequest.key(job).stable_hash() % self.shards as u64)
                    as usize
            }
            // Global state cannot be split without changing results.
            EstimateScope::Global => 0,
        }
    }
}

/// One observation waiting in a shard's write queue.
#[derive(Debug, Clone)]
struct QueuedObservation {
    job: Job,
    granted: Demand,
    feedback: Feedback,
}

/// Lifetime counters for one shard (and, summed, for the service).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Estimates served.
    pub queries: u64,
    /// Observations accepted (queued or applied).
    pub observations: u64,
    /// Observations already applied to the estimator.
    pub applied: u64,
    /// Queue flushes performed (batch-full, consistency, or explicit).
    pub batches: u64,
}

impl ServiceStats {
    /// Observations accepted but not yet applied.
    pub fn pending(&self) -> u64 {
        self.observations - self.applied
    }

    fn absorb(&mut self, other: &ServiceStats) {
        self.queries += other.queries;
        self.observations += other.observations;
        self.applied += other.applied;
        self.batches += other.batches;
    }
}

/// One worker shard: an estimator instance owning a hash-slice of the
/// group space, plus its feedback write queue. `Send`, self-contained, and
/// lock-free — drive one per thread.
pub struct ServiceShard {
    index: usize,
    estimator: Box<dyn ResourceEstimator>,
    queue: Vec<QueuedObservation>,
    /// Group hashes with feedback sitting in `queue`, for the O(1)
    /// "does this estimate need a flush first?" check.
    pending_groups: HashSet<u64, FnvBuildHasher>,
    feedback_batch: usize,
    stats: ServiceStats,
}

impl std::fmt::Debug for ServiceShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceShard")
            .field("index", &self.index)
            .field("estimator", &self.estimator.name())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ServiceShard {
    fn new(index: usize, spec: &EstimatorSpec, ladder: &CapacityLadder, batch: usize) -> Self {
        ServiceShard {
            index,
            estimator: spec.build(ladder),
            queue: Vec::with_capacity(batch),
            pending_groups: HashSet::default(),
            feedback_batch: batch,
            stats: ServiceStats::default(),
        }
    }

    /// This shard's position in the service's shard table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Serve one estimate, first applying any queued feedback that could
    /// influence it (see the module docs for the per-scope rule).
    pub fn estimate(&mut self, job: &Job) -> Demand {
        let needs_flush = match self.estimator.estimate_scope(job) {
            EstimateScope::Group(group) => self.pending_groups.contains(&group),
            EstimateScope::Static => false,
            EstimateScope::Global => !self.queue.is_empty(),
        };
        if needs_flush {
            self.flush();
        }
        self.stats.queries += 1;
        self.estimator.estimate(job, &SERVICE_CTX)
    }

    /// Accept one observation into the write queue; applies the whole
    /// queue once it reaches the configured batch size.
    pub fn observe(&mut self, job: &Job, granted: Demand, feedback: Feedback) {
        if let EstimateScope::Group(group) = self.estimator.estimate_scope(job) {
            self.pending_groups.insert(group);
        }
        self.queue.push(QueuedObservation {
            job: job.clone(),
            granted,
            feedback,
        });
        self.stats.observations += 1;
        if self.queue.len() >= self.feedback_batch {
            self.flush();
        }
    }

    /// Apply every queued observation to the estimator, in arrival order.
    pub fn flush(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        for obs in self.queue.drain(..) {
            self.estimator
                .feedback(&obs.job, &obs.granted, &obs.feedback, &SERVICE_CTX);
            self.stats.applied += 1;
        }
        self.pending_groups.clear();
        self.stats.batches += 1;
    }

    fn snapshot_part(&mut self) -> Result<SnapshotState, ServiceError> {
        self.flush();
        self.estimator
            .snapshot_state()
            .ok_or(ServiceError::Snapshot(
                resmatch_core::snapshot::SnapshotError::Unsupported {
                    estimator: self.estimator.name(),
                },
            ))
    }

    fn restore_part(&mut self, part: SnapshotState) -> Result<(), ServiceError> {
        // Queued observations describe the pre-restore world; drop them.
        self.queue.clear();
        self.pending_groups.clear();
        self.estimator.restore_state(part)?;
        Ok(())
    }
}

/// A long-running estimator service: `estimate` on the hot path, `observe`
/// on the write path, snapshot/restore for durability. See the module docs
/// for the consistency contract.
pub struct EstimatorService {
    spec: EstimatorSpec,
    router: JobRouter,
    shards: Vec<ServiceShard>,
}

impl std::fmt::Debug for EstimatorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimatorService")
            .field("spec", &self.spec)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl EstimatorService {
    /// Build a service: one estimator instance per shard plus a router.
    ///
    /// # Errors
    /// [`ServiceError::Config`] when `shards` or `feedback_batch` is zero.
    pub fn new(cfg: &ServiceConfig) -> Result<Self, ServiceError> {
        if cfg.shards == 0 {
            return Err(ServiceError::Config {
                detail: "shard count must be at least 1",
            });
        }
        if cfg.feedback_batch == 0 {
            return Err(ServiceError::Config {
                detail: "feedback batch must be at least 1",
            });
        }
        let shards = (0..cfg.shards)
            .map(|index| ServiceShard::new(index, &cfg.spec, &cfg.ladder, cfg.feedback_batch))
            .collect();
        Ok(EstimatorService {
            spec: cfg.spec,
            router: JobRouter::new(&cfg.spec, &cfg.ladder, cfg.shards),
            shards,
        })
    }

    /// The estimator family every shard runs.
    pub fn spec(&self) -> &EstimatorSpec {
        &self.spec
    }

    /// Worker shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `job`'s group state.
    pub fn route(&self, job: &Job) -> usize {
        self.router.route(job)
    }

    /// Serve one estimate (shard-local; see [`ServiceShard::estimate`]).
    pub fn estimate(&mut self, job: &Job) -> Demand {
        let shard = self.router.route(job);
        self.shards[shard].estimate(job)
    }

    /// Enqueue one observation on the owning shard's write stream.
    pub fn observe(&mut self, job: &Job, granted: Demand, feedback: Feedback) {
        let shard = self.router.route(job);
        self.shards[shard].observe(job, granted, feedback);
    }

    /// Apply all queued feedback on every shard.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
    }

    /// Counters summed over all shards.
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats());
        }
        total
    }

    /// Flush everything and export the merged estimator state as a
    /// snapshot document ready for [`SnapshotDocument::write_to`].
    ///
    /// # Errors
    /// [`ServiceError::Snapshot`] when the estimator family does not
    /// support snapshots (e.g. the stateless baselines).
    pub fn snapshot(&mut self) -> Result<SnapshotDocument, ServiceError> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            parts.push(shard.snapshot_part()?);
        }
        let state = SnapshotState::merge(parts)?;
        Ok(SnapshotDocument {
            estimator: self.spec.name().to_string(),
            shards_at_save: self.shards.len() as u32,
            state,
        })
    }

    /// Replace all shard state with a snapshot, re-partitioning for this
    /// service's shard count (snapshots are shard-count-portable). Queued
    /// feedback is discarded — it predates the restored state.
    ///
    /// # Errors
    /// [`ServiceError::Snapshot`] when the state belongs to a different
    /// estimator family than this service runs.
    pub fn restore(&mut self, state: SnapshotState) -> Result<(), ServiceError> {
        let parts = state.partition(self.shards.len());
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.restore_part(part)?;
        }
        Ok(())
    }

    /// Split into a router plus owned shards, for driving each shard from
    /// its own thread. Reassemble with [`EstimatorService::from_parts`].
    pub fn into_parts(self) -> (JobRouter, Vec<ServiceShard>) {
        (self.router, self.shards)
    }

    /// Reassemble a service from parts produced by
    /// [`EstimatorService::into_parts`]. Shards are re-ordered by their
    /// recorded index, so threads may return them in any order.
    ///
    /// # Errors
    /// [`ServiceError::Config`] when the shard set does not match the
    /// router (wrong count, or duplicate/missing indices).
    pub fn from_parts(
        spec: EstimatorSpec,
        router: JobRouter,
        mut shards: Vec<ServiceShard>,
    ) -> Result<Self, ServiceError> {
        if shards.len() != router.shards() {
            return Err(ServiceError::Config {
                detail: "shard set does not match the router's shard count",
            });
        }
        shards.sort_by_key(ServiceShard::index);
        if shards.iter().enumerate().any(|(i, s)| s.index() != i) {
            return Err(ServiceError::Config {
                detail: "shard indices are not a permutation of 0..shards",
            });
        }
        Ok(EstimatorService {
            spec,
            router,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_workload::job::JobBuilder;

    const MB: u64 = 1024;

    fn ladder() -> CapacityLadder {
        CapacityLadder::new(vec![32 * MB, 24 * MB, 16 * MB, 8 * MB])
    }

    fn job(id: u64, user: u32) -> Job {
        JobBuilder::new(id)
            .user(user)
            .app(user % 5)
            .requested_mem_kb(32 * MB)
            .used_mem_kb(4 * MB)
            .build()
    }

    #[test]
    fn zero_shards_and_zero_batch_are_rejected() {
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder()).shards(0);
        assert!(matches!(
            EstimatorService::new(&cfg).unwrap_err(),
            ServiceError::Config { .. }
        ));
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder()).feedback_batch(0);
        assert!(matches!(
            EstimatorService::new(&cfg).unwrap_err(),
            ServiceError::Config { .. }
        ));
    }

    #[test]
    fn feedback_is_batched_until_the_batch_fills() {
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder())
            .shards(1)
            .feedback_batch(4);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        // Distinct groups: estimates target fresh groups, so no
        // consistency flush fires and the queue simply accumulates.
        for id in 0..3 {
            let j = job(id, id as u32);
            let d = svc.estimate(&j);
            svc.observe(&j, d, Feedback::success());
        }
        let stats = svc.stats();
        assert_eq!(stats.observations, 3);
        assert_eq!(stats.pending(), 3, "feedback applied too eagerly");
        assert_eq!(stats.batches, 0);
        // The 4th observation fills the batch and drains the queue.
        let j = job(3, 3);
        let d = svc.estimate(&j);
        svc.observe(&j, d, Feedback::success());
        assert_eq!(svc.stats().pending(), 0);
        assert_eq!(svc.stats().batches, 1);
    }

    #[test]
    fn estimates_see_their_groups_pending_feedback() {
        // Read-your-writes: a successive-approximation group must walk down
        // the ladder immediately after a success, even with a huge batch.
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder())
            .shards(4)
            .feedback_batch(1_000_000);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        let j = job(1, 7);
        let first = svc.estimate(&j);
        assert_eq!(first.mem_kb, 32 * MB); // first contact: trust the request
        svc.observe(&j, first, Feedback::success());
        let second = svc.estimate(&job(2, 7));
        assert!(
            second.mem_kb < first.mem_kb,
            "pending feedback was not visible to the group's next estimate"
        );
    }

    #[test]
    fn unrelated_groups_do_not_force_flushes() {
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder())
            .shards(1)
            .feedback_batch(1_000_000);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        let a = job(1, 1);
        let d = svc.estimate(&a);
        svc.observe(&a, d, Feedback::success());
        // A different group's estimate must not trigger the flush.
        let _ = svc.estimate(&job(2, 2));
        assert_eq!(svc.stats().pending(), 1);
        // The same group's estimate must.
        let _ = svc.estimate(&job(3, 1));
        assert_eq!(svc.stats().pending(), 0);
    }

    #[test]
    fn static_estimators_never_flush() {
        let cfg = ServiceConfig::new(EstimatorSpec::PassThrough, ladder())
            .shards(2)
            .feedback_batch(1_000_000);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        for id in 0..10 {
            let j = job(id, id as u32);
            let d = svc.estimate(&j);
            assert_eq!(d.mem_kb, j.requested_mem_kb);
            svc.observe(&j, d, Feedback::success());
        }
        assert_eq!(svc.stats().pending(), 10);
        svc.flush();
        assert_eq!(svc.stats().pending(), 0);
    }

    #[test]
    fn global_estimators_pin_to_shard_zero_and_flush_eagerly() {
        let spec: EstimatorSpec = "reinforcement".parse().expect("known name");
        let cfg = ServiceConfig::new(spec, ladder())
            .shards(8)
            .feedback_batch(64);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        for id in 0..20 {
            let j = job(id, id as u32);
            assert_eq!(svc.route(&j), 0, "global estimators must pin to shard 0");
            let d = svc.estimate(&j);
            svc.observe(&j, d, Feedback::success());
        }
        // Every estimate flushed the prior observation.
        assert!(svc.stats().pending() <= 1);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder()).shards(8);
        let svc = EstimatorService::new(&cfg).expect("valid config");
        for id in 0..100 {
            let j = job(id, (id % 37) as u32);
            let shard = svc.route(&j);
            assert!(shard < 8);
            assert_eq!(shard, svc.route(&j));
        }
    }

    #[test]
    fn snapshot_of_stateless_estimator_is_unsupported() {
        let cfg = ServiceConfig::new(EstimatorSpec::PassThrough, ladder()).shards(2);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        assert!(matches!(
            svc.snapshot().unwrap_err(),
            ServiceError::Snapshot(_)
        ));
    }

    #[test]
    fn into_parts_round_trips_and_validates() {
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder()).shards(3);
        let svc = EstimatorService::new(&cfg).expect("valid config");
        let spec = *svc.spec();
        let (router, mut shards) = svc.into_parts();
        shards.reverse(); // threads may hand shards back in any order
        let svc = EstimatorService::from_parts(spec, router, shards).expect("reassembles");
        assert_eq!(svc.shard_count(), 3);

        let (router, mut shards) = svc.into_parts();
        shards.pop();
        assert!(matches!(
            EstimatorService::from_parts(spec, router, shards).unwrap_err(),
            ServiceError::Config { .. }
        ));
    }

    #[test]
    fn stats_absorb_sums_all_counters() {
        let cfg = ServiceConfig::new(EstimatorSpec::paper_successive(), ladder())
            .shards(4)
            .feedback_batch(2);
        let mut svc = EstimatorService::new(&cfg).expect("valid config");
        for id in 0..50 {
            let j = job(id, (id % 13) as u32);
            let d = svc.estimate(&j);
            svc.observe(&j, d, Feedback::success());
        }
        let stats = svc.stats();
        assert_eq!(stats.queries, 50);
        assert_eq!(stats.observations, 50);
        assert!(stats.applied >= 40, "batches of 2 should drain steadily");
        assert!(stats.batches > 0);
    }
}
