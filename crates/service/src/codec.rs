//! The snapshot wire format: a compact little-endian binary codec.
//!
//! [`BinWriter`] and [`BinReader`] implement the `serde` driver traits over
//! a byte buffer. The encoding is *schema-static*: struct and field markers
//! occupy zero bytes because both sides walk the same type structure, so
//! all that lands on the wire is primitives (fixed-width little-endian),
//! length prefixes for sequences and strings (`u64`), option discriminants
//! (one byte), and enum variant indices (`u32`).
//!
//! That makes the format exactly as durable as the type definitions it
//! serializes — which is why [`crate::file`] stamps a format version in the
//! file header and `SnapshotState` freezes each variant's field set once
//! released.
//!
//! Decoding never panics: every read is bounds-checked and surfaces as a
//! [`ServiceError::Codec`] carrying the byte offset of the failure.

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::error::ServiceError;

/// Encode `value` into the binary snapshot format.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut writer = BinWriter::new();
    match value.serialize(&mut writer) {
        Ok(()) => writer.into_bytes(),
        // The writer's error type is uninhabited: encoding cannot fail.
        Err(never) => match never {},
    }
}

/// Decode a value from the binary snapshot format, requiring that `bytes`
/// contains exactly one value and nothing else.
///
/// # Errors
/// [`ServiceError::Codec`] when the input is truncated, malformed, decodes
/// to out-of-range data, or leaves trailing bytes.
pub fn from_bytes<T>(bytes: &[u8]) -> Result<T, ServiceError>
where
    T: for<'de> Deserialize<'de>,
{
    let mut reader = BinReader::new(bytes);
    let value = T::deserialize(&mut reader)?;
    if reader.position() != bytes.len() {
        return Err(ServiceError::Codec {
            offset: reader.position(),
            detail: "trailing bytes after value".to_string(),
        });
    }
    Ok(value)
}

/// Streaming encoder: appends the flat event stream to a growable buffer.
#[derive(Debug, Default)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BinWriter::default()
    }

    /// Finish and hand back the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Serializer for BinWriter {
    // Writing to an in-memory buffer cannot fail.
    type Error = std::convert::Infallible;

    fn serialize_bool(&mut self, v: bool) -> Result<(), Self::Error> {
        self.buf.push(u8::from(v));
        Ok(())
    }

    fn serialize_u64(&mut self, v: u64) -> Result<(), Self::Error> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(&mut self, v: i64) -> Result<(), Self::Error> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(&mut self, v: f64) -> Result<(), Self::Error> {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn serialize_str(&mut self, v: &str) -> Result<(), Self::Error> {
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_none(&mut self) -> Result<(), Self::Error> {
        self.buf.push(0);
        Ok(())
    }

    fn serialize_some(&mut self) -> Result<(), Self::Error> {
        self.buf.push(1);
        Ok(())
    }

    fn begin_seq(&mut self, len: usize) -> Result<(), Self::Error> {
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
        Ok(())
    }

    fn end_seq(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn begin_struct(&mut self, _name: &'static str, _fields: usize) -> Result<(), Self::Error> {
        Ok(())
    }

    fn serialize_field(&mut self, _name: &'static str) -> Result<(), Self::Error> {
        Ok(())
    }

    fn end_struct(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn begin_variant(
        &mut self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _fields: usize,
    ) -> Result<(), Self::Error> {
        self.buf.extend_from_slice(&variant_index.to_le_bytes());
        Ok(())
    }

    fn end_variant(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// Streaming decoder over a byte slice, tracking its read offset for
/// error reporting.
#[derive(Debug)]
pub struct BinReader<'de> {
    bytes: &'de [u8],
    pos: usize,
}

impl<'de> BinReader<'de> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'de [u8]) -> Self {
        BinReader { bytes, pos: 0 }
    }

    /// Current read offset, for trailing-bytes checks and diagnostics.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn fail(&self, detail: &str) -> ServiceError {
        ServiceError::Codec {
            offset: self.pos,
            detail: detail.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], ServiceError> {
        let end = match self.pos.checked_add(n) {
            Some(end) if end <= self.bytes.len() => end,
            _ => return Err(self.fail("unexpected end of input")),
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ServiceError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Read a length prefix and sanity-check it against the bytes left:
    /// every counted item occupies at least `min_item_bytes`, so a corrupt
    /// length cannot force a huge allocation or a long decode loop.
    fn take_len(&mut self, min_item_bytes: usize, what: &str) -> Result<usize, ServiceError> {
        let wide = u64::from_le_bytes(self.take_array()?);
        let len = usize::try_from(wide).map_err(|_| self.fail(what))?;
        let remaining = self.bytes.len() - self.pos;
        match len.checked_mul(min_item_bytes.max(1)) {
            Some(total) if total <= remaining => Ok(len),
            _ => Err(self.fail(what)),
        }
    }
}

impl<'de> Deserializer<'de> for BinReader<'de> {
    type Error = ServiceError;

    fn deserialize_bool(&mut self) -> Result<bool, Self::Error> {
        match self.take_array::<1>()? {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(self.fail("bool")),
        }
    }

    fn deserialize_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn deserialize_i64(&mut self) -> Result<i64, Self::Error> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    fn deserialize_f64(&mut self) -> Result<f64, Self::Error> {
        Ok(f64::from_bits(u64::from_le_bytes(self.take_array()?)))
    }

    fn deserialize_string(&mut self) -> Result<String, Self::Error> {
        let len = self.take_len(1, "string length")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("string is not UTF-8"))
    }

    fn deserialize_option(&mut self) -> Result<bool, Self::Error> {
        match self.take_array::<1>()? {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(self.fail("option discriminant")),
        }
    }

    fn begin_seq(&mut self) -> Result<usize, Self::Error> {
        self.take_len(1, "sequence length")
    }

    fn end_seq(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn begin_struct(&mut self, _name: &'static str, _fields: usize) -> Result<(), Self::Error> {
        Ok(())
    }

    fn deserialize_field(&mut self, _name: &'static str) -> Result<(), Self::Error> {
        Ok(())
    }

    fn end_struct(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn begin_variant(
        &mut self,
        name: &'static str,
        variants: &'static [&'static str],
    ) -> Result<u32, Self::Error> {
        let index = u32::from_le_bytes(self.take_array()?);
        if (index as usize) < variants.len() {
            Ok(index)
        } else {
            Err(ServiceError::Codec {
                offset: self.pos,
                detail: format!("variant index {index} out of range for enum {name}"),
            })
        }
    }

    fn end_variant(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn invalid_data(&mut self, what: &'static str) -> Self::Error {
        self.fail(what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resmatch_core::similarity::SimilarityPolicy;
    use resmatch_core::snapshot::SnapshotState;
    use resmatch_core::successive::PersistedGroup;
    use resmatch_workload::job::JobBuilder;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        from_bytes(&to_bytes(value)).expect("round trip")
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(round_trip(&0u64), 0);
        assert_eq!(round_trip(&u64::MAX), u64::MAX);
        assert_eq!(round_trip(&-42i64), -42);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&2.5f64).to_bits(), 2.5f64.to_bits());
        assert_eq!(round_trip(&String::from("snapshot")), "snapshot");
        assert_eq!(round_trip(&Some(7u32)), Some(7));
        assert_eq!(round_trip(&None::<u64>), None);
        assert_eq!(round_trip(&vec![1u64, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn snapshot_state_round_trips() {
        let key = SimilarityPolicy::UserAppRequest.key(
            &JobBuilder::new(1)
                .user(3)
                .app(4)
                .requested_mem_kb(32 * 1024)
                .build(),
        );
        let state = SnapshotState::SuccessiveV1 {
            groups: vec![PersistedGroup {
                key,
                estimate_kb: 8.0 * 1024.0,
                alpha: 2.0,
                prev_kb: 16.0 * 1024.0,
                request_kb: 32.0 * 1024.0,
                successes: 5,
                failures: 1,
            }],
        };
        assert_eq!(round_trip(&state), state);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&12345u64);
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert!(matches!(err, ServiceError::Codec { .. }));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&1u64);
        bytes.push(0xFF);
        let err = from_bytes::<u64>(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_early() {
        // A sequence claiming u64::MAX elements must fail the plausibility
        // check instead of looping or allocating.
        let bytes = u64::MAX.to_le_bytes().to_vec();
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert!(matches!(err, ServiceError::Codec { .. }));
    }

    #[test]
    fn corrupt_bool_and_option_are_rejected() {
        assert!(from_bytes::<bool>(&[7]).is_err());
        assert!(from_bytes::<Option<u64>>(&[9]).is_err());
    }

    #[test]
    fn bad_variant_index_is_rejected() {
        // SnapshotState has two variants; index 250 is out of range.
        let bytes = 250u32.to_le_bytes().to_vec();
        let err = from_bytes::<SnapshotState>(&bytes).unwrap_err();
        assert!(err.to_string().contains("variant index 250"));
    }

    #[test]
    fn non_utf8_string_is_rejected() {
        let mut bytes = 2u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let err = from_bytes::<String>(&bytes).unwrap_err();
        assert!(err.to_string().contains("UTF-8"));
    }
}
