//! Versioned snapshot files: `RSNP` magic, format version, then the
//! codec-encoded document.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RSNP"
//! 4       4     format version (currently 1)
//! 8       ..    body: SnapshotDocument via crate::codec
//! ```
//!
//! The version covers the *codec and document layout*; estimator-family
//! layout changes are versioned one level down, by `SnapshotState` variant
//! (`SuccessiveV1`, ...). A build refuses files with a newer format version
//! instead of misreading them.

use std::path::Path;

use serde::{Deserialize, Serialize};

use resmatch_core::snapshot::SnapshotState;

use crate::codec;
use crate::error::ServiceError;

/// File magic: `Resmatch SNaPshot`.
pub const MAGIC: [u8; 4] = *b"RSNP";

/// Current snapshot file format version.
pub const FORMAT_VERSION: u32 = 1;

/// Everything a snapshot file carries besides the raw estimator state:
/// which estimator family wrote it and how the writing service was
/// sharded (informational — restore re-partitions for any shard count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDocument {
    /// `EstimatorSpec::name()` of the estimator that produced the state.
    pub estimator: String,
    /// Shard count of the service at save time.
    pub shards_at_save: u32,
    /// The portable estimator state.
    pub state: SnapshotState,
}

impl SnapshotDocument {
    /// Encode into the on-disk byte layout (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&codec::to_bytes(self));
        bytes
    }

    /// Decode from the on-disk byte layout.
    ///
    /// # Errors
    /// [`ServiceError::BadMagic`] for non-snapshot files,
    /// [`ServiceError::UnsupportedVersion`] for files from a newer build,
    /// [`ServiceError::Codec`] for truncated or corrupt bodies.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotDocument, ServiceError> {
        let Some((magic, rest)) = bytes.split_at_checked(MAGIC.len()) else {
            return Err(ServiceError::BadMagic);
        };
        if magic != MAGIC {
            return Err(ServiceError::BadMagic);
        }
        let Some((version, body)) = rest.split_at_checked(4) else {
            return Err(ServiceError::Codec {
                offset: bytes.len(),
                detail: "truncated version field".to_string(),
            });
        };
        let mut version_bytes = [0u8; 4];
        version_bytes.copy_from_slice(version);
        let found = u32::from_le_bytes(version_bytes);
        if found != FORMAT_VERSION {
            return Err(ServiceError::UnsupportedVersion { found });
        }
        codec::from_bytes(body)
    }

    /// Write the encoded snapshot to `path`, atomically enough for a
    /// single writer: the bytes are staged in memory and written in one
    /// `fs::write` call.
    ///
    /// # Errors
    /// [`ServiceError::Io`] when the file cannot be written.
    pub fn write_to(&self, path: &Path) -> Result<(), ServiceError> {
        std::fs::write(path, self.encode()).map_err(|err| ServiceError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        })
    }

    /// Read and decode a snapshot file.
    ///
    /// # Errors
    /// [`ServiceError::Io`] when the file cannot be read, plus everything
    /// [`SnapshotDocument::decode`] reports.
    pub fn read_from(path: &Path) -> Result<SnapshotDocument, ServiceError> {
        let bytes = std::fs::read(path).map_err(|err| ServiceError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        })?;
        SnapshotDocument::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> SnapshotDocument {
        SnapshotDocument {
            estimator: "successive-approximation".to_string(),
            shards_at_save: 8,
            state: SnapshotState::SuccessiveV1 { groups: Vec::new() },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let d = doc();
        assert_eq!(SnapshotDocument::decode(&d.encode()).expect("decodes"), d);
    }

    #[test]
    fn header_layout_is_pinned() {
        let bytes = doc().encode();
        assert_eq!(&bytes[..4], b"RSNP");
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            1
        );
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = doc().encode();
        bytes[0] = b'X';
        assert_eq!(
            SnapshotDocument::decode(&bytes).unwrap_err(),
            ServiceError::BadMagic
        );
        assert_eq!(
            SnapshotDocument::decode(b"RS").unwrap_err(),
            ServiceError::BadMagic
        );
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut bytes = doc().encode();
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            SnapshotDocument::decode(&bytes).unwrap_err(),
            ServiceError::UnsupportedVersion { found: 9 }
        );
    }

    #[test]
    fn truncated_body_is_a_codec_error() {
        let bytes = doc().encode();
        let err = SnapshotDocument::decode(&bytes[..bytes.len() - 2]).unwrap_err();
        assert!(matches!(err, ServiceError::Codec { .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("resmatch-service-file-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("state.rsnp");
        let d = doc();
        d.write_to(&path).expect("write");
        assert_eq!(SnapshotDocument::read_from(&path).expect("read"), d);
        let missing = dir.join("does-not-exist.rsnp");
        assert!(matches!(
            SnapshotDocument::read_from(&missing).unwrap_err(),
            ServiceError::Io { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
