//! The service crate's workspace-facing error type.

use std::fmt;

use resmatch_core::snapshot::SnapshotError;

/// Everything that can go wrong operating an estimator service: snapshot
/// semantics (delegated to [`SnapshotError`]), wire-format decoding, file
/// I/O, and service configuration.
///
/// `#[non_exhaustive]`: future service features (e.g. replication) may add
/// variants without a breaking release — match with a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A snapshot operation failed at the estimator-state level.
    Snapshot(SnapshotError),
    /// Snapshot bytes did not decode as the format promises.
    Codec {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// What the decoder was trying to read.
        detail: String,
    },
    /// The file does not start with the `RSNP` snapshot magic.
    BadMagic,
    /// The snapshot file's format version is newer than this build reads.
    UnsupportedVersion {
        /// Version number found in the file header.
        found: u32,
    },
    /// Reading or writing the snapshot file failed at the OS level.
    Io {
        /// Path of the file involved.
        path: String,
        /// Stringified `std::io::Error`.
        detail: String,
    },
    /// The service configuration is unusable (zero shards, zero batch).
    Config {
        /// What about the configuration is invalid.
        detail: &'static str,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Snapshot(err) => write!(f, "snapshot: {err}"),
            ServiceError::Codec { offset, detail } => {
                write!(f, "malformed snapshot at byte {offset}: {detail}")
            }
            ServiceError::BadMagic => {
                write!(f, "not a resmatch snapshot file (missing RSNP magic)")
            }
            ServiceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported by this build"
                )
            }
            ServiceError::Io { path, detail } => write!(f, "{path}: {detail}"),
            ServiceError::Config { detail } => write!(f, "invalid service config: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(err: SnapshotError) -> Self {
        ServiceError::Snapshot(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let err = ServiceError::from(SnapshotError::Empty);
        assert!(err.to_string().contains("snapshot"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(ServiceError::BadMagic.to_string().contains("RSNP"));
        assert!(ServiceError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        let codec = ServiceError::Codec {
            offset: 12,
            detail: "u64".into(),
        };
        assert!(codec.to_string().contains("byte 12"));
        assert!(std::error::Error::source(&codec).is_none());
    }
}
